//! # CloudViews — a full reproduction of *Production Experiences from
//! Computation Reuse at Microsoft* (EDBT 2021)
//!
//! This facade re-exports the workspace crates and provides the high-level
//! entry points the examples and integration tests use.
//!
//! ## The system in one paragraph
//!
//! CloudViews adds a *feedback loop* to a SCOPE-like query engine: every
//! executed job logs its normalized subexpressions (with runtime metrics)
//! into a workload repository; a selection pass picks the recurring
//! subexpressions worth materializing under storage constraints; the
//! insights service serves those decisions as per-job annotations; the
//! optimizer then *matches* available views top-down (hash lookups on
//! strict signatures — no containment reasoning) and *builds* selected ones
//! bottom-up by inserting spool operators, with views sealed early and
//! thrown away instead of maintained.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`common`] | ids, stable 128-bit hashing, deterministic RNG, sim time |
//! | [`data`] | columnar tables, versioned dataset catalog, view store |
//! | [`engine`] | SQL frontend, plans, normalization, signatures, optimizer, executor |
//! | [`cluster`] | discrete-event Cosmos simulator (containers, bonus, queues) |
//! | [`core`] | CloudViews: repository, selection, insights, controls, impact |
//! | [`workload`] | synthetic cooking + analytics workloads, multi-day driver |
//! | [`extensions`] | §5 future work: containment, concurrency, checkpoints, sampling, Bloom filters |
//!
//! ## Quickstart
//!
//! ```
//! use cloudviews::prelude::*;
//!
//! // A tiny workload over three days, with and without CloudViews.
//! let workload = generate_workload(WorkloadConfig {
//!     scale: 0.05,
//!     n_analytics: 8,
//!     ..Default::default()
//! });
//! let base = run_workload(&workload, &DriverConfig::baseline(3)).unwrap();
//! let with = run_workload(&workload, &DriverConfig::enabled(3)).unwrap();
//!
//! // Reuse never changes results…
//! assert_eq!(base.result_digests, with.result_digests);
//! // …and saves work once views start being reused.
//! assert!(with.ledger.totals().processing_seconds
//!     <= base.ledger.totals().processing_seconds);
//! ```

pub use cv_cluster as cluster;
pub use cv_common as common;
pub use cv_core as core;
pub use cv_data as data;
pub use cv_engine as engine;
pub use cv_extensions as extensions;
pub use cv_service as service;
pub use cv_workload as workload;

/// The names most programs need.
pub mod prelude {
    pub use cv_cluster::sim::{ClusterConfig, ClusterSim};
    pub use cv_common::ids::{JobId, TemplateId, VcId};
    pub use cv_common::{CvError, Result, Sig128, SimDay, SimDuration, SimTime};
    pub use cv_core::controls::Controls;
    pub use cv_core::impact::direct_comparison;
    pub use cv_core::insights::InsightsService;
    pub use cv_core::selection::{
        GreedySelector, LabelPropagationSelector, SelectionConstraints, ViewSelector,
    };
    pub use cv_core::{build_problem, SubexpressionRepo};
    pub use cv_data::catalog::DatasetCatalog;
    pub use cv_data::table::Table;
    pub use cv_data::value::{DataType, Value};
    pub use cv_engine::engine::QueryEngine;
    pub use cv_engine::optimizer::ReuseContext;
    pub use cv_engine::sql::Params;
    pub use cv_workload::{
        generate_workload, run_workload, run_workload_service, DriverConfig, SelectionKnobs,
        ServiceConfig, WorkloadConfig,
    };
}
