//! `cv-chaos` — replay the workload templates under a matrix of injected
//! fault plans and assert graceful degradation end to end.
//!
//! For every sweep the driver runs the same multi-day workload the other
//! experiments use, but with a seeded [`FaultPlan`] installed across the
//! view store, the cluster simulator, and the metadata path. The contract
//! checked here is the tentpole guarantee: **faults may cost time, never
//! correctness** — every job completes and produces a result byte-identical
//! to the fault-free run, while the robustness counters show the faults
//! actually fired and were absorbed (fallback recompute, quarantine, stage
//! retries, metadata-outage degradation).
//!
//! Exit code is non-zero iff any sweep diverges from the fault-free
//! baseline, fails a job, or (for fault sweeps) absorbs zero faults — wire
//! it into CI next to `cv-analyze`.
//!
//! Usage:
//!   cv-chaos [--days N] [--scale F] [--seed N] [--json PATH] [--trace PATH]

use cv_common::json::{json, Json};
use cv_common::{FaultPlan, FaultPoint, SimDuration};
use cv_obs::Tracer;
use cv_workload::{generate_workload, run_workload, DriverConfig, Workload, WorkloadConfig};
use std::process::ExitCode;

struct Args {
    days: u32,
    scale: f64,
    seed: u64,
    json_path: Option<String>,
    trace_path: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { days: 4, scale: 0.05, seed: 1, json_path: None, trace_path: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value `{v}`"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--json" => args.json_path = Some(it.next().ok_or("--json needs a path")?),
            "--trace" => args.trace_path = Some(it.next().ok_or("--trace needs a path")?),
            "--help" | "-h" => {
                println!(
                    "cv-chaos: fault-injection sweep over the workload templates\n\n\
                     options:\n  --days N      simulated days per sweep (default 4)\n  \
                     --scale F     workload data scale (default 0.05)\n  \
                     --seed N      fault-plan seed (default 1)\n  \
                     --json PATH   also write the JSON report to PATH\n  \
                     --trace PATH  write a Chrome trace (one span per sweep) to PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// One entry of the fault matrix.
struct Sweep {
    name: &'static str,
    plan: FaultPlan,
    /// Counters that must be non-zero for the sweep to count as having
    /// exercised its fault points (name, extractor).
    must_fire: Vec<(&'static str, fn(&cv_cluster::metrics::RobustnessStats) -> u64)>,
}

fn fault_matrix(seed: u64) -> Vec<Sweep> {
    vec![
        Sweep { name: "fault-free", plan: FaultPlan::none(), must_fire: vec![] },
        Sweep {
            name: "view-faults",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::ViewRead, 0.2)
                .with_rate(FaultPoint::ViewWrite, 0.1)
                .with_rate(FaultPoint::ViewCorrupt, 0.1)
                .with_rate(FaultPoint::ViewExpiryRace, 0.05),
            must_fire: vec![
                ("fallbacks_recompute", |r| r.fallbacks_recompute),
                ("views_quarantined", |r| r.views_quarantined),
            ],
        },
        Sweep {
            name: "cluster-faults",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::StageFail, 0.1)
                .with_rate(FaultPoint::BonusPreempt, 0.2),
            must_fire: vec![("stage_retries", |r| r.stage_retries)],
        },
        Sweep {
            name: "metadata-outages",
            plan: FaultPlan::seeded(seed).with_metadata_outages(
                SimDuration::from_secs(3.0 * 3600.0),
                SimDuration::from_secs(3600.0),
            ),
            must_fire: vec![("metadata_outage_jobs", |r| r.metadata_outage_jobs)],
        },
        Sweep {
            name: "aggressive",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::ViewRead, 0.2)
                .with_rate(FaultPoint::ViewWrite, 0.1)
                .with_rate(FaultPoint::ViewCorrupt, 0.1)
                .with_rate(FaultPoint::ViewExpiryRace, 0.05)
                .with_rate(FaultPoint::StageFail, 0.1)
                .with_rate(FaultPoint::BonusPreempt, 0.1)
                .with_metadata_outages(
                    SimDuration::from_secs(4.0 * 3600.0),
                    SimDuration::from_secs(3600.0),
                ),
            must_fire: vec![
                ("fallbacks_recompute", |r| r.fallbacks_recompute),
                ("views_quarantined", |r| r.views_quarantined),
                ("stage_retries", |r| r.stage_retries),
            ],
        },
    ]
}

fn chaos_config(days: u32, plan: FaultPlan) -> DriverConfig {
    let mut cfg = DriverConfig::enabled(days);
    cfg.cluster.total_containers = 200;
    cfg.faults = plan;
    cfg
}

fn run_matrix(workload: &Workload, args: &Args, tracer: Option<&Tracer>) -> (Vec<Json>, usize) {
    let mut reports = Vec::new();
    let mut violations = 0usize;

    println!("cv-chaos: {} day(s) at scale {}, fault seed {}", args.days, args.scale, args.seed);

    if let Some(t) = tracer {
        t.begin(0, "baseline");
    }
    let baseline = run_workload(workload, &chaos_config(args.days, FaultPlan::none()))
        .expect("fault-free run");
    if let Some(t) = tracer {
        t.end_with(0, &[("jobs", baseline.ledger.len() as u64)]);
    }

    for sweep in fault_matrix(args.seed) {
        if let Some(t) = tracer {
            t.begin(0, sweep.name);
        }
        let out = run_workload(workload, &chaos_config(args.days, sweep.plan.clone()))
            .expect("faulty run must not error out");
        if let Some(t) = tracer {
            t.end_with(
                0,
                &[
                    ("jobs", out.ledger.len() as u64),
                    ("fallbacks_recompute", out.robustness.fallbacks_recompute),
                    ("stage_retries", out.robustness.stage_retries),
                    ("metadata_outage_jobs", out.robustness.metadata_outage_jobs),
                ],
            );
        }
        let mut problems: Vec<String> = Vec::new();

        if out.failed_jobs > 0 {
            problems.push(format!("{} job(s) failed", out.failed_jobs));
        }
        if out.result_digests.len() != baseline.result_digests.len() {
            problems.push(format!(
                "job count diverged: {} vs {} fault-free",
                out.result_digests.len(),
                baseline.result_digests.len()
            ));
        }
        let diverged = baseline
            .result_digests
            .iter()
            .filter(|(job, digest)| out.result_digests.get(job) != Some(digest))
            .count();
        if diverged > 0 {
            problems.push(format!("{diverged} job result(s) diverged from fault-free run"));
        }
        for (counter, get) in &sweep.must_fire {
            if get(&out.robustness) == 0 {
                problems.push(format!("expected non-zero {counter}"));
            }
        }

        let r = &out.robustness;
        println!(
            "\n=== {} ===\n  jobs                 {}\n  fallbacks_recompute  {}\n  \
             views_quarantined    {}\n  view_read_failures   {}\n  \
             view_corruptions     {}\n  view_expiry_races    {}\n  \
             view_write_failures  {}\n  stage_retries        {}\n  \
             preemptions          {}\n  backoff_seconds      {:.1}\n  \
             job_restarts         {}\n  metadata_outage_jobs {}",
            sweep.name,
            out.ledger.len(),
            r.fallbacks_recompute,
            r.views_quarantined,
            r.view_read_failures,
            r.view_corruptions,
            r.view_expiry_races,
            r.view_write_failures,
            r.stage_retries,
            r.preemptions,
            r.backoff_seconds,
            r.job_restarts,
            r.metadata_outage_jobs
        );
        let ok = problems.is_empty();
        if ok {
            println!("  result: OK — all results byte-identical to fault-free run");
        } else {
            violations += problems.len();
            for p in &problems {
                println!("  VIOLATION: {p}");
            }
        }

        let mut report = match out.report_json() {
            Json::Obj(map) => map,
            other => {
                let mut m = cv_common::json::JsonMap::new();
                m.insert("report", other);
                m
            }
        };
        report.insert("sweep", sweep.name);
        report.insert("ok", ok);
        report.insert(
            "violations",
            Json::Arr(problems.iter().map(|p| Json::Str(p.clone())).collect()),
        );
        reports.push(Json::Obj(report));
    }

    (reports, violations)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cv-chaos: {e}");
            return ExitCode::from(2);
        }
    };

    let workload = generate_workload(WorkloadConfig {
        scale: args.scale,
        n_analytics: 24,
        ..WorkloadConfig::default()
    });
    let tracer = args.trace_path.as_ref().map(|_| Tracer::new());
    let (sweeps, violations) = run_matrix(&workload, &args, tracer.as_ref());

    if let (Some(path), Some(t)) = (&args.trace_path, &tracer) {
        if let Err(e) = std::fs::write(path, t.to_chrome_json().to_string_pretty()) {
            eprintln!("cv-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[chrome trace] {path} ({} spans)", t.span_count());
    }

    let report_json = json!({
        "days": args.days,
        "scale": args.scale,
        "seed": args.seed,
        "sweeps": sweeps,
        "violations": violations as u64,
    });
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report_json.to_string_pretty()) {
            eprintln!("cv-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[json report] {path}");
    } else {
        println!("\n{}", report_json.to_string_compact());
    }

    if violations > 0 {
        eprintln!("cv-chaos: {violations} violation(s) — degradation was not graceful");
        ExitCode::FAILURE
    } else {
        println!("\ncv-chaos: every sweep degraded gracefully");
        ExitCode::SUCCESS
    }
}
