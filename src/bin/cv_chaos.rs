//! `cv-chaos` — replay the workload templates under a matrix of injected
//! fault plans and assert graceful degradation end to end.
//!
//! For every sweep the driver runs the same multi-day workload the other
//! experiments use, but with a seeded [`FaultPlan`] installed across the
//! view store, the cluster simulator, and the metadata path. The contract
//! checked here is the tentpole guarantee: **faults may cost time, never
//! correctness** — every job completes and produces a result byte-identical
//! to the fault-free run, while the robustness counters show the faults
//! actually fired and were absorbed (fallback recompute, quarantine, stage
//! retries, metadata-outage degradation).
//!
//! Exit code is non-zero iff any sweep diverges from the fault-free
//! baseline, fails a job, or (for fault sweeps) absorbs zero faults — wire
//! it into CI next to `cv-analyze`.
//!
//! A second matrix, `--crash`, targets the durable view store: the same
//! workload runs against the disk-backed WAL + page store while a byte
//! budget kills the store mid-write at swept offsets (`CrashAt`), plus a
//! torn-WAL-record sweep (`WalTornWrite`). After every kill the driver
//! recovers in place (checkpoint + WAL replay) and the run must finish with
//! per-job digests byte-identical to the fault-free in-memory baseline.
//!
//! Usage:
//!   cv-chaos [--days N] [--scale F] [--seed N] [--json PATH] [--trace PATH]
//!            [--crash] [--store-dir PATH]

use cv_common::json::{json, Json};
use cv_common::{FaultPlan, FaultPoint, SimDuration};
use cv_obs::Tracer;
use cv_workload::{
    generate_workload, run_workload, DriverConfig, DurableStoreConfig, StoreBackend, Workload,
    WorkloadConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    days: u32,
    scale: f64,
    seed: u64,
    json_path: Option<String>,
    trace_path: Option<String>,
    /// Run the durable-store crash-recovery matrix instead of the fault
    /// sweeps.
    crash: bool,
    /// Root directory for the crash matrix's store instances (a temp dir
    /// by default; each sweep uses its own subdirectory).
    store_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        days: 4,
        scale: 0.05,
        seed: 1,
        json_path: None,
        trace_path: None,
        crash: false,
        store_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value `{v}`"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--json" => args.json_path = Some(it.next().ok_or("--json needs a path")?),
            "--trace" => args.trace_path = Some(it.next().ok_or("--trace needs a path")?),
            "--crash" => args.crash = true,
            "--store-dir" => args.store_dir = Some(it.next().ok_or("--store-dir needs a path")?),
            "--help" | "-h" => {
                println!(
                    "cv-chaos: fault-injection sweep over the workload templates\n\n\
                     options:\n  --days N        simulated days per sweep (default 4)\n  \
                     --scale F       workload data scale (default 0.05)\n  \
                     --seed N        fault-plan seed (default 1)\n  \
                     --json PATH     also write the JSON report to PATH\n  \
                     --trace PATH    write a Chrome trace (one span per sweep) to PATH\n  \
                     --crash         run the durable-store crash-recovery matrix\n  \
                     --store-dir P   root directory for --crash store instances\n                  \
                     (default: a fresh temp directory, removed afterwards)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// One entry of the fault matrix.
struct Sweep {
    name: &'static str,
    plan: FaultPlan,
    /// Counters that must be non-zero for the sweep to count as having
    /// exercised its fault points (name, extractor).
    must_fire: Vec<(&'static str, fn(&cv_cluster::metrics::RobustnessStats) -> u64)>,
}

fn fault_matrix(seed: u64) -> Vec<Sweep> {
    vec![
        Sweep { name: "fault-free", plan: FaultPlan::none(), must_fire: vec![] },
        Sweep {
            name: "view-faults",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::ViewRead, 0.2)
                .with_rate(FaultPoint::ViewWrite, 0.1)
                .with_rate(FaultPoint::ViewCorrupt, 0.1)
                .with_rate(FaultPoint::ViewExpiryRace, 0.05),
            must_fire: vec![
                ("fallbacks_recompute", |r| r.fallbacks_recompute),
                ("views_quarantined", |r| r.views_quarantined),
            ],
        },
        Sweep {
            name: "cluster-faults",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::StageFail, 0.1)
                .with_rate(FaultPoint::BonusPreempt, 0.2),
            must_fire: vec![("stage_retries", |r| r.stage_retries)],
        },
        Sweep {
            name: "metadata-outages",
            plan: FaultPlan::seeded(seed).with_metadata_outages(
                SimDuration::from_secs(3.0 * 3600.0),
                SimDuration::from_secs(3600.0),
            ),
            must_fire: vec![("metadata_outage_jobs", |r| r.metadata_outage_jobs)],
        },
        Sweep {
            name: "aggressive",
            plan: FaultPlan::seeded(seed)
                .with_rate(FaultPoint::ViewRead, 0.2)
                .with_rate(FaultPoint::ViewWrite, 0.1)
                .with_rate(FaultPoint::ViewCorrupt, 0.1)
                .with_rate(FaultPoint::ViewExpiryRace, 0.05)
                .with_rate(FaultPoint::StageFail, 0.1)
                .with_rate(FaultPoint::BonusPreempt, 0.1)
                .with_metadata_outages(
                    SimDuration::from_secs(4.0 * 3600.0),
                    SimDuration::from_secs(3600.0),
                ),
            must_fire: vec![
                ("fallbacks_recompute", |r| r.fallbacks_recompute),
                ("views_quarantined", |r| r.views_quarantined),
                ("stage_retries", |r| r.stage_retries),
            ],
        },
    ]
}

fn chaos_config(days: u32, plan: FaultPlan) -> DriverConfig {
    let mut cfg = DriverConfig::enabled(days);
    cfg.cluster.total_containers = 200;
    cfg.faults = plan;
    cfg
}

fn run_matrix(workload: &Workload, args: &Args, tracer: Option<&Tracer>) -> (Vec<Json>, usize) {
    let mut reports = Vec::new();
    let mut violations = 0usize;

    println!("cv-chaos: {} day(s) at scale {}, fault seed {}", args.days, args.scale, args.seed);

    if let Some(t) = tracer {
        t.begin(0, "baseline");
    }
    let baseline = run_workload(workload, &chaos_config(args.days, FaultPlan::none()))
        .expect("fault-free run");
    if let Some(t) = tracer {
        t.end_with(0, &[("jobs", baseline.ledger.len() as u64)]);
    }

    for sweep in fault_matrix(args.seed) {
        if let Some(t) = tracer {
            t.begin(0, sweep.name);
        }
        let out = run_workload(workload, &chaos_config(args.days, sweep.plan.clone()))
            .expect("faulty run must not error out");
        if let Some(t) = tracer {
            t.end_with(
                0,
                &[
                    ("jobs", out.ledger.len() as u64),
                    ("fallbacks_recompute", out.robustness.fallbacks_recompute),
                    ("stage_retries", out.robustness.stage_retries),
                    ("metadata_outage_jobs", out.robustness.metadata_outage_jobs),
                ],
            );
        }
        let mut problems: Vec<String> = Vec::new();

        if out.failed_jobs > 0 {
            problems.push(format!("{} job(s) failed", out.failed_jobs));
        }
        if out.result_digests.len() != baseline.result_digests.len() {
            problems.push(format!(
                "job count diverged: {} vs {} fault-free",
                out.result_digests.len(),
                baseline.result_digests.len()
            ));
        }
        let diverged = baseline
            .result_digests
            .iter()
            .filter(|(job, digest)| out.result_digests.get(job) != Some(digest))
            .count();
        if diverged > 0 {
            problems.push(format!("{diverged} job result(s) diverged from fault-free run"));
        }
        for (counter, get) in &sweep.must_fire {
            if get(&out.robustness) == 0 {
                problems.push(format!("expected non-zero {counter}"));
            }
        }

        let r = &out.robustness;
        println!(
            "\n=== {} ===\n  jobs                 {}\n  fallbacks_recompute  {}\n  \
             views_quarantined    {}\n  view_read_failures   {}\n  \
             view_corruptions     {}\n  view_expiry_races    {}\n  \
             view_write_failures  {}\n  stage_retries        {}\n  \
             preemptions          {}\n  backoff_seconds      {:.1}\n  \
             job_restarts         {}\n  metadata_outage_jobs {}",
            sweep.name,
            out.ledger.len(),
            r.fallbacks_recompute,
            r.views_quarantined,
            r.view_read_failures,
            r.view_corruptions,
            r.view_expiry_races,
            r.view_write_failures,
            r.stage_retries,
            r.preemptions,
            r.backoff_seconds,
            r.job_restarts,
            r.metadata_outage_jobs
        );
        let ok = problems.is_empty();
        if ok {
            println!("  result: OK — all results byte-identical to fault-free run");
        } else {
            violations += problems.len();
            for p in &problems {
                println!("  VIOLATION: {p}");
            }
        }

        let mut report = match out.report_json() {
            Json::Obj(map) => map,
            other => {
                let mut m = cv_common::json::JsonMap::new();
                m.insert("report", other);
                m
            }
        };
        report.insert("sweep", sweep.name);
        report.insert("ok", ok);
        report.insert(
            "violations",
            Json::Arr(problems.iter().map(|p| Json::Str(p.clone())).collect()),
        );
        reports.push(Json::Obj(report));
    }

    (reports, violations)
}

fn durable_config(days: u32, dir: &Path, plan: FaultPlan) -> DriverConfig {
    let mut cfg = chaos_config(days, plan);
    cfg.store = StoreBackend::Durable(DurableStoreConfig::new(dir));
    cfg
}

fn count_divergences(
    baseline: &cv_workload::DriverOutcome,
    out: &cv_workload::DriverOutcome,
) -> usize {
    baseline
        .result_digests
        .iter()
        .filter(|(job, digest)| out.result_digests.get(job) != Some(digest))
        .count()
        + baseline.result_digests.len().abs_diff(out.result_digests.len())
}

/// The durable-store crash-recovery matrix (`--crash`).
///
/// 1. fault-free in-memory baseline → the reference per-job digests;
/// 2. fault-free durable run → digest parity plus the total durable byte
///    budget that calibrates the kill offsets;
/// 3. torn-WAL sweep: commit records damaged in flight, then a second run
///    over the same directory that must replay around the torn records;
/// 4. `CrashAt` sweep: the store is killed mid-write at several byte
///    offsets; each run recovers in place and must finish byte-identical.
fn run_crash_matrix(workload: &Workload, args: &Args) -> (Json, usize) {
    let (store_root, ephemeral) = match &args.store_dir {
        Some(dir) => (PathBuf::from(dir), false),
        None => (std::env::temp_dir().join(format!("cv-chaos-crash-{}", std::process::id())), true),
    };
    let _ = std::fs::remove_dir_all(&store_root);
    let mut violations: Vec<String> = Vec::new();

    println!(
        "cv-chaos --crash: {} day(s) at scale {}, seed {}, store root {}",
        args.days,
        args.scale,
        args.seed,
        store_root.display()
    );

    // 1. In-memory fault-free baseline: the reference digests.
    let mem = run_workload(workload, &chaos_config(args.days, FaultPlan::none()))
        .expect("fault-free in-memory run");

    // 2. Durable fault-free baseline: parity + byte budget.
    let base_dir = store_root.join("baseline");
    let base = run_workload(workload, &durable_config(args.days, &base_dir, FaultPlan::none()))
        .expect("fault-free durable run");
    let base_io = base.store_io.clone().expect("durable run reports io stats");
    let budget = base_io.bytes_written_durably;
    let d = count_divergences(&mem, &base);
    if d > 0 {
        violations.push(format!("durable baseline diverged from memory baseline: {d} job(s)"));
    }
    if budget == 0 {
        violations.push("durable baseline wrote zero bytes — nothing to crash".into());
    }
    println!(
        "  baseline: {} jobs, {} durable bytes, {} wal records, cache hit rate {:.2}",
        base.ledger.len(),
        budget,
        base_io.wal_records_written,
        base_io.page_cache_hit_rate()
    );

    // 3. Torn WAL commits. A torn record is invisible while the process
    // lives (the view stays indexed in memory) and a checkpoint heals it,
    // so the only window that exercises it is a crash *before* the next
    // checkpoint: replay must skip the torn commit, drop the view, and the
    // driver must recompute it without changing any result. Tear every
    // commit and kill late in the run so the replayed tail is non-trivial.
    let torn_dir = store_root.join("torn");
    let torn_kill = ((budget as f64 * 0.85) as u64) | 1;
    let torn_plan = FaultPlan::seeded(args.seed)
        .with_rate(FaultPoint::WalTornWrite, 1.0)
        .with_crash_after_bytes(torn_kill);
    let torn = run_workload(workload, &durable_config(args.days, &torn_dir, torn_plan))
        .expect("torn-wal crash run");
    let torn_io = torn.store_io.clone().expect("durable run reports io stats");
    let d = count_divergences(&mem, &torn);
    if d > 0 {
        violations.push(format!("torn-wal crash run diverged: {d} job(s)"));
    }
    if torn.robustness.store_crashes != 1 {
        violations.push(format!(
            "torn-wal run: expected exactly 1 crash, saw {}",
            torn.robustness.store_crashes
        ));
    }
    if torn_io.wal_records_skipped == 0 {
        violations.push("torn-wal replay skipped zero records".into());
    }
    // The healed directory must reopen clean and still agree.
    let torn2 = run_workload(workload, &durable_config(args.days, &torn_dir, FaultPlan::none()))
        .expect("post-torn restart run");
    let d = count_divergences(&mem, &torn2);
    if d > 0 {
        violations.push(format!("post-torn restart diverged: {d} job(s)"));
    }
    println!(
        "  torn-wal: kill@{torn_kill}, {} torn record(s) skipped on replay, {} replayed",
        torn_io.wal_records_skipped, torn_io.wal_records_replayed
    );

    // 4. Crash-at-byte-offset sweep. Odd jitter keeps kills off page/record
    // boundaries so prefixes tear mid-structure.
    let fractions = [0.08, 0.23, 0.41, 0.58, 0.76, 0.93];
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    let mut offsets: Vec<Json> = Vec::new();
    for (i, frac) in fractions.iter().enumerate() {
        let kill_at = ((budget as f64 * frac) as u64) | 1;
        let dir = store_root.join(format!("crash-{i}"));
        let plan = FaultPlan::seeded(args.seed).with_crash_after_bytes(kill_at);
        let out = run_workload(workload, &durable_config(args.days, &dir, plan))
            .expect("crash-budget run must recover, not error out");
        let io = out.store_io.clone().expect("durable run reports io stats");
        let diverged = count_divergences(&mem, &out);
        if out.robustness.store_crashes != 1 {
            violations.push(format!(
                "kill@{kill_at}: expected exactly 1 crash, saw {}",
                out.robustness.store_crashes
            ));
        }
        if out.robustness.store_recoveries == 0 {
            violations.push(format!("kill@{kill_at}: no recovery recorded"));
        }
        if diverged > 0 {
            violations.push(format!("kill@{kill_at}: {diverged} job result(s) diverged"));
        }
        if out.failed_jobs > 0 {
            violations.push(format!("kill@{kill_at}: {} job(s) failed", out.failed_jobs));
        }
        crashes += out.robustness.store_crashes;
        recoveries += out.robustness.store_recoveries;
        replayed += io.wal_records_replayed;
        skipped += io.wal_records_skipped;
        println!(
            "  kill@{kill_at:>9}: crashes {}, recoveries {}, replayed {:>4}, diverged {}",
            out.robustness.store_crashes,
            out.robustness.store_recoveries,
            io.wal_records_replayed,
            diverged
        );
        offsets.push(json!({
            "kill_at_bytes": kill_at,
            "store_crashes": out.robustness.store_crashes,
            "store_recoveries": out.robustness.store_recoveries,
            "wal_records_replayed": io.wal_records_replayed,
            "digest_divergences": diverged as u64,
        }));
    }
    if replayed == 0 {
        violations.push("crash sweep replayed zero WAL records in aggregate".into());
    }

    if ephemeral {
        let _ = std::fs::remove_dir_all(&store_root);
    }

    let report = json!({
        "days": args.days,
        "scale": args.scale,
        "seed": args.seed,
        "durable_bytes_budget": budget,
        "baseline_store": json!({
            "wal_records_written": base_io.wal_records_written,
            "wal_fsyncs": base_io.wal_fsyncs,
            "checkpoints": base_io.checkpoints,
            "page_cache_hit_rate": base_io.page_cache_hit_rate(),
        }),
        "torn": json!({
            "kill_at_bytes": torn_kill,
            "wal_records_skipped": torn_io.wal_records_skipped,
            "wal_records_replayed": torn_io.wal_records_replayed,
        }),
        "crash_offsets": Json::Arr(offsets),
        "store_crashes": crashes + torn.robustness.store_crashes,
        "recoveries": recoveries + torn.robustness.store_recoveries,
        "wal_records_replayed": replayed + torn_io.wal_records_replayed,
        "wal_records_skipped": skipped + torn_io.wal_records_skipped,
        "digest_divergences": violations.iter().filter(|v| v.contains("diverged")).count() as u64,
        "violations": Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect()),
    });
    (report, violations.len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cv-chaos: {e}");
            return ExitCode::from(2);
        }
    };

    let workload = generate_workload(WorkloadConfig {
        scale: args.scale,
        n_analytics: 24,
        ..WorkloadConfig::default()
    });
    if args.crash {
        let (report_json, violations) = run_crash_matrix(&workload, &args);
        if let Some(path) = &args.json_path {
            if let Err(e) = std::fs::write(path, report_json.to_string_pretty()) {
                eprintln!("cv-chaos: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("\n[json report] {path}");
        } else {
            println!("\n{}", report_json.to_string_compact());
        }
        return if violations > 0 {
            eprintln!("cv-chaos: {violations} crash-recovery violation(s)");
            ExitCode::FAILURE
        } else {
            println!("\ncv-chaos: every crash recovered to a byte-identical state");
            ExitCode::SUCCESS
        };
    }

    let tracer = args.trace_path.as_ref().map(|_| Tracer::new());
    let (sweeps, violations) = run_matrix(&workload, &args, tracer.as_ref());

    if let (Some(path), Some(t)) = (&args.trace_path, &tracer) {
        if let Err(e) = std::fs::write(path, t.to_chrome_json().to_string_pretty()) {
            eprintln!("cv-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[chrome trace] {path} ({} spans)", t.span_count());
    }

    let report_json = json!({
        "days": args.days,
        "scale": args.scale,
        "seed": args.seed,
        "sweeps": sweeps,
        "violations": violations as u64,
    });
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report_json.to_string_pretty()) {
            eprintln!("cv-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[json report] {path}");
    } else {
        println!("\n{}", report_json.to_string_compact());
    }

    if violations > 0 {
        eprintln!("cv-chaos: {violations} violation(s) — degradation was not graceful");
        ExitCode::FAILURE
    } else {
        println!("\ncv-chaos: every sweep degraded gracefully");
        ExitCode::SUCCESS
    }
}
