//! `cv-serve` — drive the concurrent query service and check its contracts.
//!
//! Runs the same multi-day workload three ways: through the sequential
//! driver (the reference), through the service with 1 worker, and through
//! the service with N workers — then verifies the tentpole guarantees:
//!
//! * **Determinism** — per-job result digests are byte-identical across all
//!   three runs, for any seed and any worker count.
//! * **Single flight** — the duplicate-materialization counter is 0.
//! * **No lost jobs** — every job completes under concurrency.
//!
//! It also reports throughput (jobs/sec of wall time inside the execution
//! pool), latency percentiles, and the pipelining ledger: the realized
//! concurrent-reuse savings next to the Fig. 9 `pipelining_savings_bound`
//! opportunity. Exit code is non-zero iff any contract is violated.
//!
//! The speedup assertion is host-aware: on a single-hardware-thread box a
//! thread pool cannot beat one worker, so `--min-speedup auto` only
//! enforces the bound when the host has parallelism to give. The digest
//! checks are unconditional — they are the correctness gate.
//!
//! The speedup denominator is the **parallel-phase wall** (batch epoch →
//! last task completion, from `PoolReport::parallel_wall`), not the whole
//! pool wall: per-wave worker spawn/join is fixed overhead that used to be
//! billed to the parallel run and produced a phantom slowdown.
//!
//! With `--trace` the N-worker run records cv-obs spans and writes a Chrome
//! trace (`chrome://tracing` / Perfetto) merging the service spans (pid 1)
//! with the simulated-cluster timeline (pid 2); the 1-worker run is traced
//! too and the deterministic span *structure* of both runs must match —
//! worker count may move timings, never the tree.
//!
//! A fourth leg runs the N-worker service against the **durable**
//! (disk-backed) sharded view store and holds it to the same digest
//! contract; its WAL/page-cache counters land in the bench report's
//! `store` section. `--store-dir` pins the store directory (default: a
//! fresh temp directory, removed afterwards).
//!
//! A fifth leg is the **morsel scaling curve**: one heavy
//! filter→join→aggregate query has its chunks fanned across the service
//! pool at 1/2/4/8 workers (`cv_workload::run_morsel_scaling`). Digests
//! must match the single-chunk serial run at every point; on hosts with 4+
//! hardware threads the 4-worker point must beat 1 worker by more than
//! 1.5×. `--chunk-size` moves the streaming granularity of *every* leg —
//! results are byte-identical at any value.
//!
//! A sixth leg (opt-in via `--op-state-cache`) exercises the
//! **operator-state cache**: the same workload runs with breaker-state
//! reuse enabled at 1 worker and at N workers, against a cache-off
//! sequential reference. The leg runs at `max(--scale, 0.25)` so the
//! dimension tables clear the nested-loop threshold and joins actually
//! build hash state (at tiny scales every join is a loop join and there
//! is no state to cache). Contracts: digests byte-identical cache-on vs
//! cache-off at both worker counts, at least one *cross-job* state hit,
//! and positive build wall avoided. `--op-state-budget` sizes the cache.
//!
//! Usage:
//!   cv-serve [--days N] [--scale F] [--seed N] [--analytics N]
//!            [--workers N] [--shards N] [--chunk-size N]
//!            [--mode closed|open] [--min-speedup auto|F]
//!            [--morsel-rows N] [--op-state-cache] [--op-state-budget N]
//!            [--store-dir PATH] [--json PATH]
//!            [--bench PATH] [--trace PATH] [--metrics PATH]

use cv_common::json::{json, Json};
use cv_common::Sig128;
use cv_extensions::concurrent::pipelining_savings_bound;
use cv_obs::chrome_trace;
use cv_store::{DurableStoreOptions, ShardedDurableViewStore};
use cv_workload::{
    generate_workload, run_workload, run_workload_service, run_workload_service_obs,
    run_workload_service_with_store, DriverConfig, ServiceConfig, ServiceObs, ServiceOutcome,
    WorkloadConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    days: u32,
    scale: f64,
    seed: u64,
    analytics: usize,
    workers: usize,
    shards: usize,
    chunk_size: usize,
    open_loop: bool,
    min_speedup: Option<f64>, // None = auto
    morsel_rows: usize,
    op_state_cache: bool,
    op_state_budget: u64,
    store_dir: Option<String>,
    json_path: Option<String>,
    bench_path: Option<String>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        days: 4,
        scale: 0.05,
        seed: 7,
        analytics: 24,
        workers: 8,
        shards: 16,
        chunk_size: cv_data::chunk::DEFAULT_CHUNK_SIZE,
        open_loop: false,
        min_speedup: None,
        morsel_rows: 480_000,
        op_state_cache: false,
        op_state_budget: 64 << 20,
        store_dir: None,
        json_path: None,
        bench_path: None,
        trace_path: None,
        metrics_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value `{v}`"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--analytics" => {
                let v = it.next().ok_or("--analytics needs a value")?;
                args.analytics = v.parse().map_err(|_| format!("bad --analytics value `{v}`"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = v.parse().map_err(|_| format!("bad --workers value `{v}`"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse().map_err(|_| format!("bad --shards value `{v}`"))?;
            }
            "--chunk-size" => {
                let v = it.next().ok_or("--chunk-size needs a value")?;
                args.chunk_size = v.parse().map_err(|_| format!("bad --chunk-size value `{v}`"))?;
                if args.chunk_size == 0 {
                    return Err("--chunk-size must be at least 1".to_string());
                }
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs closed|open")?;
                args.open_loop = match v.as_str() {
                    "closed" => false,
                    "open" => true,
                    other => return Err(format!("bad --mode value `{other}`")),
                };
            }
            "--min-speedup" => {
                let v = it.next().ok_or("--min-speedup needs auto|F")?;
                args.min_speedup = if v == "auto" {
                    None
                } else {
                    Some(v.parse().map_err(|_| format!("bad --min-speedup value `{v}`"))?)
                };
            }
            "--morsel-rows" => {
                let v = it.next().ok_or("--morsel-rows needs a value")?;
                args.morsel_rows =
                    v.parse().map_err(|_| format!("bad --morsel-rows value `{v}`"))?;
                if args.morsel_rows == 0 {
                    return Err("--morsel-rows must be at least 1".to_string());
                }
            }
            "--op-state-cache" => args.op_state_cache = true,
            "--op-state-budget" => {
                let v = it.next().ok_or("--op-state-budget needs a byte count")?;
                args.op_state_budget =
                    v.parse().map_err(|_| format!("bad --op-state-budget value `{v}`"))?;
                if args.op_state_budget == 0 {
                    return Err("--op-state-budget must be at least 1 byte".to_string());
                }
            }
            "--store-dir" => args.store_dir = Some(it.next().ok_or("--store-dir needs a path")?),
            "--json" => args.json_path = Some(it.next().ok_or("--json needs a path")?),
            "--bench" => args.bench_path = Some(it.next().ok_or("--bench needs a path")?),
            "--trace" => args.trace_path = Some(it.next().ok_or("--trace needs a path")?),
            "--metrics" => args.metrics_path = Some(it.next().ok_or("--metrics needs a path")?),
            "--help" | "-h" => {
                println!(
                    "cv-serve: concurrent query-service benchmark + correctness gate\n\n\
                     options:\n  --days N          simulated days (default 4)\n  \
                     --scale F         workload data scale (default 0.05)\n  \
                     --seed N          workload seed (default 7)\n  \
                     --analytics N     analytics templates (default 24)\n  \
                     --workers N       service worker threads (default 8)\n  \
                     --shards N        view-store lock stripes (default 16)\n  \
                     --chunk-size N    rows per execution chunk (default 2048; results\n                    \
                     are byte-identical at any value)\n  \
                     --mode M          closed|open load generation (default closed)\n  \
                     --min-speedup S   auto, or a required N-worker/1-worker ratio\n  \
                     --morsel-rows N   rows in the morsel-scaling query (default 480000)\n  \
                     --op-state-cache  run the operator-state-cache leg (reuse breaker\n                    \
                     states across jobs; digests must not move)\n  \
                     --op-state-budget N  operator-state cache budget in bytes\n                    \
                     (default 67108864)\n  \
                     --store-dir P     directory for the durable-store leg (default:\n                    \
                     a fresh temp directory, removed afterwards)\n  \
                     --json PATH       write the full JSON report to PATH\n  \
                     --bench PATH      write BENCH_service.json-style summary to PATH\n  \
                     --trace PATH      write a Chrome trace of the N-worker run to PATH\n  \
                     --metrics PATH    write the cv-obs metrics dump to PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn percentile_ms(latencies: &[(cv_common::ids::JobId, f64)], p: f64) -> f64 {
    let mut samples: Vec<f64> = latencies.iter().map(|(_, ms)| *ms).collect();
    cv_cluster::metrics::percentile(&mut samples, p)
}

/// Order-insensitive checksum over every per-job digest, for the report.
fn digest_checksum(digests: &std::collections::BTreeMap<cv_common::ids::JobId, Sig128>) -> String {
    let mut h = cv_common::hash::StableHasher::with_domain("digest-checksum");
    for (job, sig) in digests {
        h.write_u64(job.0);
        h.write_u128(sig.0);
    }
    format!("{:032x}", h.finish128().0)
}

/// Throughput over the parallel-phase wall (the speedup-relevant measure);
/// falls back to the whole pool wall only if the parallel wall is empty.
fn jobs_per_sec(out: &ServiceOutcome) -> f64 {
    let wall = if out.service.parallel_wall_seconds > 0.0 {
        out.service.parallel_wall_seconds
    } else {
        out.service.exec_wall_seconds
    };
    if wall <= 0.0 {
        0.0
    } else {
        out.ledger.len() as f64 / wall
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cv-serve: {e}");
            return ExitCode::from(2);
        }
    };

    let workload = generate_workload(WorkloadConfig {
        seed: args.seed,
        scale: args.scale,
        n_analytics: args.analytics,
        ..WorkloadConfig::default()
    });
    let mut cfg = DriverConfig::enabled(args.days);
    cfg.cluster.total_containers = 200;
    cfg.chunk_size = args.chunk_size;

    let svc = |workers: usize| ServiceConfig {
        workers,
        store_shards: args.shards,
        pacing_us_per_sim_hour: if args.open_loop { 200 } else { 0 },
        ..ServiceConfig::default()
    };

    println!(
        "cv-serve: {} day(s) at scale {}, seed {}, {} workers, {} shards, {} loop",
        args.days,
        args.scale,
        args.seed,
        args.workers,
        args.shards,
        if args.open_loop { "open" } else { "closed" }
    );

    let observing = args.trace_path.is_some() || args.metrics_path.is_some();
    let obs_one = observing.then(ServiceObs::new);
    let obs_many = observing.then(ServiceObs::new);

    let sequential = run_workload(&workload, &cfg).expect("sequential reference run");
    let one = run_workload_service_obs(&workload, &cfg, &svc(1), obs_one.as_ref())
        .expect("1-worker service run");
    let many = run_workload_service_obs(&workload, &cfg, &svc(args.workers), obs_many.as_ref())
        .expect("N-worker service run");

    // ---- Durable-store leg: same service, disk-backed sharded store. ----
    let (store_root, ephemeral_store) = match &args.store_dir {
        Some(dir) => (PathBuf::from(dir), false),
        None => (std::env::temp_dir().join(format!("cv-serve-store-{}", std::process::id())), true),
    };
    let _ = std::fs::remove_dir_all(&store_root);
    let store = ShardedDurableViewStore::open(
        store_root.clone(),
        cfg.view_ttl,
        args.shards,
        DurableStoreOptions::default(),
    )
    .expect("open durable view store");
    let durable =
        run_workload_service_with_store(&workload, &cfg, &svc(args.workers), &store, None)
            .expect("durable-store service run");
    store.checkpoint_now().expect("final durable checkpoint");
    let store_io = store.io_stats();
    drop(store);
    if ephemeral_store {
        let _ = std::fs::remove_dir_all(&store_root);
    }

    // ---- Morsel scaling leg: one heavy query, chunks across the pool. ----
    let morsel_counts: Vec<usize> =
        [1usize, 2, 4, 8].into_iter().filter(|&w| w == 1 || w <= args.workers).collect();
    let morsel = cv_workload::run_morsel_scaling(
        args.seed,
        args.morsel_rows,
        args.chunk_size,
        &morsel_counts,
        3,
    )
    .expect("morsel scaling benchmark");

    // ---- Operator-state cache leg (opt-in): reuse breaker states. ----
    // Runs at a scale where the dimension tables clear the nested-loop
    // threshold — otherwise no join builds hash state and the cache has
    // nothing to do. Cache-off sequential is the digest reference.
    let op_leg = args.op_state_cache.then(|| {
        let op_scale = args.scale.max(0.25);
        let op_workload = generate_workload(WorkloadConfig {
            seed: args.seed,
            scale: op_scale,
            n_analytics: args.analytics,
            ..WorkloadConfig::default()
        });
        let mut op_cfg = cfg.clone();
        op_cfg.op_state_budget_bytes = 0;
        let reference = run_workload(&op_workload, &op_cfg).expect("op-state cache-off reference");
        let svc_on = |workers: usize| ServiceConfig {
            op_state_budget_bytes: args.op_state_budget,
            ..svc(workers)
        };
        let on_1 = run_workload_service(&op_workload, &op_cfg, &svc_on(1))
            .expect("op-state 1-worker cache-on run");
        let on_n = run_workload_service(&op_workload, &op_cfg, &svc_on(args.workers))
            .expect("op-state N-worker cache-on run");
        (op_scale, reference, on_1, on_n)
    });

    // ---- Contracts. ----
    let mut problems: Vec<String> = Vec::new();
    let durable_digests_match = durable.result_digests == sequential.result_digests;
    if !durable_digests_match {
        problems.push("durable-store digests diverge from the sequential driver".to_string());
    }
    if durable.failed_jobs > 0 {
        problems.push(format!("{} job(s) failed on the durable store", durable.failed_jobs));
    }
    if durable.service.duplicate_materializations > 0 {
        problems.push(format!(
            "{} duplicate materialization(s) on the durable store — single flight failed",
            durable.service.duplicate_materializations
        ));
    }
    if one.failed_jobs > 0 || many.failed_jobs > 0 {
        problems.push(format!(
            "failed jobs: {} (1-worker), {} ({}-worker)",
            one.failed_jobs, many.failed_jobs, args.workers
        ));
    }
    if one.result_digests != sequential.result_digests {
        problems.push("1-worker digests diverge from the sequential driver".to_string());
    }
    if many.result_digests != one.result_digests {
        problems.push(format!("{}-worker digests diverge from the 1-worker run", args.workers));
    }
    if many.service.duplicate_materializations > 0 {
        problems.push(format!(
            "{} duplicate materialization(s) — single flight failed",
            many.service.duplicate_materializations
        ));
    }
    if let (Some(o1), Some(on)) = (&obs_one, &obs_many) {
        // Worker count may move span timings, never the span tree.
        if o1.tracer.structure_json() != on.tracer.structure_json() {
            problems
                .push(format!("trace structure diverges between 1 and {} workers", args.workers));
        }
        if o1.tracer.unbalanced_ends() + on.tracer.unbalanced_ends() > 0 {
            problems.push("unbalanced span begin/end pairs in the tracer".to_string());
        }
    }

    let jps_1 = jobs_per_sec(&one);
    let jps_n = jobs_per_sec(&many);
    let speedup = if jps_1 > 0.0 { jps_n / jps_1 } else { 0.0 };
    let host_parallelism =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let required_speedup = match args.min_speedup {
        Some(f) => Some(f),
        // auto: a pool cannot outrun one worker without hardware threads to
        // run on; enforce only where the comparison is meaningful.
        None if host_parallelism >= 2 => Some(1.0),
        None => None,
    };
    match required_speedup {
        Some(min) if speedup < min => problems.push(format!(
            "speedup {speedup:.2}x below required {min:.2}x ({jps_n:.2} vs {jps_1:.2} jobs/sec)"
        )),
        Some(_) => {}
        None => {
            println!("  [speedup check skipped: host has {host_parallelism} hardware thread(s)]")
        }
    }

    // Morsel gates: digest parity is unconditional; the intra-query
    // speedup bound only binds where the host has cores to scale onto.
    if !morsel.digests_agree() {
        problems.push("morsel scaling digests diverge from the serial execution".to_string());
    }
    let morsel_speedup = morsel.speedup_at(4);
    if host_parallelism >= 4 && morsel_counts.iter().any(|&w| w >= 4) {
        match morsel_speedup {
            Some(s) if s > 1.5 => {}
            Some(s) => {
                problems.push(format!("morsel speedup {s:.2}x at 4+ workers below required 1.50x"))
            }
            None => problems.push("morsel scaling curve missing its endpoints".to_string()),
        }
    } else {
        println!(
            "  [morsel speedup check skipped: host has {host_parallelism} hardware thread(s)]"
        );
    }

    // Op-state cache contracts: reuse may only move wall time, never
    // bytes — and it has to actually fire (cross-job) to prove the
    // recurring-job reuse the leg exists for.
    if let Some((_, reference, on_1, on_n)) = &op_leg {
        let st = &on_n.service.op_state;
        if on_1.result_digests != reference.result_digests {
            problems.push("op-state 1-worker digests diverge from the cache-off run".to_string());
        }
        if on_n.result_digests != reference.result_digests {
            problems.push(format!(
                "op-state {}-worker digests diverge from the cache-off run",
                args.workers
            ));
        }
        if on_1.failed_jobs > 0 || on_n.failed_jobs > 0 {
            problems.push(format!(
                "op-state leg failed jobs: {} (1-worker), {} ({}-worker)",
                on_1.failed_jobs, on_n.failed_jobs, args.workers
            ));
        }
        if st.cross_job_hits == 0 {
            problems.push("op-state cache saw no cross-job hits — reuse never fired".to_string());
        }
        if st.build_wall_avoided <= 0.0 {
            problems.push("op-state cache avoided no build wall time".to_string());
        }
    }

    // Pool accounting contract: overhead is the pool's residue around the
    // parallel phase and must never dominate it (both terms now share the
    // ready-barrier epoch).
    if many.service.parallel_wall_seconds > 0.0
        && many.service.pool_overhead_seconds >= many.service.parallel_wall_seconds
    {
        problems.push(format!(
            "pool overhead {:.4}s is not below the parallel wall {:.4}s",
            many.service.pool_overhead_seconds, many.service.parallel_wall_seconds
        ));
    }

    let bound = pipelining_savings_bound(&many.repo, many.ledger.records());
    let realized = many.service.realized_pipelining_savings;
    let s = &many.service;
    println!(
        "\n  jobs                        {}\n  \
         parallel wall (1w / {}w)    {:.3}s / {:.3}s\n  \
         pool wall (1w / {}w)        {:.3}s / {:.3}s\n  \
         phase wall ({}w)            compile {:.3}s / execute {:.3}s / commit {:.3}s (pool overhead {:.3}s)\n  \
         jobs/sec (1w / {}w)         {:.2} / {:.2}  (speedup {:.2}x)\n  \
         latency p50/p95/p99         {:.2} / {:.2} / {:.2} ms\n  \
         pipelined jobs / reads      {} / {}\n  flight waits                {}\n  \
         duplicate materializations  {}\n  realized pipelining savings {:.3} work units\n  \
         opportunity bound (Fig. 9)  {:.3} work units\n  \
         steals / deferrals          {} / {}\n  max inflight / queue depth  {} / {}",
        many.ledger.len(),
        args.workers,
        one.service.parallel_wall_seconds,
        many.service.parallel_wall_seconds,
        args.workers,
        one.service.exec_wall_seconds,
        many.service.exec_wall_seconds,
        args.workers,
        s.compile_wall_seconds,
        s.parallel_wall_seconds,
        s.commit_wall_seconds,
        s.pool_overhead_seconds,
        args.workers,
        jps_1,
        jps_n,
        speedup,
        percentile_ms(&s.latencies_ms, 50.0),
        percentile_ms(&s.latencies_ms, 95.0),
        percentile_ms(&s.latencies_ms, 99.0),
        s.pipelined_jobs,
        s.pipelined_reads,
        s.flight_waits,
        s.duplicate_materializations,
        realized,
        bound,
        s.steals,
        s.admission_deferrals,
        s.max_inflight,
        s.max_queue_depth
    );
    let curve: Vec<String> = morsel
        .points
        .iter()
        .map(|p| format!("{}w {:.1}ms", p.workers, p.wall_seconds * 1e3))
        .collect();
    println!(
        "  morsel scaling ({} rows, chunk {}, {} chunks)  {}  digests {}",
        morsel.rows,
        morsel.chunk_size,
        morsel.chunks,
        curve.join(" / "),
        if morsel.digests_agree() { "match" } else { "DIVERGE" }
    );
    println!(
        "  durable store ({}w)         {} WAL records / {} fsyncs / {} checkpoints, \
         cache hit rate {:.2}, digests {}",
        args.workers,
        store_io.wal_records_written,
        store_io.wal_fsyncs,
        store_io.checkpoints,
        store_io.page_cache_hit_rate(),
        if durable_digests_match { "match" } else { "DIVERGE" }
    );

    if let Some((op_scale, reference, on_1, on_n)) = &op_leg {
        let st = &on_n.service.op_state;
        let parity = on_1.result_digests == reference.result_digests
            && on_n.result_digests == reference.result_digests;
        println!(
            "  op-state cache (scale {}, {}w)   {} hits ({} cross-job) / {} misses \
             (rate {:.2}), {} published / {} evicted, {} B resident, \
             build wall avoided {:.2}ms, digests vs cache-off {}",
            op_scale,
            args.workers,
            st.hits,
            st.cross_job_hits,
            st.misses,
            st.hit_rate(),
            st.published,
            st.evicted,
            st.resident_bytes,
            st.build_wall_avoided * 1e3,
            if parity { "match" } else { "DIVERGE" }
        );
    }

    let digests_match = many.result_digests == sequential.result_digests;
    let scaling = match morsel.to_json() {
        Json::Obj(mut m) => {
            m.insert("speedup_at_4w", morsel_speedup.unwrap_or(0.0));
            m.insert(
                "speedup_gate_enforced",
                host_parallelism >= 4 && morsel_counts.iter().any(|&w| w >= 4),
            );
            Json::Obj(m)
        }
        other => other,
    };
    let bench = json!({
        "workload": json!({
            "days": args.days,
            "scale": args.scale,
            "seed": args.seed,
            "analytics": args.analytics as u64,
            "jobs": many.ledger.len() as u64,
            "mode": if args.open_loop { "open" } else { "closed" },
        }),
        "workers": args.workers as u64,
        "shards": s.shards as u64,
        "chunk_size": args.chunk_size as u64,
        "scaling": scaling,
        "exec_wall_seconds_1w": one.service.exec_wall_seconds,
        "exec_wall_seconds_nw": many.service.exec_wall_seconds,
        "parallel_wall_seconds_1w": one.service.parallel_wall_seconds,
        "parallel_wall_seconds_nw": many.service.parallel_wall_seconds,
        "phase_wall_seconds": json!({
            "compile": s.compile_wall_seconds,
            "execute_parallel": s.parallel_wall_seconds,
            "execute_pool": s.exec_wall_seconds,
            "commit": s.commit_wall_seconds,
            "pool_overhead": s.pool_overhead_seconds,
        }),
        "worker_busy_seconds": Json::Arr(
            s.worker_busy_seconds.iter().map(|b| Json::from(*b)).collect()
        ),
        "jobs_per_sec_1w": jps_1,
        "jobs_per_sec_nw": jps_n,
        "speedup": speedup,
        "latency_ms": json!({
            "p50": percentile_ms(&s.latencies_ms, 50.0),
            "p95": percentile_ms(&s.latencies_ms, 95.0),
            "p99": percentile_ms(&s.latencies_ms, 99.0),
        }),
        "pipelining": json!({
            "realized_savings": realized,
            "opportunity_bound": bound,
            "pipelined_jobs": s.pipelined_jobs,
            "pipelined_reads": s.pipelined_reads,
            "flight_waits": s.flight_waits,
            "duplicate_materializations": s.duplicate_materializations,
            "chunks_spooled": s.chunks_spooled,
            "chunk_assembled_reads": s.chunk_assembled_reads,
        }),
        "digest_checksum": digest_checksum(&many.result_digests),
        "digests_match_sequential": digests_match,
        "op_state": match &op_leg {
            Some((op_scale, reference, on_1, on_n)) => {
                match on_n.service.op_state.to_json() {
                    Json::Obj(mut m) => {
                        m.insert("scale", *op_scale);
                        m.insert("budget_bytes", args.op_state_budget);
                        m.insert("hits_1w", on_1.service.op_state.hits);
                        m.insert(
                            "digests_match_off_1w",
                            on_1.result_digests == reference.result_digests,
                        );
                        m.insert(
                            "digests_match_off_nw",
                            on_n.result_digests == reference.result_digests,
                        );
                        m.insert("digest_checksum_off", digest_checksum(&reference.result_digests));
                        m.insert("digest_checksum_on_1w", digest_checksum(&on_1.result_digests));
                        m.insert("digest_checksum_on_nw", digest_checksum(&on_n.result_digests));
                        Json::Obj(m)
                    }
                    other => other,
                }
            }
            None => json!({ "enabled": false }),
        },
        "store": json!({
            "page_cache_hits": store_io.page_cache_hits,
            "page_cache_misses": store_io.page_cache_misses,
            "page_cache_hit_rate": store_io.page_cache_hit_rate(),
            "pages_evicted": store_io.pages_evicted,
            "wal_fsyncs": store_io.wal_fsyncs,
            "wal_records_written": store_io.wal_records_written,
            "wal_records_replayed": store_io.wal_records_replayed,
            "recoveries": store_io.recoveries,
            "checkpoints": store_io.checkpoints,
            "bytes_written_durably": store_io.bytes_written_durably,
            "digests_match_sequential": durable_digests_match,
        }),
        "host_parallelism": host_parallelism as u64,
    });

    if let Some(path) = &args.bench_path {
        if let Err(e) = std::fs::write(path, bench.to_string_pretty()) {
            eprintln!("cv-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[bench report] {path}");
    }
    if let Some(path) = &args.json_path {
        let full = match many.report_json() {
            Json::Obj(mut map) => {
                map.insert("bench", bench.clone());
                Json::Obj(map)
            }
            other => other,
        };
        if let Err(e) = std::fs::write(path, full.to_string_pretty()) {
            eprintln!("cv-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[json report] {path}");
    }
    if args.bench_path.is_none() && args.json_path.is_none() {
        println!("\n{}", bench.to_string_compact());
    }

    if let Some(path) = &args.trace_path {
        let obs = obs_many.as_ref().expect("--trace implies observability");
        // pid 1 = the live service run, pid 2 = the simulated cluster
        // replay, merged into one Chrome trace file.
        let mut events = obs.tracer.chrome_events(1);
        let results: Vec<_> = many.ledger.records().iter().map(|r| r.result.clone()).collect();
        events.extend(cv_cluster::timeline::chrome_events(&results, 2));
        let n_events = events.len();
        let trace = chrome_trace(events);
        let text = trace.to_string_pretty();
        if Json::parse(&text).ok().as_ref() != Some(&trace) {
            eprintln!("cv-serve: trace JSON failed the parse-back self-check");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cv-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[chrome trace] {path} ({n_events} events)");
    }
    if let Some(path) = &args.metrics_path {
        let obs = obs_many.as_ref().expect("--metrics implies observability");
        if let Err(e) = std::fs::write(path, obs.metrics.to_json().to_string_pretty()) {
            eprintln!("cv-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[metrics] {path}");
    }

    if problems.is_empty() {
        println!(
            "\ncv-serve: all contracts hold — digests identical across drivers and worker counts"
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("cv-serve: VIOLATION: {p}");
        }
        ExitCode::FAILURE
    }
}
