//! `cv-analyze` — sweep the synthetic workload's job templates through the
//! optimizer under several reuse configurations and report every CV0xx
//! diagnostic the plan analyzer finds.
//!
//! This is the offline counterpart of the in-optimizer verification hook:
//! instead of failing one job, it audits the whole template population
//! (baseline / build-only / full feedback loop) and prints an aggregate
//! report in text and JSON. Exit code is non-zero iff any error-severity
//! diagnostic fired — wire it into CI next to the test suite.
//!
//! Usage:
//!   cv-analyze [--days N] [--scale F] [--json PATH] [--verbose] [--trace PATH]
//!   cv-analyze --containment [--days N] [--scale F] [--seed N] [--json PATH]
//!
//! `--containment` switches to the semantic-reuse audit: the seeded Zipf
//! workload is driven twice through the concurrent service — once with the
//! widened (containment-certified) view-match cascade, once with exact
//! signatures only — and the report compares per-job result digests
//! (which must be byte-identical), splits the reuse hit rate into exact
//! vs. compensated, and breaks the prover cascade down into
//! considered / proven / vetoed-per-CV06x-code counters.

use cv_analyzer::{Analyzer, Diagnostic, Report, Severity};
use cv_common::hash::Sig128;
use cv_common::ids::JobId;
use cv_common::json::{json, Json, JsonMap, ToJson};
use cv_common::rng::DetRng;
use cv_common::SimDay;
use cv_engine::engine::QueryEngine;
use cv_engine::normalize::normalize;
use cv_engine::optimizer::{AlwaysGrant, OptimizerConfig, ReuseContext, ViewMeta};
use cv_obs::Tracer;
use cv_workload::schemas::raw_specs;
use cv_workload::{
    generate_workload, ivm_stats_json, run_workload, run_workload_service_obs, DriverConfig,
    DurableStoreConfig, IvmMode, ServiceConfig, ServiceObs, StoreBackend, TemplateKind,
    WorkloadConfig,
};
use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

#[derive(Clone, Copy, Debug)]
struct SweepConfig {
    name: &'static str,
    match_views: bool,
    build_views: bool,
}

const SWEEPS: &[SweepConfig] = &[
    SweepConfig { name: "baseline", match_views: false, build_views: false },
    SweepConfig { name: "build-only", match_views: false, build_views: true },
    SweepConfig { name: "match+build", match_views: true, build_views: true },
];

#[derive(Debug, Default)]
struct SweepOutcome {
    jobs: u64,
    compile_failures: u64,
    views_matched: u64,
    views_built: u64,
    diagnostics: Vec<Diagnostic>,
}

struct Args {
    days: u32,
    scale: f64,
    seed: u64,
    json_path: Option<String>,
    verbose: bool,
    trace_path: Option<String>,
    containment: bool,
    ivm: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        days: 4,
        scale: 0.15,
        seed: 42,
        json_path: None,
        verbose: false,
        trace_path: None,
        containment: false,
        ivm: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value `{v}`"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--json" => args.json_path = Some(it.next().ok_or("--json needs a path")?),
            "--verbose" | "-v" => args.verbose = true,
            "--trace" => args.trace_path = Some(it.next().ok_or("--trace needs a path")?),
            "--containment" => args.containment = true,
            "--ivm" => args.ivm = true,
            "--help" | "-h" => {
                println!(
                    "cv-analyze: audit optimizer output over the workload templates\n\n\
                     options:\n  --days N      simulated days to sweep (default 4)\n  \
                     --scale F     workload data scale (default 0.15)\n  \
                     --seed N      workload seed (default 42, --containment only)\n  \
                     --json PATH   also write the JSON report to PATH\n  \
                     --verbose     print every diagnostic as it fires\n  \
                     --trace PATH  write a Chrome trace (spans per template x config) to PATH\n  \
                     --containment run the semantic-reuse audit (on/off digest parity,\n                \
                     exact vs. compensated hit rates, prover cascade counters)\n  \
                     --ivm         run the incremental-maintenance audit (maintain vs.\n                \
                     ingest-only digest parity, rows-touched savings, CV07x vetoes)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Compile-and-run one reuse configuration over the whole template
/// population for `days` days, auditing every optimized plan.
///
/// With a tracer, every template compile gets a span on `track` (one track
/// per sweep configuration) with the template id and match/build counters.
fn run_sweep(
    sweep: SweepConfig,
    args: &Args,
    analyzer: &Analyzer,
    tracer: Option<&Tracer>,
    track: u64,
) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    let workload = generate_workload(WorkloadConfig::default());

    let mut cfg = OptimizerConfig::default();
    cfg.enable_view_match = sweep.match_views;
    cfg.enable_view_build = sweep.build_views;
    // The CLI inspects reports itself; the in-engine hook would turn the
    // first error into a compile failure and hide the rest.
    cfg.verify_plans = false;
    let mut engine = QueryEngine::with_config(cfg);

    // Raw data, refreshed on each dataset's own cadence (guid rotation).
    let mut rng = DetRng::seed(7);
    let mut dataset_ids = HashMap::new();
    let mut sig_counts: HashMap<Sig128, u32> = HashMap::new();
    let mut job_seq = 0u64;

    for day_idx in 0..args.days {
        let day = SimDay(day_idx);
        let now = day.start();
        for spec in raw_specs() {
            if day_idx % spec.update_every_days != 0 {
                continue;
            }
            let table = spec.generate(&mut rng, args.scale, day);
            match dataset_ids.get(spec.name) {
                None => {
                    let id = engine
                        .catalog
                        .register(spec.name, table, now)
                        .expect("register raw dataset");
                    dataset_ids.insert(spec.name, id);
                }
                Some(&id) => {
                    engine.catalog.bulk_update(id, table, now).expect("refresh raw dataset");
                }
            }
        }

        // Cooking first: analytics templates read the cooked outputs.
        let mut due: Vec<_> = workload.templates.iter().filter(|t| t.due_on(day)).collect();
        due.sort_by_key(|t| matches!(t.kind, TemplateKind::Analytics));

        for template in due {
            if let Some(t) = tracer {
                t.begin(track, "template");
            }
            let plan = match template.build_plan(&engine, day) {
                Ok(p) => p,
                Err(_) => {
                    // Analytics over a dataset not cooked yet this sweep.
                    out.compile_failures += 1;
                    if let Some(t) = tracer {
                        t.end_with(track, &[("template", template.id.0), ("failed", 1)]);
                    }
                    continue;
                }
            };
            out.jobs += 1;

            // Reuse annotations for this job, as the insights service
            // would serve them: live views + recurring build candidates.
            let mut reuse = ReuseContext::empty();
            let live: HashSet<Sig128> =
                engine.views.iter().filter(|v| v.expires > now).map(|v| v.strict_sig).collect();
            if sweep.match_views {
                for view in engine.views.iter().filter(|v| v.expires > now) {
                    reuse
                        .available
                        .insert(view.strict_sig, ViewMeta::hot(view.rows as u64, view.bytes));
                }
            }
            if sweep.build_views {
                if let Ok(subs) = engine.subexpressions(&plan) {
                    for sub in subs.iter().filter(|s| !s.is_root && s.node_count > 1) {
                        let count = sig_counts.entry(sub.strict).or_insert(0);
                        *count += 1;
                        if *count >= 2 && !reuse.available.contains_key(&sub.strict) {
                            reuse.to_build.insert(sub.strict);
                        }
                    }
                }
            }

            let normalized = match normalize(&plan, &engine.optimizer.cfg.sig) {
                Ok(n) => n,
                Err(_) => {
                    out.compile_failures += 1;
                    if let Some(t) = tracer {
                        t.end_with(track, &[("template", template.id.0), ("failed", 1)]);
                    }
                    continue;
                }
            };
            let compiled = match engine.optimize(&plan, &reuse, &mut AlwaysGrant) {
                Ok(c) => c,
                Err(_) => {
                    out.compile_failures += 1;
                    if let Some(t) = tracer {
                        t.end_with(track, &[("template", template.id.0), ("failed", 1)]);
                    }
                    continue;
                }
            };
            out.views_matched += compiled.outcome.matched_views.len() as u64;
            out.views_built += compiled.outcome.built_views.len() as u64;

            let report =
                analyzer.analyze_outcome(&normalized, &compiled.outcome, &reuse, Some(&live));
            if let Some(t) = tracer {
                t.end_with(
                    track,
                    &[
                        ("template", template.id.0),
                        ("matched", compiled.outcome.matched_views.len() as u64),
                        ("built", compiled.outcome.built_views.len() as u64),
                        ("diagnostics", report.diagnostics.len() as u64),
                    ],
                );
            }
            if args.verbose {
                for d in &report.diagnostics {
                    println!("  [{}] {}", sweep.name, d);
                }
            }
            out.diagnostics.extend(report.diagnostics);

            // Execute + seal so later jobs can match this job's views, and
            // register cooked outputs for downstream analytics.
            job_seq += 1;
            let outcome = engine
                .run_plan(&plan, &reuse, JobId(job_seq), template.vc, now)
                .expect("execute swept job");
            if let Some(output) = template.output_dataset() {
                match dataset_ids.get(output) {
                    None => {
                        let id = engine
                            .catalog
                            .register(output, outcome.table.clone(), now)
                            .expect("register cooked dataset");
                        dataset_ids
                            .insert(Box::leak(output.to_string().into_boxed_str()) as &str, id);
                    }
                    Some(&id) => {
                        engine
                            .catalog
                            .bulk_update(id, outcome.table.clone(), now)
                            .expect("refresh cooked dataset");
                    }
                }
            }
        }
    }
    out
}

/// The `--containment` audit: drive the same seeded Zipf workload through
/// the concurrent service twice — semantic matching on (with the cascade
/// counters recorded) and off — then require byte-identical per-job result
/// digests and report the exact vs. compensated reuse split.
fn run_containment(args: &Args) -> ExitCode {
    let wl_cfg = WorkloadConfig { seed: args.seed, scale: args.scale, ..WorkloadConfig::default() };
    let workload = generate_workload(wl_cfg);
    let svc = ServiceConfig::default();
    println!(
        "cv-analyze --containment: seed {} | {} day(s) | scale {} | {} worker(s)",
        args.seed, args.days, args.scale, svc.workers
    );

    let cfg_on = DriverConfig::enabled(args.days);
    let obs = ServiceObs::new();
    let on = match run_workload_service_obs(&workload, &cfg_on, &svc, Some(&obs)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cv-analyze: semantic-on run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg_off = DriverConfig::enabled(args.days);
    cfg_off.optimizer.enable_semantic_match = false;
    let off = match run_workload_service_obs(&workload, &cfg_off, &svc, None) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cv-analyze: semantic-off run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Durable-store leg: the same semantic-on configuration through the
    // sequential driver on the disk-backed store. Moving the view store to
    // disk must not move a single result digest.
    let store_dir = std::env::temp_dir().join(format!("cv-analyze-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut cfg_durable = DriverConfig::enabled(args.days);
    cfg_durable.store = StoreBackend::Durable(DurableStoreConfig::new(&store_dir));
    let durable = match run_workload(&workload, &cfg_durable) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cv-analyze: durable-store run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_io = durable.store_io.clone().expect("durable run reports io stats");
    let durable_digests_match = durable.result_digests == on.result_digests;

    let digests_match = on.result_digests == off.result_digests;
    let totals = on.ledger.totals();
    let off_totals = off.ledger.totals();
    let exact = totals.views_reused - totals.views_reused_semantic;
    let jobs = totals.jobs.max(1) as f64;
    let exact_rate = exact as f64 / jobs;
    let compensated_rate = totals.views_reused_semantic as f64 / jobs;

    // Prover cascade counters, as the optimizer sink recorded them.
    let metric_values = obs.metrics.deterministic_values();
    let considered = metric_values.get("optimizer.semantic_considered").copied().unwrap_or(0);
    let proven = metric_values.get("optimizer.semantic_proven").copied().unwrap_or(0);
    let mut vetoes = JsonMap::new();
    let mut vetoed_total = 0u64;
    for (name, value) in &metric_values {
        if let Some(code) = name.strip_prefix("optimizer.semantic_veto.") {
            vetoes.insert(code, *value);
            vetoed_total += value;
        }
    }

    println!("\n=== semantic on ===");
    println!("  jobs                 {}", totals.jobs);
    println!("  views reused         {}", totals.views_reused);
    println!("    exact              {exact}  ({:.4} per job)", exact_rate);
    println!(
        "    compensated        {}  ({:.4} per job)",
        totals.views_reused_semantic, compensated_rate
    );
    println!(
        "  prover cascade       {considered} considered / {proven} proven / {vetoed_total} vetoed"
    );
    for (code, count) in vetoes.iter() {
        println!("    veto {code}        {count}");
    }
    println!("=== semantic off ===");
    println!("  jobs                 {}", off_totals.jobs);
    println!("  views reused         {} (all exact)", off_totals.views_reused);
    println!(
        "=== digest parity ===\n  {} per-job digests, byte-identical: {}",
        on.result_digests.len(),
        digests_match
    );
    println!(
        "=== durable store ===\n  {} WAL records / {} fsyncs / {} checkpoints, \
         cache hit rate {:.2}, digests match service run: {}",
        store_io.wal_records_written,
        store_io.wal_fsyncs,
        store_io.checkpoints,
        store_io.page_cache_hit_rate(),
        durable_digests_match
    );

    let report = json!({
        "mode": "containment",
        "seed": args.seed,
        "days": args.days,
        "scale": args.scale,
        "workers": svc.workers as u64,
        "jobs": totals.jobs,
        "failed_jobs": on.failed_jobs + off.failed_jobs,
        "digests_match": digests_match,
        "views_reused": totals.views_reused,
        "views_reused_exact": exact,
        "views_reused_semantic": totals.views_reused_semantic,
        "exact_hit_rate": exact_rate,
        "compensated_hit_rate": compensated_rate,
        "baseline_views_reused": off_totals.views_reused,
        "semantic_considered": considered,
        "semantic_proven": proven,
        "semantic_vetoed": vetoed_total,
        "vetoes_by_code": Json::Obj(vetoes),
        "durable_digests_match": durable_digests_match,
        "store": json!({
            "page_cache_hits": store_io.page_cache_hits,
            "page_cache_misses": store_io.page_cache_misses,
            "page_cache_hit_rate": store_io.page_cache_hit_rate(),
            "pages_evicted": store_io.pages_evicted,
            "wal_fsyncs": store_io.wal_fsyncs,
            "wal_records_written": store_io.wal_records_written,
            "wal_records_replayed": store_io.wal_records_replayed,
            "recoveries": store_io.recoveries,
            "checkpoints": store_io.checkpoints,
            "bytes_written_durably": store_io.bytes_written_durably,
        }),
    });
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report.to_string_pretty()) {
            eprintln!("cv-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[json report] {path}");
    } else {
        println!("\n{}", report.to_string_compact());
    }

    if !digests_match {
        eprintln!("cv-analyze: FAIL — semantic matching changed at least one result digest");
        return ExitCode::FAILURE;
    }
    if !durable_digests_match {
        eprintln!("cv-analyze: FAIL — the durable store changed at least one result digest");
        return ExitCode::FAILURE;
    }
    if on.failed_jobs + off.failed_jobs > 0 {
        eprintln!("cv-analyze: FAIL — {} job(s) failed", on.failed_jobs + off.failed_jobs);
        return ExitCode::FAILURE;
    }
    println!("cv-analyze: digests identical across semantic on/off");
    ExitCode::SUCCESS
}

/// The `--ivm` audit: replay the same seeded workload twice under
/// delta-producing ingestion — once with incremental maintenance of
/// certified recurring views, once executing every job in full — then
/// require byte-identical per-job result digests and report the
/// rows-touched savings plus the CV07x veto and fallback breakdowns.
fn run_ivm(args: &Args) -> ExitCode {
    let wl_cfg = WorkloadConfig { seed: args.seed, scale: args.scale, ..WorkloadConfig::default() };
    let workload = generate_workload(wl_cfg);
    println!("cv-analyze --ivm: seed {} | {} day(s) | scale {}", args.seed, args.days, args.scale);

    let mut cfg_on = DriverConfig::enabled(args.days);
    cfg_on.ivm = IvmMode::Maintain;
    let mut cfg_off = cfg_on.clone();
    cfg_off.ivm = IvmMode::Ingest;

    let on = match run_workload(&workload, &cfg_on) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cv-analyze: ivm-maintain run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let off = match run_workload(&workload, &cfg_off) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cv-analyze: ingest-only run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stats = on.ivm.clone().expect("maintain mode reports ivm stats");
    // Counters also land in an obs metrics registry, exactly as a service
    // deployment would export them (`ivm.maintained`, `ivm.veto.CV07x`...).
    let obs = ServiceObs::new();
    obs.record_ivm(&stats);

    let digests_match = on.result_digests == off.result_digests;
    let rows_touched = stats.rows_maintained + stats.rows_bootstrap;
    let savings_ratio = if stats.rows_rebuild_baseline > 0 {
        stats.rows_maintained as f64 / stats.rows_rebuild_baseline as f64
    } else {
        1.0
    };

    println!("\n=== maintenance ===");
    println!("  views maintained     {}", stats.maintained);
    println!("  fallback rebuilds    {}", stats.rebuilt);
    for (reason, n) in &stats.rebuild_reasons {
        println!("    {reason:<18} {n}");
    }
    println!("  CV07x refusals       {}", stats.refused);
    for (code, n) in &stats.vetoes {
        println!("    veto {code}         {n}");
    }
    println!("=== rows touched ===");
    println!("  maintenance          {}", stats.rows_maintained);
    println!("  state bootstrap      {}", stats.rows_bootstrap);
    println!("  rebuild baseline     {}", stats.rows_rebuild_baseline);
    println!("  maintenance / rebuild ratio  {savings_ratio:.4}");
    println!(
        "=== digest parity ===\n  {} per-job digests, byte-identical: {}",
        off.result_digests.len(),
        digests_match
    );

    let report = json!({
        "mode": "ivm",
        "seed": args.seed,
        "days": args.days,
        "scale": args.scale,
        "jobs": off.result_digests.len() as u64,
        "failed_jobs": on.failed_jobs + off.failed_jobs,
        "digests_match": digests_match,
        "ivm": ivm_stats_json(&stats),
        "rows_touched_total": rows_touched,
        "savings_ratio": savings_ratio,
        "obs_counters": json!({
            "ivm.maintained": obs.metrics.deterministic_values().get("ivm.maintained").copied().unwrap_or(0),
            "ivm.rebuilt": obs.metrics.deterministic_values().get("ivm.rebuilt").copied().unwrap_or(0),
            "ivm.refused": obs.metrics.deterministic_values().get("ivm.refused").copied().unwrap_or(0),
        }),
    });
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report.to_string_pretty()) {
            eprintln!("cv-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[json report] {path}");
    } else {
        println!("\n{}", report.to_string_compact());
    }

    if !digests_match {
        eprintln!("cv-analyze: FAIL — incremental maintenance changed at least one result digest");
        return ExitCode::FAILURE;
    }
    if on.failed_jobs + off.failed_jobs > 0 {
        eprintln!("cv-analyze: FAIL — {} job(s) failed", on.failed_jobs + off.failed_jobs);
        return ExitCode::FAILURE;
    }
    if stats.maintained == 0 {
        eprintln!("cv-analyze: FAIL — no views were maintained incrementally");
        return ExitCode::FAILURE;
    }
    if stats.rows_maintained >= stats.rows_rebuild_baseline {
        eprintln!(
            "cv-analyze: FAIL — maintenance rows {} did not beat the rebuild baseline {}",
            stats.rows_maintained, stats.rows_rebuild_baseline
        );
        return ExitCode::FAILURE;
    }
    println!("cv-analyze: digests identical across maintain/ingest-only");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cv-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if args.containment {
        return run_containment(&args);
    }
    if args.ivm {
        return run_ivm(&args);
    }

    let analyzer = Analyzer::new(&OptimizerConfig::default());
    println!(
        "cv-analyze: sweeping workload templates over {} day(s) at scale {} \
         under {} reuse configuration(s)",
        args.days,
        args.scale,
        SWEEPS.len()
    );
    println!("checks:");
    for check in analyzer.registry().checks() {
        println!("  {} {:<24} {}", check.family(), check.name(), check.description());
    }

    let tracer = args.trace_path.as_ref().map(|_| Tracer::new());
    let mut sweeps = Vec::new();
    let mut total_errors = 0usize;
    for (track, &sweep) in SWEEPS.iter().enumerate() {
        let track = track as u64;
        if let Some(t) = &tracer {
            t.begin(track, sweep.name);
        }
        let outcome = run_sweep(sweep, &args, &analyzer, tracer.as_ref(), track);
        if let Some(t) = &tracer {
            t.end_with(
                track,
                &[
                    ("jobs", outcome.jobs),
                    ("views_matched", outcome.views_matched),
                    ("views_built", outcome.views_built),
                ],
            );
        }
        let report = Report { diagnostics: outcome.diagnostics.clone() };
        let errors = report.errors().count();
        let warnings =
            report.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count();
        total_errors += errors;
        println!(
            "\n=== {} ===\n  jobs optimized     {}\n  compile failures   {}\n  \
             views matched      {}\n  views built        {}\n  \
             diagnostics        {} error(s), {} warning(s)",
            sweep.name,
            outcome.jobs,
            outcome.compile_failures,
            outcome.views_matched,
            outcome.views_built,
            errors,
            warnings
        );
        if !report.is_clean() && !args.verbose {
            print!("{}", report.to_text());
        }
        sweeps.push(json!({
            "config": sweep.name,
            "jobs": outcome.jobs,
            "compile_failures": outcome.compile_failures,
            "views_matched": outcome.views_matched,
            "views_built": outcome.views_built,
            "errors": errors as u64,
            "warnings": warnings as u64,
            "diagnostics": report.to_json().get("diagnostics").cloned().unwrap_or(Json::Null),
        }));
    }

    let report_json = json!({
        "days": args.days,
        "scale": args.scale,
        "sweeps": sweeps,
        "total_errors": total_errors as u64,
    });
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, report_json.to_string_pretty()) {
            eprintln!("cv-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n[json report] {path}");
    } else {
        println!("\n{}", report_json.to_string_compact());
    }
    if let (Some(path), Some(t)) = (&args.trace_path, &tracer) {
        if let Err(e) = std::fs::write(path, t.to_chrome_json().to_string_pretty()) {
            eprintln!("cv-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[chrome trace] {path} ({} spans)", t.span_count());
    }

    if total_errors > 0 {
        eprintln!("cv-analyze: {total_errors} error-severity diagnostic(s)");
        ExitCode::FAILURE
    } else {
        println!("\ncv-analyze: all plans clean");
        ExitCode::SUCCESS
    }
}
