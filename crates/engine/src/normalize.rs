//! Plan normalization.
//!
//! CloudViews considers "the same logical query subexpressions (with some
//! normalization)" (paper §1). This module is that normalization: a
//! deterministic, idempotent canonical form such that plans differing only in
//! trivial syntax — conjunct order, filter splitting, inner-join input
//! order, redundant projections — hash to the same signature.
//!
//! Deliberately *not* done here (paper §5.3): general logical equivalence or
//! containment. Those live in the `cv-extensions` crate as the future-work
//! reproduction.
//!
//! Note on column pruning: we intentionally do NOT push minimal projections
//! toward the leaves. Two queries that share a scan→filter→join prefix but
//! project different columns downstream would stop sharing the prefix if
//! each pruned it differently; keeping prefixes wide maximizes signature
//! collisions, which is the entire point.

use crate::expr::fold::{conjoin, normalize_expr, split_conjunction};
use crate::expr::ScalarExpr;
use crate::plan::{JoinKind, LogicalPlan};
use crate::signature::{order_key, SignatureConfig};
use cv_common::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Normalize a plan to canonical form. Deterministic and idempotent.
pub fn normalize(plan: &Arc<LogicalPlan>, cfg: &SignatureConfig) -> Result<Arc<LogicalPlan>> {
    let mut current = plan.clone();
    // Fixpoint: each pass is a full bottom-up rewrite; rules strictly reduce
    // node count or move filters downward / reorder canonically, so this
    // terminates quickly. The iteration cap is a safety net.
    for _ in 0..16 {
        let next = rewrite_once(&current, cfg)?;
        if next == current {
            return Ok(next);
        }
        current = next;
    }
    Ok(current)
}

fn rewrite_once(plan: &Arc<LogicalPlan>, cfg: &SignatureConfig) -> Result<Arc<LogicalPlan>> {
    // Rewrite children first.
    let new_children: Result<Vec<Arc<LogicalPlan>>> =
        plan.children().into_iter().map(|c| rewrite_once(c, cfg)).collect();
    let node = plan.with_children(new_children?)?;
    let node = apply_local_rules(node, cfg)?;
    Ok(Arc::new(node))
}

fn apply_local_rules(node: LogicalPlan, cfg: &SignatureConfig) -> Result<LogicalPlan> {
    let node = normalize_node_exprs(node);
    let node = merge_adjacent_filters(node);
    let node = remove_trivial_filter(node);
    let node = merge_adjacent_projects(node);
    let node = drop_identity_project(node)?;
    let node = push_filter_down(node, cfg)?;
    let node = canonical_join_order(node, cfg);
    Ok(node)
}

/// Normalize every scalar expression embedded in the node.
fn normalize_node_exprs(node: LogicalPlan) -> LogicalPlan {
    match node {
        LogicalPlan::Filter { predicate, input } => {
            LogicalPlan::Filter { predicate: normalize_expr(&predicate), input }
        }
        LogicalPlan::Project { exprs, input } => LogicalPlan::Project {
            exprs: exprs.into_iter().map(|(e, n)| (normalize_expr(&e), n)).collect(),
            input,
        },
        LogicalPlan::Aggregate { group_by, aggs, input } => LogicalPlan::Aggregate {
            group_by: group_by.into_iter().map(|(e, n)| (normalize_expr(&e), n)).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|e| normalize_expr(&e));
                    a
                })
                .collect(),
            input,
        },
        other => other,
    }
}

/// `Filter(p1, Filter(p2, x))` → `Filter(p1 AND p2, x)` (re-normalized so
/// conjunct order is canonical).
fn merge_adjacent_filters(node: LogicalPlan) -> LogicalPlan {
    if let LogicalPlan::Filter { predicate, input } = &node {
        if let LogicalPlan::Filter { predicate: inner_p, input: inner_in } = &**input {
            let merged = normalize_expr(&predicate.clone().and(inner_p.clone()));
            return LogicalPlan::Filter { predicate: merged, input: inner_in.clone() };
        }
    }
    node
}

/// `Filter(TRUE, x)` → `x` — arises from constant-folded predicates.
fn remove_trivial_filter(node: LogicalPlan) -> LogicalPlan {
    if let LogicalPlan::Filter { predicate, input } = &node {
        if matches!(predicate, ScalarExpr::Literal(cv_data::value::Value::Bool(true))) {
            return (**input).clone();
        }
    }
    node
}

/// `Project(outer, Project(inner, x))` → single project with inner
/// expressions inlined into the outer ones.
fn merge_adjacent_projects(node: LogicalPlan) -> LogicalPlan {
    if let LogicalPlan::Project { exprs: outer, input } = &node {
        if let LogicalPlan::Project { exprs: inner, input: inner_in } = &**input {
            let map: HashMap<&str, &ScalarExpr> =
                inner.iter().map(|(e, n)| (n.as_str(), e)).collect();
            let merged: Option<Vec<(ScalarExpr, String)>> = outer
                .iter()
                .map(|(e, n)| substitute(e, &map).map(|se| (normalize_expr(&se), n.clone())))
                .collect();
            if let Some(exprs) = merged {
                return LogicalPlan::Project { exprs, input: inner_in.clone() };
            }
        }
    }
    node
}

/// Remove projections that are exact identities of their input schema.
fn drop_identity_project(node: LogicalPlan) -> Result<LogicalPlan> {
    if let LogicalPlan::Project { exprs, input } = &node {
        let in_schema = input.schema()?;
        if exprs.len() == in_schema.len() {
            let identity = exprs.iter().zip(in_schema.fields()).all(|((e, name), f)| {
                matches!(e, ScalarExpr::Column(c) if c == &f.name) && name == &f.name
            });
            if identity {
                return Ok((**input).clone());
            }
        }
    }
    Ok(node)
}

/// Push filter conjuncts below projects (by substitution), into inner-join
/// sides, below semi/left-join left sides, and into union branches.
fn push_filter_down(node: LogicalPlan, _cfg: &SignatureConfig) -> Result<LogicalPlan> {
    let LogicalPlan::Filter { predicate, input } = &node else {
        return Ok(node);
    };
    match &**input {
        LogicalPlan::Project { exprs, input: proj_in } => {
            let map: HashMap<&str, &ScalarExpr> =
                exprs.iter().map(|(e, n)| (n.as_str(), e)).collect();
            if let Some(rewritten) = substitute(predicate, &map) {
                return Ok(LogicalPlan::Project {
                    exprs: exprs.clone(),
                    input: Arc::new(LogicalPlan::Filter {
                        predicate: normalize_expr(&rewritten),
                        input: proj_in.clone(),
                    }),
                });
            }
            Ok(node)
        }
        LogicalPlan::Join { left, right, on, kind } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            let mut left_push = Vec::new();
            let mut right_push = Vec::new();
            let mut keep = Vec::new();
            for conj in split_conjunction(predicate) {
                let cols = conj.columns();
                let all_left = cols.iter().all(|c| left_schema.contains(c));
                let all_right = cols.iter().all(|c| right_schema.contains(c));
                match kind {
                    JoinKind::Inner => {
                        if all_left {
                            left_push.push(conj);
                        } else if all_right {
                            right_push.push(conj);
                        } else {
                            keep.push(conj);
                        }
                    }
                    // For LEFT and SEMI joins only the preserved (left) side
                    // is safe to filter early.
                    JoinKind::Left | JoinKind::Semi => {
                        if all_left {
                            left_push.push(conj);
                        } else {
                            keep.push(conj);
                        }
                    }
                }
            }
            if left_push.is_empty() && right_push.is_empty() {
                return Ok(node);
            }
            let mut new_left = left.clone();
            if !left_push.is_empty() {
                new_left = Arc::new(LogicalPlan::Filter {
                    predicate: normalize_expr(&conjoin(left_push)),
                    input: new_left,
                });
            }
            let mut new_right = right.clone();
            if !right_push.is_empty() {
                new_right = Arc::new(LogicalPlan::Filter {
                    predicate: normalize_expr(&conjoin(right_push)),
                    input: new_right,
                });
            }
            let join = Arc::new(LogicalPlan::Join {
                left: new_left,
                right: new_right,
                on: on.clone(),
                kind: *kind,
            });
            if keep.is_empty() {
                Ok((*join).clone())
            } else {
                Ok(LogicalPlan::Filter { predicate: normalize_expr(&conjoin(keep)), input: join })
            }
        }
        LogicalPlan::Union { inputs } => {
            let pushed: Vec<Arc<LogicalPlan>> = inputs
                .iter()
                .map(|i| {
                    Arc::new(LogicalPlan::Filter { predicate: predicate.clone(), input: i.clone() })
                })
                .collect();
            Ok(LogicalPlan::Union { inputs: pushed })
        }
        _ => Ok(node),
    }
}

/// Canonically order the inputs of inner joins by signature, mirroring the
/// key pairs. `A ⋈ B` and `B ⋈ A` then hash identically.
fn canonical_join_order(node: LogicalPlan, cfg: &SignatureConfig) -> LogicalPlan {
    if let LogicalPlan::Join { left, right, on, kind: JoinKind::Inner } = &node {
        if order_key(right, cfg) < order_key(left, cfg) {
            return LogicalPlan::Join {
                left: right.clone(),
                right: left.clone(),
                on: on.iter().map(|(l, r)| (r.clone(), l.clone())).collect(),
                kind: JoinKind::Inner,
            };
        }
    }
    node
}

/// Substitute column references through a projection map. Returns `None` if
/// a referenced column is missing from the map (cannot be pushed).
fn substitute(expr: &ScalarExpr, map: &HashMap<&str, &ScalarExpr>) -> Option<ScalarExpr> {
    Some(match expr {
        ScalarExpr::Column(name) => (*map.get(name.as_str())?).clone(),
        ScalarExpr::Literal(_) | ScalarExpr::Param { .. } => expr.clone(),
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(substitute(left, map)?),
            right: Box::new(substitute(right, map)?),
        },
        ScalarExpr::Unary { op, expr } => {
            ScalarExpr::Unary { op: *op, expr: Box::new(substitute(expr, map)?) }
        }
        ScalarExpr::Func { func, args } => ScalarExpr::Func {
            func: *func,
            args: args.iter().map(|a| substitute(a, map)).collect::<Option<Vec<_>>>()?,
        },
        ScalarExpr::Case { branches, else_expr } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| Some((substitute(w, map)?, substitute(t, map)?)))
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(substitute(e, map)?)),
                None => None,
            },
        },
        ScalarExpr::Cast { expr, dtype } => {
            ScalarExpr::Cast { expr: Box::new(substitute(expr, map)?), dtype: *dtype }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::signature::{plan_signature, SigMode};
    use cv_common::ids::VersionGuid;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;

    fn cfg() -> SignatureConfig {
        SignatureConfig::default()
    }

    fn scan(name: &str, cols: &[(&str, DataType)]) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            dataset: name.to_string(),
            guid: VersionGuid(1),
            schema: Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect())
                .unwrap()
                .into_ref(),
        })
    }

    fn sales() -> Arc<LogicalPlan> {
        scan("sales", &[("s_cust", DataType::Int), ("price", DataType::Float)])
    }

    fn customer() -> Arc<LogicalPlan> {
        scan("customer", &[("c_id", DataType::Int), ("seg", DataType::Str)])
    }

    fn norm(p: &Arc<LogicalPlan>) -> Arc<LogicalPlan> {
        normalize(p, &cfg()).unwrap()
    }

    fn sig(p: &Arc<LogicalPlan>) -> cv_common::Sig128 {
        plan_signature(p, &cfg(), SigMode::Strict).unwrap()
    }

    #[test]
    fn idempotent_on_a_complex_plan() {
        let plan = Arc::new(LogicalPlan::Filter {
            predicate: col("seg").eq(lit("asia")).and(col("price").gt(lit(1.0))),
            input: Arc::new(LogicalPlan::Join {
                left: sales(),
                right: customer(),
                on: vec![("s_cust".into(), "c_id".into())],
                kind: JoinKind::Inner,
            }),
        });
        let once = norm(&plan);
        let twice = norm(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn split_filters_merge_to_same_form() {
        let base = || {
            Arc::new(LogicalPlan::Filter {
                predicate: col("price").gt(lit(1.0)),
                input: Arc::new(LogicalPlan::Filter {
                    predicate: col("s_cust").eq(lit(5)),
                    input: sales(),
                }),
            })
        };
        let combined = Arc::new(LogicalPlan::Filter {
            predicate: col("s_cust").eq(lit(5)).and(col("price").gt(lit(1.0))),
            input: sales(),
        });
        assert_eq!(sig(&norm(&base())), sig(&norm(&combined)));
        // And with the conjuncts in the other order.
        let flipped = Arc::new(LogicalPlan::Filter {
            predicate: col("price").gt(lit(1.0)).and(col("s_cust").eq(lit(5))),
            input: sales(),
        });
        assert_eq!(sig(&norm(&flipped)), sig(&norm(&combined)));
    }

    #[test]
    fn join_input_order_is_canonical() {
        let ab = Arc::new(LogicalPlan::Join {
            left: sales(),
            right: customer(),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Inner,
        });
        let ba = Arc::new(LogicalPlan::Join {
            left: customer(),
            right: sales(),
            on: vec![("c_id".into(), "s_cust".into())],
            kind: JoinKind::Inner,
        });
        assert_eq!(sig(&norm(&ab)), sig(&norm(&ba)));
    }

    #[test]
    fn left_join_order_is_preserved() {
        let lj = |l: Arc<LogicalPlan>, r: Arc<LogicalPlan>, k: (&str, &str)| {
            Arc::new(LogicalPlan::Join {
                left: l,
                right: r,
                on: vec![(k.0.into(), k.1.into())],
                kind: JoinKind::Left,
            })
        };
        let a = lj(sales(), customer(), ("s_cust", "c_id"));
        let b = lj(customer(), sales(), ("c_id", "s_cust"));
        assert_ne!(sig(&norm(&a)), sig(&norm(&b)));
    }

    #[test]
    fn filter_pushed_through_project() {
        let plan = Arc::new(LogicalPlan::Filter {
            predicate: col("cust").eq(lit(5)),
            input: Arc::new(LogicalPlan::Project {
                exprs: vec![(col("s_cust"), "cust".to_string())],
                input: sales(),
            }),
        });
        let n = norm(&plan);
        // Project ends up on top, filter (rewritten to s_cust) below.
        match &*n {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert!(predicate.columns().contains(&"s_cust".to_string()));
                }
                other => panic!("expected Filter under Project, got {}", other.kind_name()),
            },
            other => panic!("expected Project at root, got {}", other.kind_name()),
        }
    }

    #[test]
    fn filter_pushed_into_inner_join_sides() {
        let plan = Arc::new(LogicalPlan::Filter {
            predicate: col("seg").eq(lit("asia")).and(col("price").gt(lit(1.0))),
            input: Arc::new(LogicalPlan::Join {
                left: sales(),
                right: customer(),
                on: vec![("s_cust".into(), "c_id".into())],
                kind: JoinKind::Inner,
            }),
        });
        let n = norm(&plan);
        // Root should now be the join with per-side filters.
        match &*n {
            LogicalPlan::Join { left, right, .. } => {
                assert_eq!(left.kind_name(), "Filter");
                assert_eq!(right.kind_name(), "Filter");
            }
            other => panic!("expected Join at root, got {}", other.kind_name()),
        }
        // Crucially: writing the filters pre-pushed produces the same form.
        let prepushed = Arc::new(LogicalPlan::Join {
            left: Arc::new(LogicalPlan::Filter {
                predicate: col("price").gt(lit(1.0)),
                input: sales(),
            }),
            right: Arc::new(LogicalPlan::Filter {
                predicate: col("seg").eq(lit("asia")),
                input: customer(),
            }),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Inner,
        });
        assert_eq!(sig(&n), sig(&norm(&prepushed)));
    }

    #[test]
    fn semi_join_only_pushes_left() {
        let plan = Arc::new(LogicalPlan::Filter {
            predicate: col("price").gt(lit(2.0)),
            input: Arc::new(LogicalPlan::Join {
                left: sales(),
                right: customer(),
                on: vec![("s_cust".into(), "c_id".into())],
                kind: JoinKind::Semi,
            }),
        });
        let n = norm(&plan);
        match &*n {
            LogicalPlan::Join { left, right, kind: JoinKind::Semi, .. } => {
                assert_eq!(left.kind_name(), "Filter");
                assert_eq!(right.kind_name(), "Scan");
            }
            other => panic!("expected Semi Join, got {}", other.kind_name()),
        }
    }

    #[test]
    fn filter_pushed_into_union_branches() {
        let plan = Arc::new(LogicalPlan::Filter {
            predicate: col("price").gt(lit(1.0)),
            input: Arc::new(LogicalPlan::Union { inputs: vec![sales(), sales()] }),
        });
        let n = norm(&plan);
        match &*n {
            LogicalPlan::Union { inputs } => {
                assert!(inputs.iter().all(|i| i.kind_name() == "Filter"));
            }
            other => panic!("expected Union, got {}", other.kind_name()),
        }
    }

    #[test]
    fn identity_project_dropped() {
        let plan = Arc::new(LogicalPlan::Project {
            exprs: vec![(col("s_cust"), "s_cust".to_string()), (col("price"), "price".to_string())],
            input: sales(),
        });
        assert_eq!(norm(&plan).kind_name(), "Scan");
        // Non-identity (reordered) projects stay.
        let reordered = Arc::new(LogicalPlan::Project {
            exprs: vec![(col("price"), "price".to_string()), (col("s_cust"), "s_cust".to_string())],
            input: sales(),
        });
        assert_eq!(norm(&reordered).kind_name(), "Project");
    }

    #[test]
    fn adjacent_projects_merge() {
        let plan = Arc::new(LogicalPlan::Project {
            exprs: vec![(col("rev").mul(lit(2.0)), "rev2".to_string())],
            input: Arc::new(LogicalPlan::Project {
                exprs: vec![(col("price").mul(lit(3.0)), "rev".to_string())],
                input: sales(),
            }),
        });
        let n = norm(&plan);
        match &*n {
            LogicalPlan::Project { exprs, input } => {
                assert_eq!(exprs.len(), 1);
                assert_eq!(input.kind_name(), "Scan");
                // (price * 3) * 2
                let cols = exprs[0].0.columns();
                assert_eq!(cols, vec!["price".to_string()]);
            }
            other => panic!("expected merged Project, got {}", other.kind_name()),
        }
    }

    #[test]
    fn constant_true_filter_removed() {
        let plan = Arc::new(LogicalPlan::Filter { predicate: lit(1).lt(lit(2)), input: sales() });
        assert_eq!(norm(&plan).kind_name(), "Scan");
    }

    #[test]
    fn normalization_changes_signature_to_canonical() {
        // The normalizer exists to make these collide:
        let v1 = Arc::new(LogicalPlan::Filter {
            predicate: col("price").gt(lit(1.0)).and(col("s_cust").eq(lit(3))),
            input: sales(),
        });
        let v2 = Arc::new(LogicalPlan::Filter {
            predicate: col("s_cust").eq(lit(3)).and(col("price").gt(lit(1.0))),
            input: sales(),
        });
        assert_ne!(sig(&v1), sig(&v2), "raw plans differ");
        assert_eq!(sig(&norm(&v1)), sig(&norm(&v2)), "normalized plans collide");
    }
}
