//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize, Sym, Token};
use crate::expr::{AggFunc, BinOp, FuncKind, UnOp};
use cv_common::{CvError, Result};
use cv_data::value::{parse_date, DataType, Value};

/// Parse SQL text into a [`Query`].
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(CvError::parse(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if *self.peek() == Token::Symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(CvError::parse(format!("expected `{s:?}`, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(CvError::parse(format!("trailing input at {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(CvError::parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut selects = vec![self.select()?];
        while self.peek().is_kw("UNION") {
            self.bump();
            self.expect_kw("ALL")?;
            selects.push(self.select()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let name = self.ident()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((name, asc));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Token::Int(n) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(CvError::parse(format!(
                        "LIMIT requires a non-negative integer, found {other:?}"
                    )))
                }
            }
        }
        Ok(Query { selects, order_by, limit })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        if self.eat_sym(Sym::Star) {
            // SELECT * — empty item list.
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                items.push(SelectItem { expr, alias });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek().is_kw("JOIN") {
                self.bump();
                JoinType::Inner
            } else if self.peek().is_kw("LEFT") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinType::Left
            } else if self.peek().is_kw("SEMI") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinType::Semi
            } else if self.peek().is_kw("INNER") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinType::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let mut on = Vec::new();
            loop {
                let l = self.primary()?;
                self.expect_sym(Sym::Eq)?;
                let r = self.primary()?;
                on.push((l, r));
                if !self.eat_kw("AND") {
                    break;
                }
            }
            joins.push(JoinClause { table, on, kind });
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        Ok(Select { items, from, joins, where_clause, group_by, having })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // Optional alias (with or without AS); guard against keywords that
        // start the next clause.
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(s) = self.peek() {
            const CLAUSES: [&str; 13] = [
                "JOIN", "LEFT", "SEMI", "INNER", "ON", "WHERE", "GROUP", "HAVING", "UNION",
                "ORDER", "LIMIT", "AND", "OR",
            ];
            if CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // Expression precedence: OR < AND < NOT < comparison < +- < */% < unary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinOp::Eq),
            Token::Symbol(Sym::NotEq) => Some(BinOp::NotEq),
            Token::Symbol(Sym::Lt) => Some(BinOp::Lt),
            Token::Symbol(Sym::LtEq) => Some(BinOp::LtEq),
            Token::Symbol(Sym::Gt) => Some(BinOp::Gt),
            Token::Symbol(Sym::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let not = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let op = if not { UnOp::IsNotNull } else { UnOp::IsNull };
            return Ok(Expr::Unary { op, expr: Box::new(left) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinOp::Add,
                Token::Symbol(Sym::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinOp::Mul,
                Token::Symbol(Sym::Slash) => BinOp::Div,
                Token::Symbol(Sym::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(inner) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Param(name) => Ok(Expr::Param(name)),
            Token::Symbol(Sym::LParen) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(id) => self.ident_expr(id),
            other => Err(CvError::parse(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn ident_expr(&mut self, id: String) -> Result<Expr> {
        let upper = id.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => return Ok(Expr::Literal(Value::Null)),
            "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
            "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
            "DATE" => {
                // DATE 'YYYY-MM-DD'
                if let Token::Str(s) = self.peek().clone() {
                    self.bump();
                    let d = parse_date(&s)
                        .ok_or_else(|| CvError::parse(format!("bad DATE literal '{s}'")))?;
                    return Ok(Expr::Literal(Value::Date(d)));
                }
                return Err(CvError::parse("DATE must be followed by a string literal"));
            }
            "CASE" => return self.case_expr(),
            "CAST" => return self.cast_expr(),
            _ => {}
        }
        // Aggregate call?
        if *self.peek() == Token::Symbol(Sym::LParen) {
            if let Some(agg) = agg_func(&upper) {
                self.bump(); // (
                if agg == AggFunc::Count && self.eat_sym(Sym::Star) {
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Agg { func: AggFunc::Count, arg: None });
                }
                let distinct = self.eat_kw("DISTINCT");
                let arg = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                let func = if distinct {
                    if agg != AggFunc::Count {
                        return Err(CvError::parse("DISTINCT only supported with COUNT"));
                    }
                    AggFunc::CountDistinct
                } else {
                    agg
                };
                return Ok(Expr::Agg { func, arg: Some(Box::new(arg)) });
            }
            // Scalar function call.
            if let Some(func) = FuncKind::from_name(&upper) {
                self.bump(); // (
                let mut args = Vec::new();
                if !self.eat_sym(Sym::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                return Ok(Expr::Func { func, args });
            }
            return Err(CvError::parse(format!("unknown function `{id}`")));
        }
        // Qualified column a.b?
        if self.eat_sym(Sym::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column(Some(id), col));
        }
        Ok(Expr::Column(None, id))
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(CvError::parse("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { branches, else_expr })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        self.expect_sym(Sym::LParen)?;
        let e = self.expr()?;
        self.expect_kw("AS")?;
        let ty = self.ident()?;
        let dtype = match ty.to_ascii_uppercase().as_str() {
            "INT" | "BIGINT" | "INTEGER" => DataType::Int,
            "FLOAT" | "DOUBLE" | "REAL" => DataType::Float,
            "STRING" | "VARCHAR" | "TEXT" => DataType::Str,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "DATE" => DataType::Date,
            other => return Err(CvError::parse(format!("unknown type `{other}` in CAST"))),
        };
        self.expect_sym(Sym::RParen)?;
        Ok(Expr::Cast { expr: Box::new(e), dtype })
    }
}

fn agg_func(upper: &str) -> Option<AggFunc> {
    Some(match upper {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "AVG" => AggFunc::Avg,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure4_queries() {
        // The three analyst queries of paper Fig. 4.
        let q1 = parse(
            "SELECT c_id, AVG(price * quantity) AS avg_sales FROM Sales \
             JOIN Customer ON s_cust = c_id \
             WHERE mkt_segment = 'asia' GROUP BY c_id",
        )
        .unwrap();
        assert_eq!(q1.selects.len(), 1);
        assert_eq!(q1.selects[0].joins.len(), 1);
        assert_eq!(q1.selects[0].group_by.len(), 1);

        let q2 = parse(
            "SELECT brand, AVG(discount) AS avg_disc FROM Sales \
             JOIN Part ON s_part = p_id JOIN Customer ON s_cust = c_id \
             WHERE mkt_segment = 'asia' GROUP BY brand",
        )
        .unwrap();
        assert_eq!(q2.selects[0].joins.len(), 2);
    }

    #[test]
    fn select_star_and_aliases() {
        let q = parse("SELECT * FROM Sales s WHERE s.price > 2").unwrap();
        assert!(q.selects[0].items.is_empty());
        assert_eq!(q.selects[0].from.alias.as_deref(), Some("s"));
        match &q.selects[0].where_clause {
            Some(Expr::Binary { left, .. }) => {
                assert_eq!(**left, Expr::Column(Some("s".into()), "price".into()));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn union_order_limit() {
        let q = parse(
            "SELECT price FROM Sales UNION ALL SELECT price FROM Sales \
             ORDER BY price DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.selects.len(), 2);
        assert_eq!(q.order_by, vec![("price".to_string(), false)]);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn expression_precedence() {
        let q = parse("SELECT a + b * c FROM T").unwrap();
        match &q.selects[0].items[0].expr {
            Expr::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(&**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("precedence broken: {other:?}"),
        }
        let q2 = parse("SELECT x FROM T WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q2.selects[0].where_clause.as_ref().unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(&**right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("precedence broken: {other:?}"),
        }
    }

    #[test]
    fn literals_and_params() {
        let q = parse(
            "SELECT x FROM T WHERE d >= DATE '2020-02-01' AND r <= @run_date AND ok = TRUE AND n IS NOT NULL",
        )
        .unwrap();
        let w = q.selects[0].where_clause.as_ref().unwrap();
        let s = format!("{w:?}");
        assert!(s.contains("Date(18293)"));
        assert!(s.contains("Param(\"run_date\")"));
        assert!(s.contains("IsNotNull"));
    }

    #[test]
    fn case_and_cast() {
        let q = parse(
            "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END AS sign, \
             CAST(x AS FLOAT) AS xf FROM T",
        )
        .unwrap();
        assert_eq!(q.selects[0].items.len(), 2);
        assert_eq!(q.selects[0].items[0].alias.as_deref(), Some("sign"));
    }

    #[test]
    fn count_variants() {
        let q =
            parse("SELECT COUNT(*) AS n, COUNT(DISTINCT x) AS d, COUNT(y) AS c FROM T").unwrap();
        let items = &q.selects[0].items;
        assert_eq!(items[0].expr, Expr::Agg { func: AggFunc::Count, arg: None });
        assert!(matches!(items[1].expr, Expr::Agg { func: AggFunc::CountDistinct, .. }));
        assert!(matches!(items[2].expr, Expr::Agg { func: AggFunc::Count, arg: Some(_) }));
    }

    #[test]
    fn join_kinds() {
        let q = parse(
            "SELECT * FROM A LEFT JOIN B ON a = b SEMI JOIN C ON a = c INNER JOIN D ON a = d",
        )
        .unwrap();
        let kinds: Vec<JoinType> = q.selects[0].joins.iter().map(|j| j.kind).collect();
        assert_eq!(kinds, vec![JoinType::Left, JoinType::Semi, JoinType::Inner]);
    }

    #[test]
    fn multi_key_join() {
        let q = parse("SELECT * FROM A JOIN B ON a1 = b1 AND a2 = b2 WHERE x = 1").unwrap();
        assert_eq!(q.selects[0].joins[0].on.len(), 2);
        assert!(q.selects[0].where_clause.is_some());
    }

    #[test]
    fn having_clause() {
        let q = parse("SELECT k, COUNT(*) AS n FROM T GROUP BY k HAVING COUNT(*) > 5").unwrap();
        assert!(q.selects[0].having.as_ref().unwrap().has_aggregate());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT x FROM").is_err());
        assert!(parse("SELECT x FROM T WHERE").is_err());
        assert!(parse("SELECT x FROM T LIMIT xyz").is_err());
        assert!(parse("SELECT nosuchfn(x) FROM T").is_err());
        assert!(parse("SELECT x FROM T extra garbage !").is_err());
        assert!(parse("SELECT SUM(DISTINCT x) FROM T").is_err());
    }

    #[test]
    fn unknown_function_vs_column() {
        // Bare identifier: column. Identifier + paren: must be known fn.
        let ok = parse("SELECT lower(name) FROM T").unwrap();
        assert!(matches!(ok.selects[0].items[0].expr, Expr::Func { func: FuncKind::Lower, .. }));
    }
}
