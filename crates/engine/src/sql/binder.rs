//! Binder: AST → validated logical plan.

use super::ast::{Expr, JoinType, Query, Select, TableRef};
use crate::expr::fold::normalize_expr;
use crate::expr::{AggExpr, ScalarExpr};
use crate::plan::{JoinKind, LogicalPlan, PlanBuilder};
use cv_common::{CvError, Result};
use cv_data::catalog::DatasetCatalog;
use cv_data::schema::SchemaRef;
use cv_data::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-instance values for `@param` markers.
#[derive(Clone, Debug, Default)]
pub struct Params {
    map: HashMap<String, Value>,
}

impl Params {
    pub fn none() -> Params {
        Params::default()
    }

    pub fn with(pairs: &[(&str, Value)]) -> Params {
        Params { map: pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect() }
    }

    pub fn insert(&mut self, name: impl Into<String>, v: Value) {
        self.map.insert(name.into(), v);
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }
}

/// Name-resolution scope: the FROM-clause tables in order.
struct Scope {
    tables: Vec<(String, SchemaRef)>,
}

impl Scope {
    /// Resolve a possibly-qualified column to its bare name.
    fn resolve(&self, qual: Option<&str>, name: &str) -> Result<String> {
        match qual {
            Some(q) => {
                let (_, schema) = self
                    .tables
                    .iter()
                    .find(|(alias, _)| alias == q)
                    .ok_or_else(|| CvError::plan(format!("unknown table alias `{q}`")))?;
                if !schema.contains(name) {
                    return Err(CvError::plan(format!("column `{name}` not in `{q}`")));
                }
                Ok(name.to_string())
            }
            None => {
                let hits = self.tables.iter().filter(|(_, s)| s.contains(name)).count();
                match hits {
                    0 => Err(CvError::plan(format!("unknown column `{name}`"))),
                    1 => Ok(name.to_string()),
                    _ => Err(CvError::plan(format!("ambiguous column `{name}`"))),
                }
            }
        }
    }

    /// Which table (by index) holds this column?
    fn table_of(&self, qual: Option<&str>, name: &str) -> Option<usize> {
        match qual {
            Some(q) => self.tables.iter().position(|(alias, s)| alias == q && s.contains(name)),
            None => self.tables.iter().position(|(_, s)| s.contains(name)),
        }
    }
}

/// Bind a parsed query against the catalog.
pub fn bind(query: &Query, catalog: &DatasetCatalog, params: &Params) -> Result<Arc<LogicalPlan>> {
    let mut bound: Vec<PlanBuilder> = Vec::new();
    for select in &query.selects {
        bound.push(bind_select(select, catalog, params)?);
    }
    let mut it = bound.into_iter();
    let mut builder = it.next().ok_or_else(|| CvError::plan("empty query"))?;
    for next in it {
        builder = builder.union(next)?;
    }
    if !query.order_by.is_empty() {
        let keys: Vec<(&str, bool)> =
            query.order_by.iter().map(|(n, asc)| (n.as_str(), *asc)).collect();
        builder = builder.sort(&keys)?;
    }
    if let Some(n) = query.limit {
        builder = builder.limit(n);
    }
    Ok(builder.build())
}

fn alias_of(t: &TableRef) -> String {
    t.alias.clone().unwrap_or_else(|| t.name.clone())
}

fn bind_select(select: &Select, catalog: &DatasetCatalog, params: &Params) -> Result<PlanBuilder> {
    // FROM + JOINs, left-deep in syntactic order.
    let mut scope = Scope { tables: Vec::new() };
    let first = catalog.get_by_name(&select.from.name)?;
    scope.tables.push((alias_of(&select.from), first.schema.clone()));
    let mut builder = PlanBuilder::scan(catalog, &select.from.name)?;

    for join in &select.joins {
        let ds = catalog.get_by_name(&join.table.name)?;
        let right_alias = alias_of(&join.table);
        let right_schema = ds.schema.clone();
        let right_builder = PlanBuilder::scan(catalog, &join.table.name)?;
        // Resolve ON pairs: figure out which side is which.
        let right_idx = scope.tables.len();
        scope.tables.push((right_alias.clone(), right_schema));
        let mut on: Vec<(String, String)> = Vec::new();
        for (a, b) in &join.on {
            let (aq, an) = as_column(a)?;
            let (bq, bn) = as_column(b)?;
            let a_table = scope.table_of(aq.as_deref(), &an).ok_or_else(|| {
                CvError::plan(format!("join key `{an}` not found in any FROM table"))
            })?;
            let b_table = scope.table_of(bq.as_deref(), &bn).ok_or_else(|| {
                CvError::plan(format!("join key `{bn}` not found in any FROM table"))
            })?;
            let (l, r) = if b_table == right_idx && a_table < right_idx {
                (an, bn)
            } else if a_table == right_idx && b_table < right_idx {
                (bn, an)
            } else {
                return Err(CvError::plan(format!(
                    "join condition `{an} = {bn}` must relate the joined table to a prior one"
                )));
            };
            on.push((l, r));
        }
        let kind = match join.kind {
            JoinType::Inner => JoinKind::Inner,
            JoinType::Left => JoinKind::Left,
            JoinType::Semi => JoinKind::Semi,
        };
        let on_refs: Vec<(&str, &str)> = on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
        builder = builder.join(right_builder, &on_refs, kind)?;
        if kind == JoinKind::Semi {
            // Semi join output is left-only; pop the right table from scope.
            scope.tables.pop();
        }
    }

    // WHERE.
    if let Some(w) = &select.where_clause {
        if w.has_aggregate() {
            return Err(CvError::plan("aggregates are not allowed in WHERE (use HAVING)"));
        }
        let pred = lower_scalar(w, &scope, params)?;
        builder = builder.filter(pred)?;
    }

    // Aggregate path?
    let needs_agg = !select.group_by.is_empty()
        || select.items.iter().any(|i| i.expr.has_aggregate())
        || select.having.as_ref().is_some_and(Expr::has_aggregate);

    if !needs_agg {
        if let Some(h) = &select.having {
            let pred = lower_scalar(h, &scope, params)?;
            builder = builder.filter(pred)?;
        }
        if select.items.is_empty() {
            return Ok(builder); // SELECT *
        }
        let mut exprs = Vec::with_capacity(select.items.len());
        let mut names: Vec<String> = Vec::with_capacity(select.items.len());
        for (i, item) in select.items.iter().enumerate() {
            let e = lower_scalar(&item.expr, &scope, params)?;
            let name = output_name(item.alias.as_deref(), &e, i);
            names.push(name);
            exprs.push(e);
        }
        let pairs: Vec<(ScalarExpr, &str)> =
            exprs.into_iter().zip(names.iter().map(String::as_str)).collect();
        return builder.project(pairs);
    }

    if select.items.is_empty() {
        return Err(CvError::plan("SELECT * cannot be combined with GROUP BY / aggregates"));
    }

    // Group keys.
    let mut group_by: Vec<(ScalarExpr, String)> = Vec::new();
    for (i, g) in select.group_by.iter().enumerate() {
        if g.has_aggregate() {
            return Err(CvError::plan("aggregates are not allowed in GROUP BY"));
        }
        let e = lower_scalar(g, &scope, params)?;
        let name = match &e {
            ScalarExpr::Column(c) => c.clone(),
            _ => format!("group_{i}"),
        };
        group_by.push((e, name));
    }

    // Rewrite select items and HAVING over the aggregate output.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut out_exprs: Vec<(ScalarExpr, String)> = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        // If the item is exactly one aggregate, its alias names the agg
        // directly — avoids a synthetic indirection.
        let preferred = item.alias.clone();
        let rewritten = rewrite_agg_expr(
            &item.expr,
            &scope,
            params,
            &group_by,
            &mut aggs,
            preferred.as_deref(),
        )?;
        let name = match (&item.alias, &rewritten) {
            (Some(a), _) => a.clone(),
            (None, ScalarExpr::Column(c)) => c.clone(),
            (None, _) => format!("col_{i}"),
        };
        out_exprs.push((rewritten, name));
    }
    let having_pred = match &select.having {
        Some(h) => Some(rewrite_agg_expr(h, &scope, params, &group_by, &mut aggs, None)?),
        None => None,
    };

    let group_refs: Vec<(ScalarExpr, &str)> =
        group_by.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
    builder = builder.aggregate(group_refs, aggs)?;
    if let Some(h) = having_pred {
        builder = builder.filter(h)?;
    }
    let out_refs: Vec<(ScalarExpr, &str)> =
        out_exprs.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
    builder.project(out_refs)
}

fn as_column(e: &Expr) -> Result<(Option<String>, String)> {
    match e {
        Expr::Column(q, n) => Ok((q.clone(), n.clone())),
        other => Err(CvError::plan(format!(
            "join conditions must be simple column equalities, found {other:?}"
        ))),
    }
}

fn output_name(alias: Option<&str>, e: &ScalarExpr, i: usize) -> String {
    match alias {
        Some(a) => a.to_string(),
        None => match e {
            ScalarExpr::Column(c) => c.clone(),
            _ => format!("col_{i}"),
        },
    }
}

/// Lower an aggregate-free AST expression to a scalar expression.
fn lower_scalar(e: &Expr, scope: &Scope, params: &Params) -> Result<ScalarExpr> {
    Ok(match e {
        Expr::Column(q, n) => ScalarExpr::Column(scope.resolve(q.as_deref(), n)?),
        Expr::Literal(v) => ScalarExpr::Literal(v.clone()),
        Expr::Param(name) => {
            let v = params
                .get(name)
                .ok_or_else(|| CvError::plan(format!("missing value for parameter `@{name}`")))?;
            ScalarExpr::Param { name: name.clone(), value: v.clone() }
        }
        Expr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(lower_scalar(left, scope, params)?),
            right: Box::new(lower_scalar(right, scope, params)?),
        },
        Expr::Unary { op, expr } => {
            ScalarExpr::Unary { op: *op, expr: Box::new(lower_scalar(expr, scope, params)?) }
        }
        Expr::Func { func, args } => ScalarExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| lower_scalar(a, scope, params))
                .collect::<Result<Vec<_>>>()?,
        },
        Expr::Agg { .. } => {
            return Err(CvError::plan("aggregate used outside of an aggregation context"))
        }
        Expr::Case { branches, else_expr } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((lower_scalar(w, scope, params)?, lower_scalar(t, scope, params)?))
                })
                .collect::<Result<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(b) => Some(Box::new(lower_scalar(b, scope, params)?)),
                None => None,
            },
        },
        Expr::Cast { expr, dtype } => {
            ScalarExpr::Cast { expr: Box::new(lower_scalar(expr, scope, params)?), dtype: *dtype }
        }
    })
}

/// Lower an expression that may contain aggregates, rewriting:
///   * aggregate calls → references to (registered) aggregate outputs,
///   * sub-expressions equal to a group key → references to the key.
fn rewrite_agg_expr(
    e: &Expr,
    scope: &Scope,
    params: &Params,
    group_by: &[(ScalarExpr, String)],
    aggs: &mut Vec<AggExpr>,
    preferred_alias: Option<&str>,
) -> Result<ScalarExpr> {
    // Aggregate call: register and replace.
    if let Expr::Agg { func, arg } = e {
        let lowered_arg = match arg {
            Some(a) => {
                if a.has_aggregate() {
                    return Err(CvError::plan("nested aggregates are not allowed"));
                }
                Some(lower_scalar(a, scope, params)?)
            }
            None => None,
        };
        // Deduplicate identical aggregates.
        let normalized_arg = lowered_arg.as_ref().map(normalize_expr);
        if let Some(existing) = aggs
            .iter()
            .find(|x| x.func == *func && x.arg.as_ref().map(normalize_expr) == normalized_arg)
        {
            return Ok(ScalarExpr::Column(existing.alias.clone()));
        }
        let alias =
            preferred_alias.map(str::to_string).unwrap_or_else(|| format!("agg_{}", aggs.len()));
        aggs.push(AggExpr { func: *func, arg: lowered_arg, alias: alias.clone() });
        return Ok(ScalarExpr::Column(alias));
    }
    // Aggregate-free: check for group-key equality.
    if !e.has_aggregate() {
        let lowered = lower_scalar(e, scope, params)?;
        let norm = normalize_expr(&lowered);
        if let Some((_, name)) = group_by.iter().find(|(g, _)| normalize_expr(g) == norm) {
            return Ok(ScalarExpr::Column(name.clone()));
        }
        // Constants are always fine.
        if lowered.columns().is_empty() {
            return Ok(lowered);
        }
        return Err(CvError::plan(format!(
            "expression `{lowered}` is neither an aggregate nor a GROUP BY key"
        )));
    }
    // Composite with embedded aggregates: recurse.
    Ok(match e {
        Expr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(rewrite_agg_expr(left, scope, params, group_by, aggs, None)?),
            right: Box::new(rewrite_agg_expr(right, scope, params, group_by, aggs, None)?),
        },
        Expr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(rewrite_agg_expr(expr, scope, params, group_by, aggs, None)?),
        },
        Expr::Func { func, args } => ScalarExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| rewrite_agg_expr(a, scope, params, group_by, aggs, None))
                .collect::<Result<Vec<_>>>()?,
        },
        Expr::Case { branches, else_expr } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        rewrite_agg_expr(w, scope, params, group_by, aggs, None)?,
                        rewrite_agg_expr(t, scope, params, group_by, aggs, None)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(b) => {
                    Some(Box::new(rewrite_agg_expr(b, scope, params, group_by, aggs, None)?))
                }
                None => None,
            },
        },
        Expr::Cast { expr, dtype } => ScalarExpr::Cast {
            expr: Box::new(rewrite_agg_expr(expr, scope, params, group_by, aggs, None)?),
            dtype: *dtype,
        },
        Expr::Agg { .. } | Expr::Column(..) | Expr::Literal(_) | Expr::Param(_) => {
            unreachable!("handled above")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::super::tests::test_catalog;
    use super::*;

    fn bind_sql(sql: &str) -> Result<Arc<LogicalPlan>> {
        bind(&parse(sql)?, &test_catalog(), &Params::none())
    }

    fn bind_sql_params(sql: &str, params: &Params) -> Result<Arc<LogicalPlan>> {
        bind(&parse(sql)?, &test_catalog(), params)
    }

    #[test]
    fn simple_select_star() {
        let p = bind_sql("SELECT * FROM Sales").unwrap();
        assert_eq!(p.kind_name(), "Scan");
    }

    #[test]
    fn projection_names() {
        let p = bind_sql("SELECT price AS p, quantity FROM Sales").unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["p", "quantity"]);
    }

    #[test]
    fn where_and_join() {
        let p = bind_sql("SELECT c_name FROM Sales JOIN Customer ON s_cust = c_id WHERE price > 3")
            .unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["c_name"]);
        assert_eq!(p.scanned_datasets(), vec!["Customer".to_string(), "Sales".to_string()]);
    }

    #[test]
    fn join_keys_can_be_reversed() {
        let a = bind_sql("SELECT c_name FROM Sales JOIN Customer ON s_cust = c_id").unwrap();
        let b = bind_sql("SELECT c_name FROM Sales JOIN Customer ON c_id = s_cust").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_with_group_by() {
        let p = bind_sql(
            "SELECT c_id, AVG(price * quantity) AS avg_sales \
             FROM Sales JOIN Customer ON s_cust = c_id \
             WHERE mkt_segment = 'asia' GROUP BY c_id",
        )
        .unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["c_id", "avg_sales"]);
    }

    #[test]
    fn aggregate_arithmetic_in_select() {
        let p = bind_sql(
            "SELECT c_id, SUM(price) / COUNT(*) AS manual_avg FROM Sales \
             JOIN Customer ON s_cust = c_id GROUP BY c_id",
        )
        .unwrap();
        let names = p.schema().unwrap().names().iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(names, vec!["c_id", "manual_avg"]);
    }

    #[test]
    fn duplicate_aggregates_dedup() {
        let p =
            bind_sql("SELECT SUM(price) AS a, SUM(price) + 0.0 AS b FROM Sales GROUP BY s_cust");
        // Should bind (two items, one underlying SUM) without error.
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn group_by_expression_matched_in_select() {
        let p = bind_sql(
            "SELECT YEAR(sale_date) AS y, COUNT(*) AS n FROM Sales GROUP BY YEAR(sale_date)",
        )
        .unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["y", "n"]);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = bind_sql("SELECT price, COUNT(*) AS n FROM Sales GROUP BY s_cust").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn having_filters_after_aggregate() {
        let p =
            bind_sql("SELECT s_cust, COUNT(*) AS n FROM Sales GROUP BY s_cust HAVING COUNT(*) > 5")
                .unwrap();
        // Root should be Project over Filter over Aggregate.
        assert_eq!(p.kind_name(), "Project");
        assert_eq!(p.children()[0].kind_name(), "Filter");
        assert_eq!(p.children()[0].children()[0].kind_name(), "Aggregate");
    }

    #[test]
    fn params_are_bound() {
        let params = Params::with(&[("min_price", Value::Float(2.0))]);
        let p = bind_sql_params("SELECT * FROM Sales WHERE price > @min_price", &params).unwrap();
        assert!(p.display_tree().contains("@min_price"));
        // Missing param → plan error.
        let err = bind_sql("SELECT * FROM Sales WHERE price > @min_price").unwrap_err();
        assert!(err.to_string().contains("min_price"));
    }

    #[test]
    fn qualified_and_ambiguous_columns() {
        let p =
            bind_sql("SELECT s.price FROM Sales s JOIN Customer c ON s.s_cust = c.c_id").unwrap();
        assert_eq!(p.schema().unwrap().names(), vec!["price"]);
        let err = bind_sql("SELECT s.nope FROM Sales s").unwrap_err();
        assert!(err.to_string().contains("nope"));
        let err2 = bind_sql("SELECT x.price FROM Sales s").unwrap_err();
        assert!(err2.to_string().contains("alias"));
    }

    #[test]
    fn semi_join_hides_right_columns() {
        let ok = bind_sql("SELECT price FROM Sales SEMI JOIN Customer ON s_cust = c_id").unwrap();
        assert_eq!(ok.schema().unwrap().names(), vec!["price"]);
        let err = bind_sql("SELECT mkt_segment FROM Sales SEMI JOIN Customer ON s_cust = c_id");
        assert!(err.is_err(), "semi join must hide right columns");
    }

    #[test]
    fn union_order_limit_binds() {
        let p = bind_sql(
            "SELECT price AS v FROM Sales UNION ALL SELECT discount AS v FROM Sales \
             ORDER BY v DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(p.kind_name(), "Limit");
        assert_eq!(p.children()[0].kind_name(), "Sort");
        assert_eq!(p.children()[0].children()[0].kind_name(), "Union");
    }

    #[test]
    fn where_aggregate_rejected() {
        let err = bind_sql("SELECT * FROM Sales WHERE SUM(price) > 5").unwrap_err();
        assert!(err.to_string().contains("WHERE"));
    }

    #[test]
    fn select_star_with_group_by_rejected() {
        assert!(bind_sql("SELECT * FROM Sales GROUP BY s_cust").is_err());
    }

    #[test]
    fn join_unrelated_condition_rejected() {
        let err = bind_sql("SELECT price FROM Sales JOIN Customer ON c_id = c_id").unwrap_err();
        assert!(err.to_string().contains("relate"), "{err}");
    }
}
