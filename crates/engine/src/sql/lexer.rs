//! SQL tokenizer.

use cv_common::{CvError, Result};

/// A lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved for identifiers).
    Ident(String),
    /// `@name` template parameter.
    Param(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operators.
    Symbol(Sym),
    Eof,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Token {
    /// Case-insensitive keyword check for identifier tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    return Err(CvError::parse("unexpected `!`"));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(CvError::parse("unterminated string literal"));
                    }
                    if bytes[j] == b'\'' {
                        // '' escape
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(CvError::parse("`@` must be followed by a parameter name"));
                }
                tokens.push(Token::Param(sql[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == b'.'
                            && j + 1 < bytes.len()
                            && bytes[j + 1].is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &sql[start..j];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| CvError::parse(format!("bad float literal `{text}`")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CvError::parse(format!("bad int literal `{text}`")))?;
                    tokens.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token::Ident(sql[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(CvError::parse(format!("unexpected character `{other}`")));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM T WHERE x >= 1.5 AND y <> 'it''s'").unwrap();
        assert!(t.contains(&Token::Symbol(Sym::GtEq)));
        assert!(t.contains(&Token::Symbol(Sym::NotEq)));
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::Str("it's".into())));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn params_and_comments() {
        let t = tokenize("-- header\nSELECT @run_date, x -- trailing\nFROM T").unwrap();
        assert!(t.contains(&Token::Param("run_date".into())));
        assert!(!t.iter().any(|tok| matches!(tok, Token::Ident(s) if s == "header")));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 23 4.5 0.25").unwrap();
        assert_eq!(t[0], Token::Int(1));
        assert_eq!(t[1], Token::Int(23));
        assert_eq!(t[2], Token::Float(4.5));
        assert_eq!(t[3], Token::Float(0.25));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }
}
