//! SQL abstract syntax tree.

use crate::expr::{AggFunc, BinOp, FuncKind, UnOp};
use cv_data::value::{DataType, Value};

/// A parsed expression. Unlike [`crate::expr::ScalarExpr`], this can contain
/// aggregate calls and qualified column references; the binder lowers it.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column: `(qualifier, name)`.
    Column(Option<String>, String),
    Literal(Value),
    Param(String),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Func {
        func: FuncKind,
        args: Vec<Expr>,
    },
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        dtype: DataType,
    },
}

/// One select-list item.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// A FROM-clause table with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// One JOIN clause (always INNER in the surface syntax unless prefixed).
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    /// `(left, right)` qualified column pairs from the ON conjunction.
    pub on: Vec<(Expr, Expr)>,
    pub kind: JoinType,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Semi,
}

/// A single SELECT block.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Empty = `SELECT *`.
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// A full query: one or more UNION ALL'd selects + optional ordering/limit.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub selects: Vec<Select>,
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
}

impl Expr {
    /// Does this expression contain an aggregate call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(..) | Expr::Literal(_) | Expr::Param(_) => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Unary { expr, .. } => expr.has_aggregate(),
            Expr::Func { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::Case { branches, else_expr } => {
                branches.iter().any(|(w, t)| w.has_aggregate() || t.has_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.has_aggregate())
            }
            Expr::Cast { expr, .. } => expr.has_aggregate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn aggregate_detection() {
        let plain = Expr::Column(None, "x".into());
        assert!(!plain.has_aggregate());
        let agg = Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(plain.clone())) };
        assert!(agg.has_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(agg),
            right: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert!(nested.has_aggregate());
    }
}
