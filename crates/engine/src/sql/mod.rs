//! Mini-SQL frontend.
//!
//! SCOPE scripts are SQL-like; this module reproduces the slice the
//! workloads need: `SELECT`/`FROM`/`JOIN..ON`/`WHERE`/`GROUP BY`/`HAVING`/
//! `UNION ALL`/`ORDER BY`/`LIMIT`, scalar functions, `CASE`, `CAST`, and
//! `@param` markers for recurring job templates (the binder substitutes the
//! per-instance values while the recurring signature keeps hashing the
//! parameter *name*, paper §2.3).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::{bind, Params};
pub use parser::parse;

use crate::plan::LogicalPlan;
use cv_common::Result;
use cv_data::catalog::DatasetCatalog;
use std::sync::Arc;

/// Parse + bind in one step.
pub fn compile_sql(
    sql: &str,
    catalog: &DatasetCatalog,
    params: &Params,
) -> Result<Arc<LogicalPlan>> {
    let query = parse(sql)?;
    bind(&query, catalog, params)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cv_common::SimTime;
    use cv_data::schema::{Field, Schema};
    use cv_data::table::Table;
    use cv_data::value::{DataType, Value};

    pub(crate) fn test_catalog() -> DatasetCatalog {
        let mut cat = DatasetCatalog::new();
        let sales = Schema::new(vec![
            Field::new("s_cust", DataType::Int),
            Field::new("s_part", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("quantity", DataType::Int),
            Field::new("discount", DataType::Float),
            Field::new("sale_date", DataType::Date),
        ])
        .unwrap()
        .into_ref();
        let srows: Vec<Vec<Value>> = (0..60)
            .map(|i| {
                vec![
                    Value::Int(i % 6),
                    Value::Int(i % 4),
                    Value::Float((i % 9) as f64 + 1.0),
                    Value::Int(i % 3 + 1),
                    Value::Float((i % 5) as f64 / 10.0),
                    Value::Date(18_293 + (i % 30) as i32), // ~2020-02
                ]
            })
            .collect();
        cat.register("Sales", Table::from_rows(sales, &srows).unwrap(), SimTime::EPOCH).unwrap();

        let customer = Schema::new(vec![
            Field::new("c_id", DataType::Int),
            Field::new("mkt_segment", DataType::Str),
            Field::new("c_name", DataType::Str),
        ])
        .unwrap()
        .into_ref();
        let crows: Vec<Vec<Value>> = (0..6)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(if i % 2 == 0 { "asia" } else { "emea" }.into()),
                    Value::Str(format!("cust{i}")),
                ]
            })
            .collect();
        cat.register("Customer", Table::from_rows(customer, &crows).unwrap(), SimTime::EPOCH)
            .unwrap();

        let part = Schema::new(vec![
            Field::new("p_id", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("part_type", DataType::Str),
        ])
        .unwrap()
        .into_ref();
        let prows: Vec<Vec<Value>> = (0..4)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(format!("brand{}", i % 2)),
                    Value::Str(format!("type{}", i % 3)),
                ]
            })
            .collect();
        cat.register("Part", Table::from_rows(part, &prows).unwrap(), SimTime::EPOCH).unwrap();
        cat
    }

    #[test]
    fn end_to_end_compile() {
        let cat = test_catalog();
        let plan = compile_sql(
            "SELECT c_id, AVG(price * quantity) AS avg_sales \
             FROM Sales JOIN Customer ON s_cust = c_id \
             WHERE mkt_segment = 'asia' \
             GROUP BY c_id",
            &cat,
            &Params::none(),
        )
        .unwrap();
        let schema = plan.schema().unwrap();
        assert_eq!(schema.names(), vec!["c_id", "avg_sales"]);
    }
}
