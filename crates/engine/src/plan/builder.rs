//! Fluent, validating builder for logical plans.
//!
//! The SQL binder lowers onto this builder; workload templates and tests use
//! it directly. Every step type-checks against the current schema so invalid
//! plans are rejected at build time rather than mid-execution.

use super::{JoinKind, LogicalPlan};
use crate::expr::{AggExpr, ScalarExpr};
use crate::udo::{UdoRegistry, UdoSpec};
use cv_common::{CvError, Result};
use cv_data::catalog::DatasetCatalog;
use cv_data::value::DataType;
use std::sync::Arc;

/// Builder over an in-progress plan.
#[derive(Clone, Debug)]
pub struct PlanBuilder {
    plan: Arc<LogicalPlan>,
}

impl PlanBuilder {
    /// Start from a scan of a catalog dataset at its *current* version.
    pub fn scan(catalog: &DatasetCatalog, dataset: &str) -> Result<PlanBuilder> {
        let ds = catalog.get_by_name(dataset)?;
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::Scan {
                dataset: ds.name.clone(),
                guid: ds.current_guid(),
                schema: ds.schema.clone(),
            }),
        })
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: Arc<LogicalPlan>) -> PlanBuilder {
        PlanBuilder { plan }
    }

    pub fn filter(self, predicate: ScalarExpr) -> Result<PlanBuilder> {
        let schema = self.plan.schema()?;
        let t = predicate.dtype(&schema)?;
        if t != DataType::Bool {
            return Err(CvError::plan(format!("filter predicate must be BOOL, got {t}")));
        }
        Ok(PlanBuilder { plan: Arc::new(LogicalPlan::Filter { predicate, input: self.plan }) })
    }

    pub fn project(self, exprs: Vec<(ScalarExpr, &str)>) -> Result<PlanBuilder> {
        let schema = self.plan.schema()?;
        let mut out = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            e.dtype(&schema)?; // type check
            out.push((e, name.to_string()));
        }
        let plan = LogicalPlan::Project { exprs: out, input: self.plan };
        plan.schema()?; // checks duplicate output names
        Ok(PlanBuilder { plan: Arc::new(plan) })
    }

    pub fn join(
        self,
        right: PlanBuilder,
        on: &[(&str, &str)],
        kind: JoinKind,
    ) -> Result<PlanBuilder> {
        if on.is_empty() {
            return Err(CvError::plan("join requires at least one key pair"));
        }
        let ls = self.plan.schema()?;
        let rs = right.plan.schema()?;
        for (l, r) in on {
            let lf = ls
                .field_by_name(l)
                .ok_or_else(|| CvError::plan(format!("left join key `{l}` not found in {ls}")))?;
            let rf = rs
                .field_by_name(r)
                .ok_or_else(|| CvError::plan(format!("right join key `{r}` not found in {rs}")))?;
            let compatible =
                lf.dtype == rf.dtype || (lf.dtype.is_numeric() && rf.dtype.is_numeric());
            if !compatible {
                return Err(CvError::plan(format!(
                    "join key type mismatch: {l} is {}, {r} is {}",
                    lf.dtype, rf.dtype
                )));
            }
        }
        let plan = LogicalPlan::Join {
            left: self.plan,
            right: right.plan,
            on: on.iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
            kind,
        };
        plan.schema()?; // detects output-name collisions for non-semi joins
        Ok(PlanBuilder { plan: Arc::new(plan) })
    }

    pub fn aggregate(
        self,
        group_by: Vec<(ScalarExpr, &str)>,
        aggs: Vec<AggExpr>,
    ) -> Result<PlanBuilder> {
        let schema = self.plan.schema()?;
        let mut g = Vec::with_capacity(group_by.len());
        for (e, name) in group_by {
            e.dtype(&schema)?;
            g.push((e, name.to_string()));
        }
        for a in &aggs {
            a.dtype(&schema)?;
        }
        if g.is_empty() && aggs.is_empty() {
            return Err(CvError::plan("aggregate requires group keys or aggregates"));
        }
        let plan = LogicalPlan::Aggregate { group_by: g, aggs, input: self.plan };
        plan.schema()?;
        Ok(PlanBuilder { plan: Arc::new(plan) })
    }

    pub fn union(self, other: PlanBuilder) -> Result<PlanBuilder> {
        let plan = LogicalPlan::Union { inputs: vec![self.plan, other.plan] };
        plan.schema()?;
        Ok(PlanBuilder { plan: Arc::new(plan) })
    }

    pub fn sort(self, keys: &[(&str, bool)]) -> Result<PlanBuilder> {
        let schema = self.plan.schema()?;
        for (k, _) in keys {
            if !schema.contains(k) {
                return Err(CvError::plan(format!("sort key `{k}` not found in {schema}")));
            }
        }
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::Sort {
                keys: keys.iter().map(|(k, asc)| (k.to_string(), *asc)).collect(),
                input: self.plan,
            }),
        })
    }

    pub fn limit(self, n: usize) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(LogicalPlan::Limit { n, input: self.plan }) }
    }

    pub fn udo(self, spec: UdoSpec, registry: &UdoRegistry) -> Result<PlanBuilder> {
        let in_schema = self.plan.schema()?;
        let out_schema = registry.output_schema(&spec, &in_schema)?;
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::Udo { spec, schema: out_schema, input: self.plan }),
        })
    }

    pub fn build(self) -> Arc<LogicalPlan> {
        self.plan
    }

    pub fn peek(&self) -> &Arc<LogicalPlan> {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggFunc};
    use cv_common::SimTime;
    use cv_data::schema::{Field, Schema};
    use cv_data::table::Table;
    use cv_data::value::Value;

    fn catalog() -> DatasetCatalog {
        let mut cat = DatasetCatalog::new();
        let sales = Schema::new(vec![
            Field::new("s_cust", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("qty", DataType::Int),
        ])
        .unwrap()
        .into_ref();
        cat.register(
            "sales",
            Table::from_rows(sales, &[vec![Value::Int(1), Value::Float(2.0), Value::Int(3)]])
                .unwrap(),
            SimTime::EPOCH,
        )
        .unwrap();
        let cust =
            Schema::new(vec![Field::new("c_id", DataType::Int), Field::new("seg", DataType::Str)])
                .unwrap()
                .into_ref();
        cat.register(
            "customer",
            Table::from_rows(cust, &[vec![Value::Int(1), Value::Str("asia".into())]]).unwrap(),
            SimTime::EPOCH,
        )
        .unwrap();
        cat
    }

    #[test]
    fn full_pipeline_builds() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "customer").unwrap(),
                &[("s_cust", "c_id")],
                JoinKind::Inner,
            )
            .unwrap()
            .filter(col("seg").eq(lit("asia")))
            .unwrap()
            .aggregate(
                vec![(col("s_cust"), "cust")],
                vec![AggExpr::new(AggFunc::Sum, col("qty"), "total")],
            )
            .unwrap()
            .sort(&[("total", false)])
            .unwrap()
            .limit(10)
            .build();
        assert_eq!(plan.node_count(), 7);
        assert_eq!(plan.schema().unwrap().names(), vec!["cust", "total"]);
    }

    #[test]
    fn scan_missing_dataset() {
        let cat = catalog();
        assert!(PlanBuilder::scan(&cat, "nope").is_err());
    }

    #[test]
    fn filter_requires_bool() {
        let cat = catalog();
        let err = PlanBuilder::scan(&cat, "sales").unwrap().filter(col("qty")).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn join_key_validation() {
        let cat = catalog();
        let left = PlanBuilder::scan(&cat, "sales").unwrap();
        let right = PlanBuilder::scan(&cat, "customer").unwrap();
        let err =
            left.clone().join(right.clone(), &[("nope", "c_id")], JoinKind::Inner).unwrap_err();
        assert_eq!(err.kind(), "plan");
        let err2 =
            left.clone().join(right.clone(), &[("s_cust", "seg")], JoinKind::Inner).unwrap_err();
        assert!(err2.to_string().contains("type mismatch"));
        assert!(left.join(right, &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn aggregate_validation() {
        let cat = catalog();
        let b = PlanBuilder::scan(&cat, "sales").unwrap();
        assert!(b.clone().aggregate(vec![], vec![]).is_err());
        let err =
            b.aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("nope"), "s")]).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn sort_key_must_exist() {
        let cat = catalog();
        let err = PlanBuilder::scan(&cat, "sales").unwrap().sort(&[("zz", true)]).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn union_schema_mismatch() {
        let cat = catalog();
        let a = PlanBuilder::scan(&cat, "sales").unwrap();
        let b = PlanBuilder::scan(&cat, "customer").unwrap();
        assert!(a.union(b).is_err());
    }

    #[test]
    fn udo_builds_with_registry() {
        let cat = catalog();
        let mut registry = UdoRegistry::with_builtins();
        // sales has no user_agent column → schema validation must fail.
        let err = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .udo(UdoSpec::new("parse_user_agent"), &registry)
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
        // Unknown UDO.
        registry = UdoRegistry::empty();
        let err2 = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .udo(UdoSpec::new("parse_user_agent"), &registry)
            .unwrap_err();
        assert_eq!(err2.kind(), "not_found");
    }

    #[test]
    fn scan_pins_current_guid() {
        let mut cat = catalog();
        let p1 = PlanBuilder::scan(&cat, "sales").unwrap().build();
        let id = cat.id_of("sales").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        let p2 = PlanBuilder::scan(&cat, "sales").unwrap().build();
        let (g1, g2) = match (&*p1, &*p2) {
            (LogicalPlan::Scan { guid: a, .. }, LogicalPlan::Scan { guid: b, .. }) => (*a, *b),
            _ => panic!("expected scans"),
        };
        assert_ne!(g1, g2, "new version must be pinned by new scans");
    }
}
