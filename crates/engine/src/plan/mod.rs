//! Logical query plans.

pub mod builder;

pub use builder::PlanBuilder;

use crate::expr::{AggExpr, ScalarExpr};
use crate::udo::UdoSpec;
use cv_common::hash::Sig128;
use cv_common::ids::VersionGuid;
use cv_common::{CvError, Result};
use cv_data::schema::{Field, Schema, SchemaRef};
use std::fmt;
use std::sync::Arc;

/// Join kinds supported by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinKind {
    Inner,
    Left,
    /// Left semi-join: rows of the left input with ≥1 match on the right.
    Semi,
}

impl JoinKind {
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER",
            JoinKind::Left => "LEFT",
            JoinKind::Semi => "SEMI",
        }
    }

    pub fn ordinal(self) -> u8 {
        match self {
            JoinKind::Inner => 0,
            JoinKind::Left => 1,
            JoinKind::Semi => 2,
        }
    }
}

/// A node of the logical plan tree. Children are `Arc`-shared so
/// subexpressions can be handed around (to the workload repository, the
/// view-selection pipeline, the materializer) without cloning the tree.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// Scan a named shared dataset at a pinned version.
    Scan {
        dataset: String,
        guid: VersionGuid,
        schema: SchemaRef,
    },
    Filter {
        predicate: ScalarExpr,
        input: Arc<LogicalPlan>,
    },
    /// Projection with explicit output names.
    Project {
        exprs: Vec<(ScalarExpr, String)>,
        input: Arc<LogicalPlan>,
    },
    /// Equi-join on named column pairs.
    Join {
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        on: Vec<(String, String)>,
        kind: JoinKind,
    },
    Aggregate {
        group_by: Vec<(ScalarExpr, String)>,
        aggs: Vec<AggExpr>,
        input: Arc<LogicalPlan>,
    },
    /// Bag union (UNION ALL).
    Union {
        inputs: Vec<Arc<LogicalPlan>>,
    },
    Sort {
        keys: Vec<(String, bool)>,
        input: Arc<LogicalPlan>,
    },
    Limit {
        n: usize,
        input: Arc<LogicalPlan>,
    },
    /// User-defined operator; output schema resolved at build time.
    Udo {
        spec: UdoSpec,
        schema: SchemaRef,
        input: Arc<LogicalPlan>,
    },
    /// Scan of a previously materialized view — inserted by the optimizer's
    /// view-*match* phase, never written by users (views have no DDL, §2.4).
    ViewScan {
        sig: Sig128,
        schema: SchemaRef,
        rows: u64,
        bytes: u64,
    },
    /// Marker inserted by the view-*build* phase: materialize the input's
    /// result (spool with two consumers at the physical level).
    Materialize {
        sig: Sig128,
        input: Arc<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Result<SchemaRef> {
        match self {
            LogicalPlan::Scan { schema, .. } | LogicalPlan::ViewScan { schema, .. } => {
                Ok(schema.clone())
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Materialize { input, .. } => input.schema(),
            LogicalPlan::Project { exprs, input } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    fields.push(Field::new(name.clone(), e.dtype(&in_schema)?));
                }
                Ok(Schema::new(fields)?.into_ref())
            }
            LogicalPlan::Join { left, right, kind, .. } => {
                let l = left.schema()?;
                match kind {
                    JoinKind::Semi => Ok(l),
                    _ => {
                        let r = right.schema()?;
                        Ok(l.join(&r)?.into_ref())
                    }
                }
            }
            LogicalPlan::Aggregate { group_by, aggs, input } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (e, name) in group_by {
                    fields.push(Field::new(name.clone(), e.dtype(&in_schema)?));
                }
                for a in aggs {
                    fields.push(Field::new(a.alias.clone(), a.dtype(&in_schema)?));
                }
                Ok(Schema::new(fields)?.into_ref())
            }
            LogicalPlan::Union { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| CvError::plan("UNION requires at least one input"))?
                    .schema()?;
                for (i, input) in inputs.iter().enumerate().skip(1) {
                    let s = input.schema()?;
                    if s.fields() != first.fields() {
                        return Err(CvError::plan(format!(
                            "UNION input {i} schema {s} differs from {first}"
                        )));
                    }
                }
                Ok(first)
            }
            LogicalPlan::Udo { schema, .. } => Ok(schema.clone()),
        }
    }

    /// Child subtrees, in order.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::ViewScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Udo { input, .. }
            | LogicalPlan::Materialize { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Rebuild this node with new children (same arity required).
    pub fn with_children(&self, mut children: Vec<Arc<LogicalPlan>>) -> Result<LogicalPlan> {
        let expect = self.children().len();
        if children.len() != expect {
            return Err(CvError::plan(format!(
                "with_children on {} node: expected {expect} child plan{}, got {} — \
                 a plan rewrite changed operator arity",
                self.kind_name(),
                if expect == 1 { "" } else { "s" },
                children.len()
            )));
        }
        Ok(match self {
            LogicalPlan::Scan { .. } | LogicalPlan::ViewScan { .. } => self.clone(),
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: children.pop().expect("one child"),
            },
            LogicalPlan::Project { exprs, .. } => LogicalPlan::Project {
                exprs: exprs.clone(),
                input: children.pop().expect("one child"),
            },
            LogicalPlan::Join { on, kind, .. } => {
                let right = children.pop().expect("two children");
                let left = children.pop().expect("two children");
                LogicalPlan::Join { left, right, on: on.clone(), kind: *kind }
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                input: children.pop().expect("one child"),
            },
            LogicalPlan::Union { .. } => LogicalPlan::Union { inputs: children },
            LogicalPlan::Sort { keys, .. } => {
                LogicalPlan::Sort { keys: keys.clone(), input: children.pop().expect("one child") }
            }
            LogicalPlan::Limit { n, .. } => {
                LogicalPlan::Limit { n: *n, input: children.pop().expect("one child") }
            }
            LogicalPlan::Udo { spec, schema, .. } => LogicalPlan::Udo {
                spec: spec.clone(),
                schema: schema.clone(),
                input: children.pop().expect("one child"),
            },
            LogicalPlan::Materialize { sig, .. } => {
                LogicalPlan::Materialize { sig: *sig, input: children.pop().expect("one child") }
            }
        })
    }

    /// Short operator name (repository rows, plan dumps).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Udo { .. } => "Udo",
            LogicalPlan::ViewScan { .. } => "ViewScan",
            LogicalPlan::Materialize { .. } => "Materialize",
        }
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// All base dataset names scanned under this node (sorted, deduped) —
    /// used by the generalized-reuse analysis (paper Fig. 8 groups
    /// subexpressions by the set of inputs they join).
    pub fn scanned_datasets(&self) -> Vec<String> {
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan { dataset, .. } = p {
                out.push(dataset.clone());
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// All input version GUIDs under this node.
    pub fn input_guids(&self) -> Vec<VersionGuid> {
        fn walk(p: &LogicalPlan, out: &mut Vec<VersionGuid>) {
            if let LogicalPlan::Scan { guid, .. } = p {
                if !out.contains(guid) {
                    out.push(*guid);
                }
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// True if any node below (inclusive) is a ViewScan — i.e. the plan was
    /// rewritten to reuse a materialized view.
    pub fn uses_views(&self) -> bool {
        matches!(self, LogicalPlan::ViewScan { .. })
            || self.children().iter().any(|c| c.uses_views())
    }

    /// Render an indented plan tree (examples, debugging, Fig. 4 output).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(0, &mut out);
        out
    }

    fn fmt_tree(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::Scan { dataset, .. } => format!("Scan {dataset}"),
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let items: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project [{}]", items.join(", "))
            }
            LogicalPlan::Join { on, kind, .. } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                format!("{} Join on {}", kind.name(), keys.join(", "))
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let g: Vec<String> = group_by.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let a: Vec<String> = aggs.iter().map(|x| x.to_string()).collect();
                format!("Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "))
            }
            LogicalPlan::Union { inputs } => format!("Union ({} inputs)", inputs.len()),
            LogicalPlan::Sort { keys, .. } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort [{}]", k.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Udo { spec, .. } => format!("Udo {spec}"),
            LogicalPlan::ViewScan { sig, rows, .. } => {
                format!("ViewScan cloudview-{} (rows={rows})", sig.short())
            }
            LogicalPlan::Materialize { sig, .. } => {
                format!("Materialize cloudview-{}", sig.short())
            }
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.fmt_tree(depth + 1, out);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggFunc};
    use cv_data::value::DataType;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> Arc<LogicalPlan> {
        let fields = cols.iter().map(|(n, t)| Field::new(*n, *t)).collect();
        Arc::new(LogicalPlan::Scan {
            dataset: name.to_string(),
            guid: VersionGuid(1),
            schema: Schema::new(fields).unwrap().into_ref(),
        })
    }

    fn sales() -> Arc<LogicalPlan> {
        scan(
            "sales",
            &[("s_cust", DataType::Int), ("price", DataType::Float), ("qty", DataType::Int)],
        )
    }

    fn customers() -> Arc<LogicalPlan> {
        scan("customer", &[("c_id", DataType::Int), ("seg", DataType::Str)])
    }

    #[test]
    fn schema_of_filter_and_project() {
        let plan = LogicalPlan::Project {
            exprs: vec![(col("price").mul(col("qty").cast(DataType::Float)), "rev".into())],
            input: Arc::new(LogicalPlan::Filter {
                predicate: col("qty").gt(lit(0)),
                input: sales(),
            }),
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.names(), vec!["rev"]);
        assert_eq!(s.field(0).dtype, DataType::Float);
    }

    #[test]
    fn join_schema_concatenates() {
        let plan = LogicalPlan::Join {
            left: sales(),
            right: customers(),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Inner,
        };
        assert_eq!(plan.schema().unwrap().len(), 5);
        let semi = LogicalPlan::Join {
            left: sales(),
            right: customers(),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Semi,
        };
        assert_eq!(semi.schema().unwrap().len(), 3);
    }

    #[test]
    fn aggregate_schema() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec![(col("s_cust"), "cust".into())],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("price"), "avg_p"), AggExpr::count_star("n")],
            input: sales(),
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.names(), vec!["cust", "avg_p", "n"]);
        assert_eq!(s.field(1).dtype, DataType::Float);
        assert_eq!(s.field(2).dtype, DataType::Int);
    }

    #[test]
    fn union_schema_must_match() {
        let ok = LogicalPlan::Union { inputs: vec![sales(), sales()] };
        assert!(ok.schema().is_ok());
        let bad = LogicalPlan::Union { inputs: vec![sales(), customers()] };
        assert!(bad.schema().is_err());
    }

    #[test]
    fn with_children_rebuilds() {
        let join = LogicalPlan::Join {
            left: sales(),
            right: customers(),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Inner,
        };
        let rebuilt = join.with_children(vec![sales(), customers()]).unwrap();
        assert_eq!(join, rebuilt);
        assert!(join.with_children(vec![sales()]).is_err());
    }

    #[test]
    fn scanned_datasets_sorted_dedup() {
        let join = LogicalPlan::Join {
            left: customers(),
            right: Arc::new(LogicalPlan::Join {
                left: sales(),
                right: customers(),
                on: vec![("s_cust".into(), "c_id".into())],
                kind: JoinKind::Inner,
            }),
            on: vec![("c_id".into(), "s_cust".into())],
            kind: JoinKind::Inner,
        };
        assert_eq!(join.scanned_datasets(), vec!["customer".to_string(), "sales".to_string()]);
        assert_eq!(join.node_count(), 5);
    }

    #[test]
    fn display_tree_shape() {
        let plan = LogicalPlan::Filter { predicate: col("qty").gt(lit(1)), input: sales() };
        let t = plan.display_tree();
        assert!(t.starts_with("Filter"));
        assert!(t.contains("\n  Scan sales"));
    }

    #[test]
    fn uses_views_detection() {
        assert!(!sales().uses_views());
        let vs = LogicalPlan::ViewScan {
            sig: Sig128(5),
            schema: sales().schema().unwrap(),
            rows: 10,
            bytes: 100,
        };
        let plan = LogicalPlan::Limit { n: 1, input: Arc::new(vs) };
        assert!(plan.uses_views());
    }
}
