//! `QueryEngine`: the top-level facade combining catalog, view store, UDO
//! registry and optimizer — one simulated SCOPE engine instance per cluster.

use crate::exec::{
    execute, ExecContext, ExecMetrics, ExecOutcome, MorselRunner, OpStateSource, PendingView,
    SerialRunner, SpoolSink,
};
use crate::optimizer::{
    AlwaysGrant, BuildCoordinator, OptimizeOutcome, Optimizer, OptimizerConfig, ReuseContext,
};
use crate::physical::PhysicalPlan;
use crate::plan::LogicalPlan;
use crate::signature::{enumerate_subexpressions, SubexprInfo};
use crate::sql::{compile_sql, Params};
use crate::udo::UdoRegistry;
use cv_common::hash::Sig128;
use cv_common::ids::{JobId, VcId};
use cv_common::{Result, SimTime};
use cv_data::catalog::DatasetCatalog;
use cv_data::table::Table;
use cv_data::viewstore::{MaterializedView, ViewSource, ViewStore};
use std::sync::Arc;

/// A compiled + optimized job, ready for execution.
#[derive(Clone, Debug)]
pub struct CompiledJob {
    /// The bound logical plan (pre-optimization).
    pub bound: Arc<LogicalPlan>,
    pub outcome: OptimizeOutcome,
}

/// Everything a finished job reports back.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub table: Table,
    pub metrics: ExecMetrics,
    pub matched_views: Vec<Sig128>,
    pub built_views: Vec<Sig128>,
    pub physical: PhysicalPlan,
    /// Views sealed into the store by this job.
    pub sealed_views: usize,
}

/// One engine instance: catalog + view store + UDOs + optimizer.
pub struct QueryEngine {
    pub catalog: DatasetCatalog,
    pub views: ViewStore,
    pub udos: UdoRegistry,
    pub optimizer: Optimizer,
    /// Rows per morsel for chunked operators (drivers' `--chunk-size`).
    pub chunk_size: usize,
    /// Morsel runner shared by every execution; serial unless the service
    /// layer plugs in its pool-backed runner.
    pub runner: Arc<dyn MorselRunner>,
    /// Operator-state cache shared by every execution, if configured.
    /// Callers needing per-job attribution (cross-job hit accounting) pass a
    /// tagged source to [`QueryEngine::execute_with_states`] instead.
    pub op_states: Option<Arc<dyn OpStateSource>>,
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine::new()
    }
}

impl QueryEngine {
    pub fn new() -> QueryEngine {
        QueryEngine::with_config(OptimizerConfig::default())
    }

    pub fn with_config(cfg: OptimizerConfig) -> QueryEngine {
        QueryEngine {
            catalog: DatasetCatalog::new(),
            views: ViewStore::with_default_ttl(),
            udos: UdoRegistry::with_builtins(),
            optimizer: Optimizer::new(cfg),
            chunk_size: cv_data::chunk::DEFAULT_CHUNK_SIZE,
            runner: Arc::new(SerialRunner),
            op_states: None,
        }
    }

    /// Configure morsel execution: chunk size and the runner that fans
    /// per-chunk work across workers.
    pub fn set_morsels(&mut self, chunk_size: usize, runner: Arc<dyn MorselRunner>) {
        self.chunk_size = chunk_size.max(1);
        self.runner = runner;
    }

    /// Parse + bind SQL against the current catalog.
    pub fn compile_sql(&self, sql: &str, params: &Params) -> Result<Arc<LogicalPlan>> {
        compile_sql(sql, &self.catalog, params)
    }

    /// Optimize a bound plan under reuse annotations.
    pub fn optimize(
        &self,
        plan: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
        coordinator: &mut dyn BuildCoordinator,
    ) -> Result<CompiledJob> {
        let catalog = &self.catalog;
        let stats = |name: &str| {
            catalog.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64))
        };
        let outcome = self.optimizer.optimize(plan, reuse, &stats, coordinator)?;
        Ok(CompiledJob { bound: plan.clone(), outcome })
    }

    /// Execute an optimized physical plan.
    pub fn execute(&self, physical: &PhysicalPlan, now: SimTime) -> Result<ExecOutcome> {
        self.execute_with(physical, &self.views, now)
    }

    /// Execute against an external view source instead of the engine's own
    /// store — the service path, where many concurrent jobs share one
    /// sharded store (or pipeline from in-flight builds).
    pub fn execute_with(
        &self,
        physical: &PhysicalPlan,
        views: &dyn ViewSource,
        now: SimTime,
    ) -> Result<ExecOutcome> {
        self.execute_with_sink(physical, views, now, None, None)
    }

    /// [`Self::execute_with`] plus per-operator observability hooks.
    pub fn execute_with_obs(
        &self,
        physical: &PhysicalPlan,
        views: &dyn ViewSource,
        now: SimTime,
        obs: Option<&dyn crate::obs::ObsSink>,
    ) -> Result<ExecOutcome> {
        self.execute_with_sink(physical, views, now, obs, None)
    }

    /// Full-control execution entry: observability hooks plus a spool sink
    /// receiving sealed view chunks as they are produced (single-flight
    /// chunk pipelining).
    pub fn execute_with_sink(
        &self,
        physical: &PhysicalPlan,
        views: &dyn ViewSource,
        now: SimTime,
        obs: Option<&dyn crate::obs::ObsSink>,
        spool_sink: Option<&dyn SpoolSink>,
    ) -> Result<ExecOutcome> {
        self.execute_with_states(physical, views, now, obs, spool_sink, self.op_states.as_deref())
    }

    /// [`Self::execute_with_sink`] with an explicit operator-state source
    /// overriding the engine-level one — the service path wraps the shared
    /// cache in a per-job tag so hits can be attributed across jobs.
    pub fn execute_with_states(
        &self,
        physical: &PhysicalPlan,
        views: &dyn ViewSource,
        now: SimTime,
        obs: Option<&dyn crate::obs::ObsSink>,
        spool_sink: Option<&dyn SpoolSink>,
        op_states: Option<&dyn OpStateSource>,
    ) -> Result<ExecOutcome> {
        let mut ctx = ExecContext::new(&self.catalog, views, &self.udos, now)
            .with_chunking(self.chunk_size, self.runner.clone());
        ctx.obs = obs;
        ctx.spool_sink = spool_sink;
        ctx.op_states = op_states;
        execute(physical, &mut ctx, &self.optimizer.cfg.cost)
    }

    /// Seal pending views into the store (the job-manager step; the cluster
    /// simulator calls this at the producing stage's finish time for *early
    /// sealing*, paper §2.3).
    ///
    /// An injected write failure is absorbed here: the half-materialized
    /// view is discarded and simply not counted in the returned total — the
    /// job itself already succeeded, and views are throw-away artifacts.
    /// Callers must only advertise the views actually sealed.
    pub fn seal_views(
        &mut self,
        pending: &[PendingView],
        job: JobId,
        vc: VcId,
        now: SimTime,
    ) -> Result<usize> {
        let mut sealed = 0;
        for pv in pending {
            match self.views.insert(MaterializedView {
                strict_sig: pv.sig,
                recurring_sig: pv.recurring_sig,
                schema: pv.schema.clone(),
                data: pv.data.clone(),
                rows: 0,
                bytes: 0,
                created: now,
                expires: now, // recomputed by the store from its TTL
                creator_job: job,
                vc,
                input_guids: pv.input_guids.clone(),
                observed_work: pv.production_work,
                checksum: 0, // recomputed by the store
            }) {
                Ok(()) => sealed += 1,
                Err(e) if e.is_fault() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(sealed)
    }

    /// Convenience: compile, optimize, execute and seal in one call.
    pub fn run_sql(
        &mut self,
        sql: &str,
        params: &Params,
        reuse: &ReuseContext,
        job: JobId,
        vc: VcId,
        now: SimTime,
    ) -> Result<JobOutcome> {
        let bound = self.compile_sql(sql, params)?;
        self.run_plan(&bound, reuse, job, vc, now)
    }

    /// Convenience: optimize, execute and seal a bound plan.
    pub fn run_plan(
        &mut self,
        plan: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
        job: JobId,
        vc: VcId,
        now: SimTime,
    ) -> Result<JobOutcome> {
        let compiled = self.optimize(plan, reuse, &mut AlwaysGrant)?;
        let exec = self.execute(&compiled.outcome.physical, now)?;
        let sealed = self.seal_views(&exec.pending_views, job, vc, now)?;
        Ok(JobOutcome {
            table: exec.table,
            metrics: exec.metrics,
            matched_views: compiled.outcome.matched_views,
            built_views: compiled.outcome.built_views,
            physical: compiled.outcome.physical,
            sealed_views: sealed,
        })
    }

    /// Enumerate the signable subexpressions of a plan, post-normalization —
    /// the rows CloudViews logs into the workload repository.
    pub fn subexpressions(&self, plan: &Arc<LogicalPlan>) -> Result<Vec<SubexprInfo>> {
        let normalized = crate::normalize::normalize(plan, &self.optimizer.cfg.sig)?;
        Ok(enumerate_subexpressions(&normalized, &self.optimizer.cfg.sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::tests::test_catalog;
    use cv_data::value::Value;

    fn engine() -> QueryEngine {
        let mut e = QueryEngine::new();
        e.catalog = test_catalog();
        e
    }

    const ASIA_AVG: &str = "SELECT c_id, AVG(price * quantity) AS avg_sales \
        FROM Sales JOIN Customer ON s_cust = c_id \
        WHERE mkt_segment = 'asia' GROUP BY c_id";

    const ASIA_QTY: &str = "SELECT c_id, SUM(quantity) AS total_qty \
        FROM Sales JOIN Customer ON s_cust = c_id \
        WHERE mkt_segment = 'asia' GROUP BY c_id";

    #[test]
    fn run_sql_end_to_end() {
        let mut e = engine();
        let out = e
            .run_sql(
                ASIA_AVG,
                &Params::none(),
                &ReuseContext::empty(),
                JobId(1),
                VcId(0),
                SimTime::EPOCH,
            )
            .unwrap();
        assert_eq!(out.table.num_rows(), 3); // segments asia = c_id 0,2,4
        assert!(out.metrics.total_work > 0.0);
        assert!(out.matched_views.is_empty());
    }

    #[test]
    fn two_jobs_share_a_view_end_to_end() {
        // The core CloudViews scenario (paper Fig. 4): job 1 materializes
        // the shared join, job 2 reuses it — and produces identical results
        // to running without reuse.
        let mut e = engine();

        // Workload analysis says: materialize the shared subexpression. We
        // find it by intersecting the two queries' subexpression sets.
        let p1 = e.compile_sql(ASIA_AVG, &Params::none()).unwrap();
        let p2 = e.compile_sql(ASIA_QTY, &Params::none()).unwrap();
        let subs1 = e.subexpressions(&p1).unwrap();
        let subs2 = e.subexpressions(&p2).unwrap();
        let sigs2: std::collections::HashSet<_> = subs2.iter().map(|s| s.strict).collect();
        let shared: Vec<_> =
            subs1.iter().filter(|s| sigs2.contains(&s.strict) && s.kind != "Scan").collect();
        assert!(!shared.is_empty(), "queries must share a non-scan subexpression");
        // Pick the largest shared subexpression.
        let best = shared.iter().max_by_key(|s| s.node_count).unwrap();

        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(best.strict);

        // Job 1: builds the view.
        let out1 = e
            .run_sql(ASIA_AVG, &Params::none(), &reuse, JobId(1), VcId(0), SimTime::EPOCH)
            .unwrap();
        assert_eq!(out1.built_views, vec![best.strict]);
        assert_eq!(out1.sealed_views, 1);
        assert_eq!(e.views.len(), 1);

        // Job 2: reuses it.
        let view = e.views.peek(best.strict, SimTime::EPOCH).unwrap();
        let mut reuse2 = ReuseContext::empty();
        reuse2
            .available
            .insert(best.strict, crate::optimizer::ViewMeta::hot(view.rows as u64, view.bytes));
        let out2 = e
            .run_sql(ASIA_QTY, &Params::none(), &reuse2, JobId(2), VcId(0), SimTime::EPOCH)
            .unwrap();
        assert_eq!(out2.matched_views, vec![best.strict]);
        assert!(out2.metrics.view_bytes_read > 0);
        assert_eq!(out2.metrics.input_bytes, 0, "no base data read at all");

        // Correctness: same result as the no-reuse run.
        let mut e2 = engine();
        let baseline = e2
            .run_sql(
                ASIA_QTY,
                &Params::none(),
                &ReuseContext::empty(),
                JobId(3),
                VcId(0),
                SimTime::EPOCH,
            )
            .unwrap();
        assert_eq!(out2.table.canonical_rows(), baseline.table.canonical_rows());

        // Efficiency: reuse did less work.
        assert!(
            out2.metrics.total_work < baseline.metrics.total_work,
            "reuse {} !< baseline {}",
            out2.metrics.total_work,
            baseline.metrics.total_work
        );
    }

    #[test]
    fn subexpression_enumeration_is_normalized() {
        let e = engine();
        // Conjunct order must not matter after normalization.
        let a = e
            .compile_sql("SELECT * FROM Sales WHERE price > 2 AND quantity < 3", &Params::none())
            .unwrap();
        let b = e
            .compile_sql("SELECT * FROM Sales WHERE quantity < 3 AND price > 2", &Params::none())
            .unwrap();
        let sa: Vec<_> = e.subexpressions(&a).unwrap().iter().map(|s| s.strict).collect();
        let sb: Vec<_> = e.subexpressions(&b).unwrap().iter().map(|s| s.strict).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn params_recur_across_instances() {
        let e = engine();
        let day1 = e
            .compile_sql(
                "SELECT * FROM Sales WHERE sale_date >= @run_date",
                &Params::with(&[("run_date", Value::Date(18_293))]),
            )
            .unwrap();
        let day2 = e
            .compile_sql(
                "SELECT * FROM Sales WHERE sale_date >= @run_date",
                &Params::with(&[("run_date", Value::Date(18_294))]),
            )
            .unwrap();
        let s1 = e.subexpressions(&day1).unwrap();
        let s2 = e.subexpressions(&day2).unwrap();
        let root1 = s1.iter().find(|s| s.is_root).unwrap();
        let root2 = s2.iter().find(|s| s.is_root).unwrap();
        assert_ne!(root1.strict, root2.strict, "strict sigs differ per day");
        assert_eq!(root1.recurring, root2.recurring, "recurring sigs collide");
    }
}
