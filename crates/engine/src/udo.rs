//! User-defined operators (UDOs).
//!
//! SCOPE jobs routinely embed custom user code. For signatures this is the
//! hard part (paper §4 "signature correctness"): a UDO's identity includes
//! the libraries it links (possibly a very deep dependency chain), and some
//! UDOs are non-deterministic by design. CloudViews *skips* computation
//! reuse whenever the chain is too deep to traverse or non-determinism is
//! detected — we reproduce exactly that policy in
//! [`crate::signature`].

use cv_common::hash::StableHasher;
use cv_common::{CvError, Result};
use cv_data::schema::{Field, Schema, SchemaRef};
use cv_data::table::Table;
use cv_data::value::{DataType, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Compiler-visible metadata of a UDO call site.
#[derive(Clone, Debug, PartialEq)]
pub struct UdoSpec {
    /// Registry key of the implementation.
    pub name: String,
    /// Version of the user library providing the implementation; bumping it
    /// changes the signature (new code ⇒ new computation).
    pub version: u32,
    /// Whether the implementation is pure. `false` disables signing of any
    /// plan containing this UDO.
    pub deterministic: bool,
    /// Transitive library dependency chain, outermost first. Signatures must
    /// cover all of it; chains longer than the configured limit make the
    /// subexpression unsignable (traversing them "could slow down the entire
    /// compilation process", §4).
    pub library_chain: Vec<String>,
}

impl UdoSpec {
    pub fn new(name: impl Into<String>) -> UdoSpec {
        UdoSpec { name: name.into(), version: 1, deterministic: true, library_chain: Vec::new() }
    }

    pub fn with_version(mut self, version: u32) -> UdoSpec {
        self.version = version;
        self
    }

    pub fn nondeterministic(mut self) -> UdoSpec {
        self.deterministic = false;
        self
    }

    pub fn with_chain(mut self, chain: Vec<String>) -> UdoSpec {
        self.library_chain = chain;
        self
    }

    pub fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.version as u64);
        h.write_bool(self.deterministic);
        h.write_u64(self.library_chain.len() as u64);
        for lib in &self.library_chain {
            h.write_str(lib);
        }
    }
}

impl fmt::Display for UdoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// A registered UDO implementation: schema transform + row processor.
pub struct UdoImpl {
    /// Output schema as a function of the input schema.
    pub output_schema: Box<dyn Fn(&Schema) -> Result<SchemaRef> + Send + Sync>,
    /// The operator body: whole-chunk transform.
    pub apply: Box<dyn Fn(&Table) -> Result<Table> + Send + Sync>,
}

/// Registry of UDO implementations available to the executor.
pub struct UdoRegistry {
    impls: HashMap<String, Arc<UdoImpl>>,
}

impl fmt::Debug for UdoRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.impls.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "UdoRegistry({names:?})")
    }
}

impl UdoRegistry {
    pub fn empty() -> UdoRegistry {
        UdoRegistry { impls: HashMap::new() }
    }

    /// Registry pre-loaded with the built-in cooking UDOs used by the
    /// workload generator (see below).
    pub fn with_builtins() -> UdoRegistry {
        let mut r = UdoRegistry::empty();
        r.register("parse_user_agent", parse_user_agent_impl());
        r.register("geo_enrich", geo_enrich_impl());
        r.register("scrub_pii", scrub_pii_impl());
        r
    }

    pub fn register(&mut self, name: impl Into<String>, imp: UdoImpl) {
        self.impls.insert(name.into(), Arc::new(imp));
    }

    pub fn get(&self, name: &str) -> Result<Arc<UdoImpl>> {
        self.impls
            .get(name)
            .cloned()
            .ok_or_else(|| CvError::not_found(format!("UDO `{name}` not registered")))
    }

    pub fn output_schema(&self, spec: &UdoSpec, input: &Schema) -> Result<SchemaRef> {
        let imp = self.get(&spec.name)?;
        (imp.output_schema)(input)
    }

    pub fn apply(&self, spec: &UdoSpec, input: &Table) -> Result<Table> {
        let imp = self.get(&spec.name)?;
        (imp.apply)(input)
    }
}

impl Default for UdoRegistry {
    fn default() -> Self {
        UdoRegistry::with_builtins()
    }
}

/// `parse_user_agent`: adds a `browser STRING` column derived from a
/// `user_agent` column — the classic extraction step of telemetry cooking.
fn parse_user_agent_impl() -> UdoImpl {
    UdoImpl {
        output_schema: Box::new(|input: &Schema| {
            if input.index_of("user_agent").is_none() {
                return Err(CvError::plan("parse_user_agent requires a `user_agent` column"));
            }
            let mut fields = input.fields().to_vec();
            fields.push(Field::new("browser", DataType::Str));
            Ok(Schema::new(fields)?.into_ref())
        }),
        apply: Box::new(|t: &Table| {
            let ua_idx = t
                .schema()
                .index_of("user_agent")
                .ok_or_else(|| CvError::exec("missing `user_agent`"))?;
            let ua = t.column(ua_idx);
            let mut rows = Vec::with_capacity(t.num_rows());
            for i in 0..t.num_rows() {
                let mut row = t.row(i);
                let browser = match ua.value(i) {
                    Value::Str(s) => {
                        let s = s.to_ascii_lowercase();
                        let b = if s.contains("edge") {
                            "edge"
                        } else if s.contains("chrome") {
                            "chrome"
                        } else if s.contains("firefox") {
                            "firefox"
                        } else if s.contains("safari") {
                            "safari"
                        } else {
                            "other"
                        };
                        Value::Str(b.to_string())
                    }
                    _ => Value::Null,
                };
                row.push(browser);
                rows.push(row);
            }
            let mut fields = t.schema().fields().to_vec();
            fields.push(Field::new("browser", DataType::Str));
            Table::from_rows(Schema::new(fields)?.into_ref(), &rows)
        }),
    }
}

/// `geo_enrich`: derives a `region STRING` from an `ip_hash INT` column —
/// the correlate step joining telemetry to a (stubbed) geo database.
fn geo_enrich_impl() -> UdoImpl {
    const REGIONS: [&str; 5] = ["asia", "emea", "amer", "oceania", "latam"];
    UdoImpl {
        output_schema: Box::new(|input: &Schema| {
            if input.index_of("ip_hash").is_none() {
                return Err(CvError::plan("geo_enrich requires an `ip_hash` column"));
            }
            let mut fields = input.fields().to_vec();
            fields.push(Field::new("region", DataType::Str));
            Ok(Schema::new(fields)?.into_ref())
        }),
        apply: Box::new(|t: &Table| {
            let idx =
                t.schema().index_of("ip_hash").ok_or_else(|| CvError::exec("missing `ip_hash`"))?;
            let ip = t.column(idx);
            let mut rows = Vec::with_capacity(t.num_rows());
            for i in 0..t.num_rows() {
                let mut row = t.row(i);
                let region = match ip.value(i) {
                    Value::Int(v) => {
                        Value::Str(REGIONS[(v.unsigned_abs() % 5) as usize].to_string())
                    }
                    _ => Value::Null,
                };
                row.push(region);
                rows.push(row);
            }
            let mut fields = t.schema().fields().to_vec();
            fields.push(Field::new("region", DataType::Str));
            Table::from_rows(Schema::new(fields)?.into_ref(), &rows)
        }),
    }
}

/// `scrub_pii`: blanks any column named `email` or `ip` — a transform step
/// every compliant cooking pipeline runs.
fn scrub_pii_impl() -> UdoImpl {
    UdoImpl {
        output_schema: Box::new(|input: &Schema| Ok(Arc::new(input.clone()))),
        apply: Box::new(|t: &Table| {
            let scrub: Vec<bool> =
                t.schema().fields().iter().map(|f| f.name == "email" || f.name == "ip").collect();
            let mut rows = Vec::with_capacity(t.num_rows());
            for i in 0..t.num_rows() {
                let row: Vec<Value> =
                    t.row(i)
                        .into_iter()
                        .zip(&scrub)
                        .map(|(v, &s)| {
                            if s && !v.is_null() {
                                Value::Str("<redacted>".to_string())
                            } else {
                                v
                            }
                        })
                        .collect();
                rows.push(row);
            }
            Table::from_rows(t.schema().clone(), &rows)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Table {
        let schema = Schema::new(vec![
            Field::new("user_agent", DataType::Str),
            Field::new("ip_hash", DataType::Int),
            Field::new("email", DataType::Str),
        ])
        .unwrap()
        .into_ref();
        Table::from_rows(
            schema,
            &[
                vec![
                    Value::Str("Mozilla Chrome/99".into()),
                    Value::Int(7),
                    Value::Str("a@b.c".into()),
                ],
                vec![Value::Str("Gecko Firefox/78".into()), Value::Int(10), Value::Null],
                vec![Value::Null, Value::Null, Value::Str("x@y.z".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn registry_lookup_and_missing() {
        let r = UdoRegistry::with_builtins();
        assert!(r.get("parse_user_agent").is_ok());
        assert!(r.get("nope").is_err());
    }

    #[test]
    fn parse_user_agent_adds_browser() {
        let r = UdoRegistry::with_builtins();
        let spec = UdoSpec::new("parse_user_agent");
        let out = r.apply(&spec, &events()).unwrap();
        assert_eq!(out.schema().index_of("browser"), Some(3));
        assert_eq!(out.row(0)[3], Value::Str("chrome".into()));
        assert_eq!(out.row(1)[3], Value::Str("firefox".into()));
        assert!(out.row(2)[3].is_null());
    }

    #[test]
    fn geo_enrich_maps_regions_deterministically() {
        let r = UdoRegistry::with_builtins();
        let spec = UdoSpec::new("geo_enrich");
        let out1 = r.apply(&spec, &events()).unwrap();
        let out2 = r.apply(&spec, &events()).unwrap();
        assert_eq!(out1.canonical_rows(), out2.canonical_rows());
        assert_eq!(out1.row(1)[3], Value::Str("asia".into())); // 10 % 5 == 0
    }

    #[test]
    fn scrub_pii_redacts() {
        let r = UdoRegistry::with_builtins();
        let spec = UdoSpec::new("scrub_pii");
        let out = r.apply(&spec, &events()).unwrap();
        assert_eq!(out.row(0)[2], Value::Str("<redacted>".into()));
        assert!(out.row(1)[2].is_null()); // nulls stay null
        assert_eq!(out.row(0)[0], Value::Str("Mozilla Chrome/99".into())); // untouched
    }

    #[test]
    fn output_schema_validation() {
        let r = UdoRegistry::with_builtins();
        let spec = UdoSpec::new("parse_user_agent");
        let bad = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        assert!(r.output_schema(&spec, &bad).is_err());
        let ok = events();
        assert!(r.output_schema(&spec, ok.schema()).is_ok());
    }

    #[test]
    fn spec_hash_covers_version_and_chain() {
        let base = UdoSpec::new("f");
        let v2 = UdoSpec::new("f").with_version(2);
        let chained = UdoSpec::new("f").with_chain(vec!["libA".into(), "libB".into()]);
        let sigs: Vec<_> = [&base, &v2, &chained]
            .iter()
            .map(|s| {
                let mut h = StableHasher::new();
                s.stable_hash(&mut h);
                h.finish128()
            })
            .collect();
        assert_ne!(sigs[0], sigs[1]);
        assert_ne!(sigs[0], sigs[2]);
    }

    #[test]
    fn builder_flags() {
        let s = UdoSpec::new("x").nondeterministic().with_version(3);
        assert!(!s.deterministic);
        assert_eq!(s.version, 3);
        assert_eq!(s.to_string(), "x@v3");
    }
}
