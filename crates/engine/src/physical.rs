//! Physical plans.
//!
//! Physical planning chooses operator implementations (three join
//! algorithms, matching the paper's Fig. 9 taxonomy of merge/loop/hash
//! joins) and assigns each operator a *partition count* derived from its
//! **estimated** cardinality. Partition counts feed the cluster simulator's
//! container allocation — so cardinality over-estimates directly become
//! over-partitioning and wasted containers (§3.5), which view reuse then
//! avoids by replacing estimates with observed view statistics.

use crate::cost::{Cost, CostModel};
use crate::expr::{AggExpr, ScalarExpr};
use crate::plan::JoinKind;
use crate::stats::Statistics;
use crate::udo::UdoSpec;
use cv_common::hash::Sig128;
use cv_common::ids::VersionGuid;
use cv_data::schema::SchemaRef;

/// Physical join algorithm (paper Fig. 9 categories).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinAlgo {
    Hash,
    Merge,
    Loop,
}

impl JoinAlgo {
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgo::Hash => "Hash Join",
            JoinAlgo::Merge => "Merge Join",
            JoinAlgo::Loop => "Loop Join",
        }
    }
}

/// A physical operator tree. Every node carries its estimated statistics
/// and partition count.
#[derive(Clone, Debug)]
pub enum PhysicalPlan {
    TableScan {
        dataset: String,
        guid: VersionGuid,
        schema: SchemaRef,
        est: Statistics,
        partitions: usize,
    },
    ViewScan {
        sig: Sig128,
        schema: SchemaRef,
        est: Statistics,
        partitions: usize,
        /// The lowered original subexpression this scan replaced. If the view
        /// turns out to be missing, expired, or corrupt at execution time,
        /// the executor runs this plan instead (graceful degradation — views
        /// are throw-away artifacts, paper §2.4). Deliberately *not* part of
        /// [`PhysicalPlan::children`]: costing, stage building, display, and
        /// the analyzer all see the ViewScan as a leaf.
        fallback: Option<Box<PhysicalPlan>>,
    },
    Filter {
        predicate: ScalarExpr,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    Project {
        exprs: Vec<(ScalarExpr, String)>,
        schema: SchemaRef,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    Join {
        algo: JoinAlgo,
        kind: JoinKind,
        on: Vec<(String, String)>,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
        /// Lowering put the logical *left* input on the (build) right side
        /// because it was the smaller: the executor emits columns in the
        /// logical order, so the swap never leaks into the output schema.
        swapped: bool,
    },
    HashAggregate {
        group_by: Vec<(ScalarExpr, String)>,
        aggs: Vec<AggExpr>,
        schema: SchemaRef,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    Sort {
        keys: Vec<(String, bool)>,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    Limit {
        n: usize,
        input: Box<PhysicalPlan>,
        est: Statistics,
    },
    Union {
        inputs: Vec<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    Udo {
        spec: UdoSpec,
        schema: SchemaRef,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
    /// Spool with two consumers: pass-through + view writer (paper Fig. 5,
    /// "add a spool + output operators"). Carries everything the runtime
    /// needs to register the sealed view.
    Spool {
        sig: Sig128,
        recurring_sig: Sig128,
        input_guids: Vec<VersionGuid>,
        input: Box<PhysicalPlan>,
        est: Statistics,
        partitions: usize,
    },
}

impl PhysicalPlan {
    pub fn est(&self) -> Statistics {
        match self {
            PhysicalPlan::TableScan { est, .. }
            | PhysicalPlan::ViewScan { est, .. }
            | PhysicalPlan::Filter { est, .. }
            | PhysicalPlan::Project { est, .. }
            | PhysicalPlan::Join { est, .. }
            | PhysicalPlan::HashAggregate { est, .. }
            | PhysicalPlan::Sort { est, .. }
            | PhysicalPlan::Limit { est, .. }
            | PhysicalPlan::Union { est, .. }
            | PhysicalPlan::Udo { est, .. }
            | PhysicalPlan::Spool { est, .. } => *est,
        }
    }

    pub fn partitions(&self) -> usize {
        match self {
            PhysicalPlan::TableScan { partitions, .. }
            | PhysicalPlan::ViewScan { partitions, .. }
            | PhysicalPlan::Filter { partitions, .. }
            | PhysicalPlan::Project { partitions, .. }
            | PhysicalPlan::Join { partitions, .. }
            | PhysicalPlan::HashAggregate { partitions, .. }
            | PhysicalPlan::Sort { partitions, .. }
            | PhysicalPlan::Union { partitions, .. }
            | PhysicalPlan::Udo { partitions, .. }
            | PhysicalPlan::Spool { partitions, .. } => *partitions,
            PhysicalPlan::Limit { .. } => 1,
        }
    }

    /// Mutable child access for post-lowering rewrites (fallback
    /// attachment). Mirrors [`PhysicalPlan::children`]: a ViewScan's
    /// fallback plan is not a child.
    pub fn children_mut(&mut self) -> Vec<&mut PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::ViewScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Udo { input, .. }
            | PhysicalPlan::Spool { input, .. } => vec![input],
            PhysicalPlan::Join { left, right, .. } => vec![left, right],
            PhysicalPlan::Union { inputs, .. } => inputs.iter_mut().collect(),
        }
    }

    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::ViewScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Udo { input, .. }
            | PhysicalPlan::Spool { input, .. } => vec![input],
            PhysicalPlan::Join { left, right, .. } => vec![left, right],
            PhysicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    pub fn kind_name(&self) -> &'static str {
        match self {
            PhysicalPlan::TableScan { .. } => "TableScan",
            PhysicalPlan::ViewScan { .. } => "ViewScan",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::Join { algo, .. } => match algo {
                JoinAlgo::Hash => "HashJoin",
                JoinAlgo::Merge => "MergeJoin",
                JoinAlgo::Loop => "LoopJoin",
            },
            PhysicalPlan::HashAggregate { .. } => "HashAggregate",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Limit { .. } => "Limit",
            PhysicalPlan::Union { .. } => "Union",
            PhysicalPlan::Udo { .. } => "Udo",
            PhysicalPlan::Spool { .. } => "Spool",
        }
    }

    /// Estimated cost of this node alone (children excluded).
    pub fn self_cost(&self, model: &CostModel) -> Cost {
        let est = self.est();
        match self {
            PhysicalPlan::TableScan { .. } => model.scan(est.bytes),
            PhysicalPlan::ViewScan { .. } => model.view_scan(est.bytes),
            PhysicalPlan::Filter { input, .. } => model.filter(input.est().rows),
            PhysicalPlan::Project { exprs, input, .. } => {
                model.project(input.est().rows, exprs.len())
            }
            PhysicalPlan::Join { algo, left, right, .. } => {
                let l = left.est().rows;
                let r = right.est().rows;
                match algo {
                    JoinAlgo::Hash => model.hash_join(r, l),
                    JoinAlgo::Merge => model.merge_join(l, r),
                    JoinAlgo::Loop => model.nested_loop_join(l, r),
                }
            }
            PhysicalPlan::HashAggregate { aggs, input, .. } => {
                model.hash_aggregate(input.est().rows, aggs.len())
            }
            PhysicalPlan::Sort { input, .. } => model.sort(input.est().rows),
            PhysicalPlan::Limit { .. } => model.limit(),
            PhysicalPlan::Union { .. } => model.union(est.rows),
            PhysicalPlan::Udo { input, .. } => model.udo(input.est().rows),
            PhysicalPlan::Spool { input, .. } => model.spool(input.est().rows, input.est().bytes),
        }
    }

    /// Estimated cost of the whole subtree.
    pub fn total_cost(&self, model: &CostModel) -> Cost {
        let mut c = self.self_cost(model);
        for child in self.children() {
            c += child.total_cost(model);
        }
        c
    }

    /// Total nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Tally of join algorithms used in this plan (Fig. 9 series).
    pub fn join_algo_counts(&self) -> JoinAlgoCounts {
        let mut counts = JoinAlgoCounts::default();
        self.tally_joins(&mut counts);
        counts
    }

    fn tally_joins(&self, counts: &mut JoinAlgoCounts) {
        if let PhysicalPlan::Join { algo, .. } = self {
            match algo {
                JoinAlgo::Hash => counts.hash += 1,
                JoinAlgo::Merge => counts.merge += 1,
                JoinAlgo::Loop => counts.loop_ += 1,
            }
        }
        for c in self.children() {
            c.tally_joins(counts);
        }
    }

    /// Rendered tree (the "modified query plans are surfaced to the users in
    /// the query monitoring tool", §2.3).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(0, &mut out);
        out
    }

    fn fmt_tree(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let extra = match self {
            PhysicalPlan::TableScan { dataset, .. } => format!(" {dataset}"),
            PhysicalPlan::ViewScan { sig, .. } => format!(" cloudview-{}", sig.short()),
            PhysicalPlan::Spool { sig, .. } => format!(" cloudview-{}", sig.short()),
            PhysicalPlan::Filter { predicate, .. } => format!(" {predicate}"),
            PhysicalPlan::Join { on, .. } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                format!(" on {}", keys.join(","))
            }
            _ => String::new(),
        };
        let est = self.est();
        out.push_str(&format!(
            "{pad}{}{extra} [rows≈{:.0}, parts={}]\n",
            self.kind_name(),
            est.rows,
            self.partitions()
        ));
        for c in self.children() {
            c.fmt_tree(depth + 1, out);
        }
    }
}

/// Join algorithm tally (Fig. 9 series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinAlgoCounts {
    pub hash: usize,
    pub merge: usize,
    pub loop_: usize,
}

impl JoinAlgoCounts {
    pub fn total(&self) -> usize {
        self.hash + self.merge + self.loop_
    }
}

impl std::ops::AddAssign for JoinAlgoCounts {
    fn add_assign(&mut self, rhs: JoinAlgoCounts) {
        self.hash += rhs.hash;
        self.merge += rhs.merge;
        self.loop_ += rhs.loop_;
    }
}
