//! Plan-verification hook.
//!
//! The optimizer can carry a [`PlanVerifier`] that is invoked after view
//! matching/building (on the logical plan) and after physical lowering.
//! The concrete implementation lives in `cv-analyzer`; keeping only the
//! trait here avoids a dependency cycle (the analyzer inspects engine
//! plan types, the engine only knows it can be audited).
//!
//! Verification is gated by [`OptimizerConfig::verify_plans`], which
//! defaults to on in debug builds (and therefore under `cargo test`) and
//! off in release builds, mirroring how production plan-sanity gates run
//! in pre-production rings first.
//!
//! [`OptimizerConfig::verify_plans`]: crate::optimizer::OptimizerConfig::verify_plans

use crate::optimizer::ReuseContext;
use crate::physical::PhysicalPlan;
use crate::plan::LogicalPlan;
use cv_common::Result;
use std::fmt;
use std::sync::Arc;

/// Audits optimizer output. Implementations return `Err` (never panic)
/// when an error-severity invariant violation is found, so a corrupted
/// plan fails the compiling job instead of the whole process.
pub trait PlanVerifier: fmt::Debug + Send + Sync {
    /// Check the post-rewrite logical plan against the pre-substitution
    /// normalized plan and the reuse annotations that drove the rewrite.
    fn verify_logical(
        &self,
        original: &Arc<LogicalPlan>,
        optimized: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
    ) -> Result<()>;

    /// Check a freshly lowered physical plan (spool shape, stats, costs).
    fn verify_physical(&self, physical: &PhysicalPlan) -> Result<()>;
}
