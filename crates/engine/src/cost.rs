//! The cost model.
//!
//! One model serves two callers:
//!
//! * the **optimizer** costs alternative plans on *estimated* statistics
//!   (deciding e.g. whether a `ViewScan` beats recomputing the subtree);
//! * the **executor** charges the same formulas on *actual* row/byte counts,
//!   producing the deterministic "work units" that the cluster simulator
//!   converts into container-seconds.
//!
//! Using one model for both keeps the reproduction honest: savings reported
//! by the harness are differences in actually-executed work, not in
//! optimistic estimates.

/// A cost in abstract units, split by resource.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    pub cpu: f64,
    pub io: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost { cpu: 0.0, io: 0.0 };

    pub fn total(self) -> f64 {
        self.cpu + self.io
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost { cpu: self.cpu + rhs.cpu, io: self.io + rhs.io }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.cpu += rhs.cpu;
        self.io += rhs.io;
    }
}

/// Cost-model coefficients. Units are arbitrary but consistent: one unit ≈
/// one container-second at the simulator's default container speed.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// CPU cost to process one row through a simple operator.
    pub cpu_per_row: f64,
    /// IO cost per byte read from the persistent store.
    pub read_per_byte: f64,
    /// IO cost per byte written to the persistent store (views, outputs).
    pub write_per_byte: f64,
    /// Multiplier for the hash-join build side.
    pub hash_build_factor: f64,
    /// Per-comparison cost of nested-loop joins.
    pub loop_compare_cost: f64,
    /// Per-row cost of sorting (multiplied by log2 n).
    pub sort_row_cost: f64,
    /// IO multiplier for a view read that misses the store's page cache and
    /// has to fault pages in from disk. Hot (cached) view scans pay
    /// `read_per_byte`; cold ones pay `read_per_byte * cold_read_factor`.
    pub cold_read_factor: f64,
    /// Residual per-row charge for restoring a hash-join build from the
    /// operator-state cache instead of rebuilding it — the hand-off and
    /// pointer-chasing overhead of a warm build. Must stay well below
    /// `hash_build_factor` or warm reuse would never be preferred.
    pub warm_build_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_per_row: 1e-4,
            read_per_byte: 2e-7,
            write_per_byte: 6e-7,
            hash_build_factor: 1.6,
            loop_compare_cost: 2e-6,
            sort_row_cost: 2.5e-4,
            cold_read_factor: 3.0,
            warm_build_factor: 0.05,
        }
    }
}

impl CostModel {
    pub fn scan(&self, bytes: f64) -> Cost {
        Cost { cpu: 0.0, io: bytes * self.read_per_byte }
    }

    pub fn filter(&self, rows_in: f64) -> Cost {
        Cost { cpu: rows_in * self.cpu_per_row, io: 0.0 }
    }

    pub fn project(&self, rows_in: f64, n_exprs: usize) -> Cost {
        Cost { cpu: rows_in * self.cpu_per_row * (n_exprs as f64).max(1.0) * 0.5, io: 0.0 }
    }

    pub fn hash_join(&self, build_rows: f64, probe_rows: f64) -> Cost {
        Cost { cpu: (build_rows * self.hash_build_factor + probe_rows) * self.cpu_per_row, io: 0.0 }
    }

    /// Just the build-side share of [`CostModel::hash_join`] — the work an
    /// operator-state hit avoids, credited to the published entry.
    pub fn hash_build(&self, build_rows: f64) -> Cost {
        Cost { cpu: build_rows * self.hash_build_factor * self.cpu_per_row, io: 0.0 }
    }

    /// A hash join whose build side was restored from the operator-state
    /// cache: the probe streams as usual, the build collapses to the warm
    /// hand-off residue.
    pub fn hash_join_warm(&self, build_rows: f64, probe_rows: f64) -> Cost {
        Cost { cpu: (build_rows * self.warm_build_factor + probe_rows) * self.cpu_per_row, io: 0.0 }
    }

    pub fn merge_join(&self, left_rows: f64, right_rows: f64) -> Cost {
        let n = left_rows.max(2.0);
        let m = right_rows.max(2.0);
        Cost {
            cpu: (n * n.log2() + m * m.log2()) * self.sort_row_cost * 0.4
                + (left_rows + right_rows) * self.cpu_per_row,
            io: 0.0,
        }
    }

    pub fn nested_loop_join(&self, left_rows: f64, right_rows: f64) -> Cost {
        Cost { cpu: left_rows * right_rows * self.loop_compare_cost, io: 0.0 }
    }

    pub fn hash_aggregate(&self, rows_in: f64, n_aggs: usize) -> Cost {
        Cost { cpu: rows_in * self.cpu_per_row * (1.2 + 0.2 * n_aggs as f64), io: 0.0 }
    }

    pub fn sort(&self, rows: f64) -> Cost {
        let n = rows.max(2.0);
        Cost { cpu: n * n.log2() * self.sort_row_cost, io: 0.0 }
    }

    pub fn union(&self, rows: f64) -> Cost {
        Cost { cpu: rows * self.cpu_per_row * 0.1, io: 0.0 }
    }

    pub fn limit(&self) -> Cost {
        Cost { cpu: 0.0, io: 0.0 }
    }

    pub fn udo(&self, rows_in: f64) -> Cost {
        // User code is assumed expensive relative to native operators.
        Cost { cpu: rows_in * self.cpu_per_row * 5.0, io: 0.0 }
    }

    /// The spool itself is cheap; the view *write* is the real cost.
    pub fn spool(&self, rows: f64, bytes_out: f64) -> Cost {
        Cost { cpu: rows * self.cpu_per_row * 0.2, io: bytes_out * self.write_per_byte }
    }

    /// Per-morsel scheduling residue of chunked operators — the queue
    /// push/pop and per-chunk setup each morsel pays. Charged at a few
    /// row-equivalents per chunk so degenerate chunk sizes are not free in
    /// the work ledger, while at the default 2048-row chunk it stays well
    /// under 1% of any streamable operator's cost.
    pub fn morsel_dispatch(&self, chunks: f64) -> Cost {
        Cost { cpu: chunks * self.cpu_per_row * 8.0, io: 0.0 }
    }

    pub fn view_scan(&self, bytes: f64) -> Cost {
        Cost { cpu: 0.0, io: bytes * self.read_per_byte }
    }

    /// A view scan whose pages were not resident in the buffer pool.
    pub fn view_scan_cold(&self, bytes: f64) -> Cost {
        Cost { cpu: 0.0, io: bytes * self.read_per_byte * self.cold_read_factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost { cpu: 1.0, io: 2.0 };
        let b = Cost { cpu: 0.5, io: 0.5 };
        assert_eq!((a + b).total(), 4.0);
        let mut c = Cost::ZERO;
        c += a;
        assert_eq!(c, a);
    }

    #[test]
    fn view_scan_beats_recompute_for_small_views() {
        // The decisive comparison in view matching: reading a compact view
        // must cost less than scanning the base data and recomputing.
        let m = CostModel::default();
        let recompute = m.scan(10_000_000.0) + m.filter(100_000.0) + m.hash_join(1_000.0, 10_000.0);
        let reuse = m.view_scan(50_000.0);
        assert!(reuse.total() < recompute.total());
    }

    #[test]
    fn materialization_has_nonzero_cost() {
        let m = CostModel::default();
        let s = m.spool(1_000.0, 1_000_000.0);
        assert!(s.total() > 0.0);
        assert!(s.io > s.cpu);
    }

    #[test]
    fn join_cost_ordering_matches_intuition() {
        let m = CostModel::default();
        // Tiny inner side: nested loop is competitive.
        let nl_small = m.nested_loop_join(10.0, 1_000.0);
        let hj_small = m.hash_join(10.0, 1_000.0);
        assert!(nl_small.total() < hj_small.total() * 2.0);
        // Large both sides: nested loop is catastrophic.
        let nl_big = m.nested_loop_join(100_000.0, 100_000.0);
        let hj_big = m.hash_join(100_000.0, 100_000.0);
        assert!(nl_big.total() > hj_big.total() * 10.0);
    }

    #[test]
    fn cold_view_scan_costs_more_but_still_beats_recompute() {
        let m = CostModel::default();
        let hot = m.view_scan(50_000.0);
        let cold = m.view_scan_cold(50_000.0);
        assert!(cold.total() > hot.total());
        assert!((cold.total() - hot.total() * m.cold_read_factor).abs() < 1e-12);
        // Cold reuse must still beat the recompute it replaces, or the
        // optimizer's view-matching decision would flip on restart.
        let recompute = m.scan(10_000_000.0) + m.filter(100_000.0) + m.hash_join(1_000.0, 10_000.0);
        assert!(cold.total() < recompute.total());
    }

    #[test]
    fn morsel_dispatch_is_marginal_at_default_chunk_size() {
        // The per-chunk charge must not distort operator choice: at the
        // default 2048-row chunk it stays under 1% of the filter it rides
        // on, yet degenerate 1-row chunks cost more than the filter itself.
        let m = CostModel::default();
        let rows: f64 = 1_000_000.0;
        let sane = m.morsel_dispatch((rows / 2048.0).ceil());
        assert!(sane.total() < m.filter(rows).total() * 0.01);
        let degenerate = m.morsel_dispatch(rows);
        assert!(degenerate.total() > m.filter(rows).total());
    }

    #[test]
    fn warm_build_beats_cold_and_biases_toward_hash() {
        let m = CostModel::default();
        let (build, probe) = (50_000.0, 200_000.0);
        let warm = m.hash_join_warm(build, probe);
        let cold = m.hash_join(build, probe);
        assert!(warm.total() < cold.total());
        // The avoided share is exactly the build term the executor credits.
        let avoided = cold.total() - warm.total();
        let expected = build * (m.hash_build_factor - m.warm_build_factor) * m.cpu_per_row;
        assert!((avoided - expected).abs() < 1e-9);
        // A warm hash build must beat the merge join the threshold rule
        // would otherwise pick at these sizes — the optimizer's
        // warm-preference hook depends on this ordering.
        assert!(warm.total() < m.merge_join(probe, build).total());
        // But it still charges more than the probe alone: hits are not free.
        assert!(warm.total() > Cost { cpu: probe * m.cpu_per_row, io: 0.0 }.total());
    }

    #[test]
    fn sort_is_superlinear() {
        let m = CostModel::default();
        let small = m.sort(1_000.0).total();
        let big = m.sort(10_000.0).total();
        assert!(big > small * 10.0);
    }
}
