//! Column-wise multi-key hash kernel shared by hash join, hash aggregate
//! and DISTINCT counting.
//!
//! [`KeyCols`] wraps the resolved key columns of one table side and hashes
//! them *per column* into a `Vec<u64>` for the whole batch — no per-row
//! `Vec<Value>` key materialization on the hot path. Hash-bucket collisions
//! are resolved with typed column-vs-column equality that matches the
//! [`Value`] reference semantics exactly: `sql_eq` for join keys (NULL
//! matches nothing), `group_key_eq` for group keys (NULLs compare equal),
//! and `total_cmp` ordering for merge joins.
//!
//! Int values hash through their canonical `f64` bit pattern so `Int(1)`
//! and `Float(1.0)` — equal under `total_cmp` — always land in the same
//! bucket; equality then decides. NaNs collapse to one bucket and ±0.0 to
//! another, mirroring `StableHasher::write_f64`.

use cv_data::column::{Column, ColumnData};
use cv_data::table::Table;
use cv_data::value::DataType;
use std::cmp::Ordering;

/// SplitMix64 finalizer (same permutation as `cv_common::hash`).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const SEED: u64 = 0x517c_c1b7_2722_0a95;
const BOOL_TAG: u64 = 0x1b87_3b4e_0dd2_91a1;
const NUM_TAG: u64 = 0x2cf1_8e0a_9b73_55c3;
const STR_TAG: u64 = 0x3a91_c57f_44d0_8be5;
const DATE_TAG: u64 = 0x4d26_71b9_e80f_3d07;
const NULL_TAG: u64 = 0x5e44_92d3_17ab_6f29;

/// Hash a float by canonical bit pattern: every NaN is one key, ±0.0 is one
/// key (numeric equality), everything else by exact bits.
#[inline]
fn f64_key_hash(f: f64) -> u64 {
    let bits = if f.is_nan() {
        f64::NAN.to_bits() | 1
    } else if f == 0.0 {
        0
    } else {
        f.to_bits()
    };
    mix64(bits ^ NUM_TAG)
}

#[inline]
fn str_key_hash(s: &str) -> u64 {
    // FNV-1a over the bytes, finalized for avalanche.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h ^ STR_TAG)
}

/// Hash of a single (valid) cell, typed. The caller must have checked the
/// row is non-null.
pub(super) fn value_hash(c: &Column, i: usize) -> u64 {
    match c.data() {
        ColumnData::Bool(v) => mix64(v[i] as u64 ^ BOOL_TAG),
        ColumnData::Int(v) => f64_key_hash(v[i] as f64),
        ColumnData::Float(v) => f64_key_hash(v[i]),
        ColumnData::Str(v) => str_key_hash(&v[i]),
        ColumnData::Date(v) => mix64(v[i] as i64 as u64 ^ DATE_TAG),
    }
}

/// Type rank matching `Value::total_cmp` (Int and Float share a rank and
/// compare numerically).
fn rank(t: DataType) -> u8 {
    match t {
        DataType::Bool => 1,
        DataType::Int | DataType::Float => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

/// Typed cell comparison matching `Value::total_cmp` (NULL ranks below
/// everything, NULLs compare equal).
pub(super) fn cmp_cells(a: &Column, i: usize, b: &Column, j: usize) -> Ordering {
    match (a.is_null(i), b.is_null(j)) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        (false, false) => {}
    }
    match (a.data(), b.data()) {
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i].cmp(&y[j]),
        (ColumnData::Int(x), ColumnData::Int(y)) => x[i].cmp(&y[j]),
        (ColumnData::Float(x), ColumnData::Float(y)) => x[i].total_cmp(&y[j]),
        (ColumnData::Int(x), ColumnData::Float(y)) => (x[i] as f64).total_cmp(&y[j]),
        (ColumnData::Float(x), ColumnData::Int(y)) => x[i].total_cmp(&(y[j] as f64)),
        (ColumnData::Str(x), ColumnData::Str(y)) => x[i].cmp(&y[j]),
        (ColumnData::Date(x), ColumnData::Date(y)) => x[i].cmp(&y[j]),
        _ => rank(a.dtype()).cmp(&rank(b.dtype())),
    }
}

/// Typed cell equality for two valid cells (callers check NULLs per their
/// own semantics). Equivalent to `total_cmp == Equal`.
#[inline]
fn cells_eq(a: &Column, i: usize, b: &Column, j: usize) -> bool {
    match (a.data(), b.data()) {
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i] == y[j],
        (ColumnData::Int(x), ColumnData::Int(y)) => x[i] == y[j],
        (ColumnData::Float(x), ColumnData::Float(y)) => x[i].total_cmp(&y[j]).is_eq(),
        (ColumnData::Int(x), ColumnData::Float(y)) => (x[i] as f64).total_cmp(&y[j]).is_eq(),
        (ColumnData::Float(x), ColumnData::Int(y)) => x[i].total_cmp(&(y[j] as f64)).is_eq(),
        (ColumnData::Str(x), ColumnData::Str(y)) => x[i] == y[j],
        (ColumnData::Date(x), ColumnData::Date(y)) => x[i] == y[j],
        _ => false,
    }
}

/// The key columns of one join/aggregate side, hashed column-wise.
pub(super) struct KeyCols<'a> {
    cols: Vec<&'a Column>,
    n: usize,
}

impl<'a> KeyCols<'a> {
    pub fn new(cols: Vec<&'a Column>, n: usize) -> KeyCols<'a> {
        debug_assert!(cols.iter().all(|c| c.len() == n));
        KeyCols { cols, n }
    }

    pub fn from_table(t: &'a Table, idx: &[usize]) -> KeyCols<'a> {
        KeyCols::new(idx.iter().map(|&i| t.column(i)).collect(), t.num_rows())
    }

    /// True if any key component of the row is NULL.
    pub fn has_null(&self, row: usize) -> bool {
        self.cols.iter().any(|c| c.is_null(row))
    }

    /// Combine one column into the running per-row hashes. `on_null` maps
    /// the running hash of a null cell (join keys invalidate the row,
    /// group keys mix a NULL tag).
    fn fold_column(c: &Column, hashes: &mut [u64], mut mix_cell: impl FnMut(u64, usize) -> u64) {
        macro_rules! fold {
            ($v:ident, $hash_one:expr) => {
                match c.validity() {
                    None => {
                        for (i, h) in hashes.iter_mut().enumerate() {
                            *h = mix64(*h ^ $hash_one(&$v[i]));
                        }
                    }
                    Some(val) => {
                        for (i, h) in hashes.iter_mut().enumerate() {
                            if val.get(i) {
                                *h = mix64(*h ^ $hash_one(&$v[i]));
                            } else {
                                *h = mix_cell(*h, i);
                            }
                        }
                    }
                }
            };
        }
        match c.data() {
            ColumnData::Bool(v) => fold!(v, |x: &bool| mix64(*x as u64 ^ BOOL_TAG)),
            ColumnData::Int(v) => fold!(v, |x: &i64| f64_key_hash(*x as f64)),
            ColumnData::Float(v) => fold!(v, |x: &f64| f64_key_hash(*x)),
            ColumnData::Str(v) => fold!(v, |x: &String| str_key_hash(x)),
            ColumnData::Date(v) => fold!(v, |x: &i32| mix64(*x as i64 as u64 ^ DATE_TAG)),
        }
    }

    /// Per-row join-key hashes plus a valid flag (`false` if any key
    /// component is NULL — SQL: null keys never join).
    pub fn join_hashes(&self) -> (Vec<u64>, Vec<bool>) {
        let mut hashes = vec![SEED; self.n];
        let mut valid = vec![true; self.n];
        for c in &self.cols {
            Self::fold_column(c, &mut hashes, |h, i| {
                valid[i] = false;
                h
            });
        }
        (hashes, valid)
    }

    /// Per-row group-key hashes; NULL components mix a fixed tag so NULL
    /// keys group together (SQL GROUP BY).
    pub fn group_hashes(&self) -> Vec<u64> {
        let mut hashes = vec![SEED; self.n];
        for c in &self.cols {
            Self::fold_column(c, &mut hashes, |h, _| mix64(h ^ NULL_TAG));
        }
        hashes
    }

    /// Join-key equality (`sql_eq` semantics). Callers only invoke this on
    /// rows whose valid flag is set, so NULLs never reach it; the null
    /// checks are defensive.
    pub fn rows_eq_sql(&self, i: usize, other: &KeyCols<'_>, j: usize) -> bool {
        self.cols
            .iter()
            .zip(&other.cols)
            .all(|(a, b)| !a.is_null(i) && !b.is_null(j) && cells_eq(a, i, b, j))
    }

    /// Group-key equality (`group_key_eq` semantics: NULLs equal).
    pub fn rows_eq_group(&self, i: usize, other: &KeyCols<'_>, j: usize) -> bool {
        self.cols.iter().zip(&other.cols).all(|(a, b)| match (a.is_null(i), b.is_null(j)) {
            (true, true) => true,
            (false, false) => cells_eq(a, i, b, j),
            _ => false,
        })
    }

    /// Lexicographic key ordering (`Value::total_cmp` per component) for
    /// merge joins.
    pub fn cmp_rows(&self, i: usize, other: &KeyCols<'_>, j: usize) -> Ordering {
        for (a, b) in self.cols.iter().zip(&other.cols) {
            let o = cmp_cells(a, i, b, j);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_data::value::Value;

    fn col(dtype: DataType, vals: &[Value]) -> Column {
        Column::from_values(dtype, vals).unwrap()
    }

    #[test]
    fn int_and_float_hash_equal_but_str_differs() {
        // Int(1) and Float(1.0) are equal under total_cmp and must share a
        // bucket; the string "1" must not collide with either (the old
        // COUNT(DISTINCT) string-rendering bug).
        let ints = col(DataType::Int, &[Value::Int(1)]);
        let floats = col(DataType::Float, &[Value::Float(1.0)]);
        let strs = col(DataType::Str, &[Value::Str("1".into())]);
        assert_eq!(value_hash(&ints, 0), value_hash(&floats, 0));
        assert_ne!(value_hash(&ints, 0), value_hash(&strs, 0));
    }

    #[test]
    fn zero_signs_and_nans_collapse() {
        let f = col(DataType::Float, &[Value::Float(0.0), Value::Float(-0.0)]);
        assert_eq!(value_hash(&f, 0), value_hash(&f, 1));
        let nans = col(DataType::Float, &[Value::Float(f64::NAN), Value::Float(-f64::NAN)]);
        assert_eq!(value_hash(&nans, 0), value_hash(&nans, 1));
    }

    #[test]
    fn join_hashes_invalidate_null_keys() {
        let a = col(DataType::Int, &[Value::Int(1), Value::Null, Value::Int(1)]);
        let kc = KeyCols::new(vec![&a], 3);
        let (hashes, valid) = kc.join_hashes();
        assert_eq!(valid, vec![true, false, true]);
        assert_eq!(hashes[0], hashes[2]);
        assert!(!kc.rows_eq_sql(0, &kc, 1), "NULL joins nothing");
        assert!(kc.rows_eq_sql(0, &kc, 2));
    }

    #[test]
    fn group_hashes_put_nulls_in_one_group() {
        let a = col(DataType::Str, &[Value::Null, Value::Str("x".into()), Value::Null]);
        let kc = KeyCols::new(vec![&a], 3);
        let h = kc.group_hashes();
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
        assert!(kc.rows_eq_group(0, &kc, 2), "GROUP BY: NULLs equal");
        assert!(!kc.rows_eq_group(0, &kc, 1));
    }

    #[test]
    fn multi_key_hash_is_order_sensitive() {
        let a = col(DataType::Int, &[Value::Int(1)]);
        let b = col(DataType::Int, &[Value::Int(2)]);
        let ab = KeyCols::new(vec![&a, &b], 1);
        let ba = KeyCols::new(vec![&b, &a], 1);
        assert_ne!(ab.group_hashes()[0], ba.group_hashes()[0]);
    }

    #[test]
    fn cmp_rows_matches_value_total_cmp() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(3),
            Value::Float(3.5),
            Value::Str("s".into()),
            Value::Date(9),
        ];
        // Compare every pair across two single-type columns via a shared
        // mixed ordering check (cross-dtype ranks line up with total_cmp).
        for x in &vals {
            for y in &vals {
                let cx = Column::from_values(
                    x.dtype().unwrap_or(DataType::Int),
                    std::slice::from_ref(x),
                )
                .unwrap();
                let cy = Column::from_values(
                    y.dtype().unwrap_or(DataType::Int),
                    std::slice::from_ref(y),
                )
                .unwrap();
                assert_eq!(cmp_cells(&cx, 0, &cy, 0), x.total_cmp(y), "{x} vs {y}");
            }
        }
    }
}
