//! Operator-state reuse: keys, snapshots and the source trait.
//!
//! The chunked executor stops at three pipeline breakers — the hash-join
//! build side, the hash-aggregate group state, and sort runs. Each breaker's
//! finished state is a pure function of (a) the *strict* signature of the
//! subexpression feeding it and (b) the operator fingerprint (build key
//! names, aggregate functions, sort order). This module derives those keys
//! and defines the typed snapshot ([`OpState`]) plus the [`OpStateSource`]
//! trait the service-layer cache implements.
//!
//! # Keying
//!
//! [`exec_signature`] hashes a *physical* subtree the way
//! `signature::node_sig` hashes normalized logical plans: postorder,
//! domain-separated, strict (dataset version GUIDs included). Including the
//! GUID makes entries self-invalidating — when a recurring job's input
//! rotates, the new plan derives a *different* key and simply misses; stale
//! entries age out by eviction or purge. Subtrees containing
//! nondeterministic expressions, UDOs, or spools get no signature (`None`)
//! and are never cached: a skipped subtree must have no side effects (no
//! pending views, no advancement of the shared nondeterminism counter).
//!
//! ViewScans hash by their view signature only — view contents are
//! signature-addressed and immutable, so the fallback subtree (if any) is
//! irrelevant to the bytes a hit restores.
//!
//! # Safety of restores
//!
//! A hit still enforces the executor's stale-plan check:
//! [`validate_scan_guids`] walks the skipped subtree and fails with the
//! *identical* error the `TableScan` operator would have raised, so turning
//! the cache on can never mask a staleness error that cache-off execution
//! would report.

use crate::physical::PhysicalPlan;
use cv_common::hash::{Sig128, StableHasher};
use cv_common::ids::VersionGuid;
use cv_common::{CvError, Result};
use cv_data::catalog::DatasetCatalog;
use cv_data::table::Table;
use std::fmt;
use std::sync::Arc;

use super::JoinBuildState;

/// Hash a physical subtree into a strict execution signature, or `None`
/// when the subtree is not reuse-safe (nondeterminism, UDO chains, spools).
pub fn exec_signature(plan: &PhysicalPlan) -> Option<Sig128> {
    let mut h = StableHasher::with_domain("exec-sig:v1");
    sig_into(plan, &mut h)?;
    Some(h.finish128())
}

fn sig_into(plan: &PhysicalPlan, h: &mut StableHasher) -> Option<()> {
    match plan {
        PhysicalPlan::TableScan { dataset, guid, schema, .. } => {
            h.write_u8(0);
            h.write_str(dataset);
            schema.stable_hash(h);
            h.write_sig(guid.as_sig());
        }
        PhysicalPlan::Filter { predicate, input, .. } => {
            if !predicate.is_deterministic() {
                return None;
            }
            sig_into(input, h)?;
            h.write_u8(1);
            predicate.stable_hash(h, true);
        }
        PhysicalPlan::Project { exprs, input, .. } => {
            if exprs.iter().any(|(e, _)| !e.is_deterministic()) {
                return None;
            }
            sig_into(input, h)?;
            h.write_u8(2);
            h.write_u64(exprs.len() as u64);
            for (e, name) in exprs {
                e.stable_hash(h, true);
                h.write_str(name);
            }
        }
        PhysicalPlan::Join { kind, on, left, right, .. } => {
            // The algorithm is deliberately excluded: hash, merge and loop
            // joins are byte-equal, so plans differing only in algo share
            // downstream state.
            sig_into(left, h)?;
            sig_into(right, h)?;
            h.write_u8(3);
            h.write_u8(kind.ordinal());
            h.write_u64(on.len() as u64);
            for (l, r) in on {
                h.write_str(l);
                h.write_str(r);
            }
        }
        PhysicalPlan::HashAggregate { group_by, aggs, input, .. } => {
            if group_by.iter().any(|(e, _)| !e.is_deterministic())
                || aggs.iter().any(|a| !a.is_deterministic())
            {
                return None;
            }
            sig_into(input, h)?;
            h.write_u8(4);
            h.write_u64(group_by.len() as u64);
            for (e, name) in group_by {
                e.stable_hash(h, true);
                h.write_str(name);
            }
            h.write_u64(aggs.len() as u64);
            for a in aggs {
                a.stable_hash(h, true);
            }
        }
        PhysicalPlan::Union { inputs, .. } => {
            for i in inputs {
                sig_into(i, h)?;
            }
            h.write_u8(5);
            h.write_u64(inputs.len() as u64);
        }
        PhysicalPlan::Sort { keys, input, .. } => {
            sig_into(input, h)?;
            h.write_u8(6);
            h.write_u64(keys.len() as u64);
            for (name, asc) in keys {
                h.write_str(name);
                h.write_bool(*asc);
            }
        }
        PhysicalPlan::Limit { n, input, .. } => {
            sig_into(input, h)?;
            h.write_u8(7);
            h.write_u64(*n as u64);
        }
        // UDOs may be registered nondeterministic and their chains are
        // version-opaque; spools have a side effect (a pending view) that a
        // skipped subtree would silently drop. Neither is reuse-safe.
        PhysicalPlan::Udo { .. } | PhysicalPlan::Spool { .. } => return None,
        PhysicalPlan::ViewScan { sig, .. } => {
            h.write_u8(9);
            h.write_sig(*sig);
        }
    }
    Some(())
}

fn op_key_hasher(tag: u8, input_sig: Sig128) -> StableHasher {
    let mut h = StableHasher::with_domain("op-state:v1");
    h.write_u8(tag);
    h.write_sig(input_sig);
    h
}

/// Cache key for a hash-join build side: the right subtree's execution
/// signature plus the right-side key names in join order. The join kind and
/// the probe side are excluded — the built table + hash map depend only on
/// the build input and its keys.
pub fn join_build_key(right: &PhysicalPlan, on: &[(String, String)]) -> Option<Sig128> {
    let mut h = op_key_hasher(1, exec_signature(right)?);
    h.write_u64(on.len() as u64);
    for (_, rk) in on {
        h.write_str(rk);
    }
    Some(h.finish128())
}

/// Cache key for a finished hash-aggregate state: input signature plus the
/// full operator fingerprint (group-by expressions and names, aggregate
/// functions/args/aliases).
pub fn agg_state_key(
    input: &PhysicalPlan,
    group_by: &[(crate::expr::ScalarExpr, String)],
    aggs: &[crate::expr::AggExpr],
) -> Option<Sig128> {
    if group_by.iter().any(|(e, _)| !e.is_deterministic())
        || aggs.iter().any(|a| !a.is_deterministic())
    {
        return None;
    }
    let mut h = op_key_hasher(2, exec_signature(input)?);
    h.write_u64(group_by.len() as u64);
    for (e, name) in group_by {
        e.stable_hash(&mut h, true);
        h.write_str(name);
    }
    h.write_u64(aggs.len() as u64);
    for a in aggs {
        a.stable_hash(&mut h, true);
    }
    Some(h.finish128())
}

/// Cache key for a finished sort run: input signature plus the sort order.
pub fn sort_state_key(input: &PhysicalPlan, keys: &[(String, bool)]) -> Option<Sig128> {
    let mut h = op_key_hasher(3, exec_signature(input)?);
    h.write_u64(keys.len() as u64);
    for (name, asc) in keys {
        h.write_str(name);
        h.write_bool(*asc);
    }
    Some(h.finish128())
}

/// Re-run the executor's stale-plan check over a subtree that a cache hit
/// is about to skip: every `TableScan` must still see the GUID it was
/// compiled against. The error matches the scan operator's own, so cache-on
/// and cache-off runs fail identically.
pub fn validate_scan_guids(plan: &PhysicalPlan, catalog: &DatasetCatalog) -> Result<()> {
    if let PhysicalPlan::TableScan { dataset, guid, .. } = plan {
        let ds = catalog.get_by_name(dataset)?;
        if ds.current_guid() != *guid {
            return Err(CvError::exec(format!(
                "stale plan: dataset `{dataset}` was regenerated since compilation"
            )));
        }
    }
    for c in plan.children() {
        validate_scan_guids(c, catalog)?;
    }
    Ok(())
}

/// Everything a cached state depends on: the view signatures it read and
/// the `(dataset, guid)` versions it scanned. The service cache indexes
/// entries by these for quarantine and GDPR-purge coupling.
pub fn state_deps(plan: &PhysicalPlan) -> (Vec<Sig128>, Vec<(String, VersionGuid)>) {
    let mut sigs = Vec::new();
    let mut scans = Vec::new();
    fn walk(p: &PhysicalPlan, sigs: &mut Vec<Sig128>, scans: &mut Vec<(String, VersionGuid)>) {
        match p {
            PhysicalPlan::TableScan { dataset, guid, .. } => {
                scans.push((dataset.clone(), *guid));
            }
            PhysicalPlan::ViewScan { sig, .. } => sigs.push(*sig),
            _ => {}
        }
        for c in p.children() {
            walk(c, sigs, scans);
        }
    }
    walk(plan, &mut sigs, &mut scans);
    (sigs, scans)
}

/// A typed snapshot of one finished pipeline-breaker state.
#[derive(Debug)]
pub enum OpState {
    /// A hash-join build side: the materialized build table, resolved key
    /// column indices, and the `PreHashed` hash→rows map, restored directly
    /// under the probe loop.
    JoinBuild(JoinBuildState),
    /// A hash-aggregate's finished, canonically ordered group state. The
    /// accumulators have been folded; restoring replays the operator's
    /// exact output bytes.
    AggOutput(Table),
    /// A finished sort run.
    SortRun(Table),
}

impl OpState {
    pub fn kind(&self) -> &'static str {
        match self {
            OpState::JoinBuild(_) => "join_build",
            OpState::AggOutput(_) => "agg_state",
            OpState::SortRun(_) => "sort_run",
        }
    }
}

/// A published cache entry: the state plus the bookkeeping the cache needs
/// for cost-weighted eviction and purge coupling.
#[derive(Debug)]
pub struct OpStateEntry {
    pub state: Arc<OpState>,
    /// Approximate resident size (admission/eviction currency).
    pub bytes: u64,
    /// Work units the build cost (subtree execution + state construction) —
    /// the numerator of the eviction priority and the per-hit work credit.
    pub build_work: f64,
    /// Measured wall seconds the build took; summed into
    /// `build_wall_avoided` on every hit.
    pub build_wall: f64,
    /// View signatures the state was derived from (quarantine coupling).
    pub dep_sigs: Vec<Sig128>,
    /// Base datasets and the versions that were scanned (GDPR coupling).
    pub scan_deps: Vec<(String, VersionGuid)>,
}

/// Outcome of asking the source for a key.
#[derive(Debug)]
pub enum OpStateAcquire {
    /// Resident state — restore it, skip the build.
    Hit(Arc<OpStateEntry>),
    /// Build it yourself. `claimed` means this caller holds the
    /// single-flight claim and must `publish` or `abandon` the key;
    /// unclaimed builds (cache off, degraded wait, lost claim) run inline
    /// and publish nothing.
    Build { claimed: bool },
}

/// Where the executor gets operator state. The service layer's sharded
/// single-flight cache implements this; `None` on the context keeps the
/// breaker hot paths untouched.
pub trait OpStateSource: fmt::Debug + Send + Sync {
    fn acquire(&self, key: Sig128) -> OpStateAcquire;
    fn publish(&self, key: Sig128, entry: OpStateEntry);
    /// Release a claim without publishing (the build failed); waiters
    /// degrade to inline builds.
    fn abandon(&self, key: Sig128);
    /// Non-claiming peek for the optimizer's warm-build preference: is
    /// state for `key` resident (or being built) right now?
    fn is_warm(&self, _key: Sig128) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggExpr, AggFunc, FuncKind, ScalarExpr};
    use crate::optimizer::{AlwaysGrant, Optimizer, OptimizerConfig, ReuseContext};
    use crate::plan::PlanBuilder;
    use cv_common::SimTime;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::{DataType, Value};

    fn catalog() -> DatasetCatalog {
        let mut cat = DatasetCatalog::new();
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)])
                .unwrap()
                .into_ref();
        let rows: Vec<Vec<Value>> =
            (0..20).map(|i| vec![Value::Int(i % 4), Value::Float(i as f64)]).collect();
        cat.register("t", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        cat
    }

    fn physical(
        cat: &DatasetCatalog,
        plan: &std::sync::Arc<crate::plan::LogicalPlan>,
    ) -> PhysicalPlan {
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        opt.optimize(plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap().physical
    }

    #[test]
    fn signature_is_stable_and_discriminates() {
        let cat = catalog();
        let a = PlanBuilder::scan(&cat, "t").unwrap().filter(col("k").gt(lit(1))).unwrap().build();
        let b = PlanBuilder::scan(&cat, "t").unwrap().filter(col("k").gt(lit(2))).unwrap().build();
        let pa = physical(&cat, &a);
        let pa2 = physical(&cat, &a);
        let pb = physical(&cat, &b);
        let sa = exec_signature(&pa).unwrap();
        assert_eq!(sa, exec_signature(&pa2).unwrap(), "same plan, same signature");
        assert_ne!(sa, exec_signature(&pb).unwrap(), "different predicate, different signature");
    }

    #[test]
    fn guid_rotation_changes_the_signature() {
        let mut cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t").unwrap().build();
        let before = exec_signature(&physical(&cat, &plan)).unwrap();
        let id = cat.id_of("t").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        // Recompile: the logical scan pins the guid at bind time, so a
        // post-rotation compilation sees the new version.
        let plan = PlanBuilder::scan(&cat, "t").unwrap().build();
        let after = exec_signature(&physical(&cat, &plan)).unwrap();
        assert_ne!(before, after, "input rotation must derive a fresh key");
    }

    #[test]
    fn nondeterministic_subtrees_get_no_signature() {
        let cat = catalog();
        let rand = ScalarExpr::Func { func: FuncKind::RandomNext, args: vec![] };
        let plan = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .project(vec![(col("k"), "k"), (rand, "r")])
            .unwrap()
            .build();
        assert!(exec_signature(&physical(&cat, &plan)).is_none());
    }

    #[test]
    fn operator_fingerprints_separate_key_domains() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t").unwrap().build();
        let p = physical(&cat, &plan);
        let on = vec![("k".to_string(), "k".to_string())];
        let jb = join_build_key(&p, &on).unwrap();
        let agg = agg_state_key(
            &p,
            &[(col("k"), "k".to_string())],
            &[AggExpr::new(AggFunc::Sum, col("v"), "sv")],
        )
        .unwrap();
        let sort = sort_state_key(&p, &[("k".to_string(), true)]).unwrap();
        assert_ne!(jb, agg);
        assert_ne!(jb, sort);
        assert_ne!(agg, sort);
        // Different fingerprints over the same input diverge.
        let sort_desc = sort_state_key(&p, &[("k".to_string(), false)]).unwrap();
        assert_ne!(sort, sort_desc);
    }

    #[test]
    fn validate_scan_guids_matches_executor_error() {
        let mut cat = catalog();
        let plan = PlanBuilder::scan(&cat, "t").unwrap().build();
        let p = physical(&cat, &plan);
        assert!(validate_scan_guids(&p, &cat).is_ok());
        let id = cat.id_of("t").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        let err = validate_scan_guids(&p, &cat).unwrap_err();
        assert!(err.to_string().contains("stale plan"), "unexpected error: {err}");
    }

    #[test]
    fn state_deps_collects_scans() {
        let cat = catalog();
        let plan =
            PlanBuilder::scan(&cat, "t").unwrap().filter(col("k").gt(lit(0))).unwrap().build();
        let p = physical(&cat, &plan);
        let (sigs, scans) = state_deps(&p);
        assert!(sigs.is_empty());
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].0, "t");
    }
}
