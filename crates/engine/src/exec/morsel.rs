//! Morsel scheduling seam between the executor and whoever owns threads.
//!
//! Streamable operators fan their per-chunk work out through a
//! [`MorselRunner`]. The engine ships only the [`SerialRunner`] (chunk
//! order, caller's thread) so the executor stays deterministic and
//! dependency-free; cv-service plugs in a runner backed by its
//! work-stealing pool to morsel-schedule the chunks of a single job across
//! workers. Correctness never depends on the runner: every task is
//! independent, results are collected by slot index, and operators only
//! parallelize chunks whose expressions are deterministic (nondeterministic
//! chains keep the shared row-order evaluation state).

use std::sync::Mutex;

/// Executes `tasks` independent closures, each identified by its index.
/// Implementations may run them in any order, on any threads, but must run
/// each exactly once and return only when all have finished.
pub trait MorselRunner: Send + Sync {
    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// Default runner: chunk order, caller's thread.
pub struct SerialRunner;

impl MorselRunner for SerialRunner {
    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..tasks {
            task(i);
        }
    }
}

/// Fan `n` tasks out through the runner and collect each task's result in
/// its slot, preserving chunk order regardless of execution order.
pub fn run_indexed<T: Send>(
    runner: &dyn MorselRunner,
    n: usize,
    f: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    runner.run(n, &|i| {
        let out = f(i);
        *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("morsel runner skipped a task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runner_runs_every_task_in_order() {
        let seen = Mutex::new(Vec::new());
        SerialRunner.run(5, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_indexed_collects_by_slot() {
        let out = run_indexed(&SerialRunner, 4, &|i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn run_indexed_zero_tasks() {
        let out: Vec<usize> = run_indexed(&SerialRunner, 0, &|i| i);
        assert!(out.is_empty());
    }
}
