//! Single-node vectorized executor with chunked, morsel-driven pipelines.
//!
//! Executes physical plans over the in-memory catalog, producing the result
//! table plus the runtime telemetry the rest of the system feeds on:
//!
//! * per-operator **work units** (cost-model formulas charged on *actual*
//!   row/byte counts) — the cluster simulator turns these into
//!   container-seconds;
//! * **input bytes** (paper Fig. 7b) and **total data read** including
//!   intermediates (Fig. 7c);
//! * executed **join-algorithm counts** (Fig. 9);
//! * **pending views** captured by spool operators, to be sealed by the job
//!   manager (early sealing happens in the cluster layer).
//!
//! # Chunked execution
//!
//! Streamable operators — filter, project, the hash-join *probe* side,
//! limit, and both the evaluation phase and the final merge emission of
//! hash aggregation — process their input as a sequence of fixed-size
//! chunks ([`cv_data::chunk::DEFAULT_CHUNK_SIZE`] rows) and fan the chunks
//! out through the context's [`MorselRunner`], so a single heavy job
//! spreads across the service's worker pool. Pipeline breakers — sorts,
//! join build sides, merge/loop joins, unions, UDOs, spools, aggregate
//! accumulation — materialize via [`Table::from_chunks`]. Breaker states
//! (join builds, finished aggregate/sort output) can additionally be
//! restored from an [`OpStateSource`] instead of rebuilt; see [`opstate`].
//!
//! Two invariants keep results *byte-identical* at every chunk size and
//! worker count:
//!
//! * operator outputs are **normalized** (all-true validity bitmaps
//!   dropped) at chunk-reassembly boundaries, so buffer representation
//!   never depends on how the row stream was cut;
//! * chains containing nondeterministic functions (`RANDOM()`,
//!   `NEW_GUID()`) are **never chunked**: they evaluate whole, in row
//!   order, against the shared [`EvalCtx`] counter, reproducing the
//!   monolithic sequence exactly.

mod keys;
pub mod morsel;
pub mod opstate;

use crate::cost::CostModel;
use crate::expr::eval::{eval, eval_predicate, EvalCtx};
use crate::expr::{AggExpr, AggFunc, ScalarExpr};
use crate::obs::ObsSink;
use crate::physical::{JoinAlgo, JoinAlgoCounts, PhysicalPlan};
use crate::plan::JoinKind;
use crate::udo::UdoRegistry;
use cv_common::hash::Sig128;
use cv_common::ids::VersionGuid;
use cv_common::{CvError, Result, SimTime};
use cv_data::catalog::DatasetCatalog;
use cv_data::chunk::{chunk_ranges, ChunkedTable};
use cv_data::column::{Column, ColumnBuilder, ColumnData};
use cv_data::schema::{Schema, SchemaRef};
use cv_data::table::Table;
use cv_data::value::Value;
use cv_data::viewstore::ViewSource;
use keys::KeyCols;
pub use morsel::{MorselRunner, SerialRunner};
pub use opstate::{OpState, OpStateAcquire, OpStateEntry, OpStateSource};
use std::collections::HashMap;
use std::sync::Arc;

/// Receives sealed view chunks as a spool produces them, before the view is
/// sealed into the store — the single-flight layer hands them to concurrent
/// consumers that would otherwise wait for the full materialization.
pub trait SpoolSink: Sync {
    /// Chunk `chunk` of the view `sig`; `last` marks the final chunk.
    fn publish_chunk(&self, sig: Sig128, chunk: &Table, last: bool);
}

/// Execution context: read access to storage plus the evaluation state.
///
/// Views come in through the [`ViewSource`] trait object so the same
/// executor runs against a plain `ViewStore`, the service layer's sharded
/// store, or a pipelining wrapper over in-flight materializations.
pub struct ExecContext<'a> {
    pub catalog: &'a DatasetCatalog,
    pub views: &'a dyn ViewSource,
    pub udos: &'a UdoRegistry,
    pub now: SimTime,
    pub eval: EvalCtx,
    /// Rows per morsel for streamable operators.
    pub chunk_size: usize,
    /// Fans per-chunk work across workers; [`SerialRunner`] by default.
    pub runner: Arc<dyn MorselRunner>,
    /// Receives sealed view chunks as spools produce them.
    pub spool_sink: Option<&'a dyn SpoolSink>,
    /// Per-operator observability hooks; `None` keeps the hot path free of
    /// timing calls entirely (a single branch per operator).
    pub obs: Option<&'a dyn ObsSink>,
    /// Operator-state cache for pipeline breakers (hash-join builds,
    /// aggregate states, sort runs); `None` disables reuse entirely.
    pub op_states: Option<&'a dyn OpStateSource>,
}

impl<'a> ExecContext<'a> {
    pub fn new(
        catalog: &'a DatasetCatalog,
        views: &'a dyn ViewSource,
        udos: &'a UdoRegistry,
        now: SimTime,
    ) -> ExecContext<'a> {
        let eval = EvalCtx::new((now.seconds() / 86_400.0) as i32);
        ExecContext {
            catalog,
            views,
            udos,
            now,
            eval,
            chunk_size: cv_data::chunk::DEFAULT_CHUNK_SIZE,
            runner: Arc::new(SerialRunner),
            spool_sink: None,
            obs: None,
            op_states: None,
        }
    }

    pub fn with_obs(mut self, obs: &'a dyn ObsSink) -> ExecContext<'a> {
        self.obs = Some(obs);
        self
    }

    /// Override the morsel chunk size and runner (service layer plugs in
    /// its pool-backed runner here).
    pub fn with_chunking(
        mut self,
        chunk_size: usize,
        runner: Arc<dyn MorselRunner>,
    ) -> ExecContext<'a> {
        self.chunk_size = chunk_size.max(1);
        self.runner = runner;
        self
    }

    pub fn with_spool_sink(mut self, sink: &'a dyn SpoolSink) -> ExecContext<'a> {
        self.spool_sink = Some(sink);
        self
    }

    pub fn with_op_states(mut self, src: &'a dyn OpStateSource) -> ExecContext<'a> {
        self.op_states = Some(src);
        self
    }
}

/// Profile of one executed operator.
#[derive(Clone, Debug)]
pub struct OpProfile {
    pub kind: &'static str,
    pub rows_out: u64,
    pub bytes_out: u64,
    pub work: f64,
    pub partitions: usize,
    /// Set for spool operators: the view being materialized.
    pub spool_sig: Option<Sig128>,
}

/// Aggregate runtime metrics of one job execution.
#[derive(Clone, Debug, Default)]
pub struct ExecMetrics {
    /// Bytes read from base datasets (paper Fig. 7b "input size").
    pub input_bytes: u64,
    /// Bytes read from materialized views.
    pub view_bytes_read: u64,
    /// All bytes flowing into operators, incl. intermediates (Fig. 7c).
    pub data_read_bytes: u64,
    /// Bytes written by spools to the view store.
    pub bytes_written_views: u64,
    pub rows_out: u64,
    /// Total work units (≈ container-seconds at unit speed).
    pub total_work: f64,
    pub join_algos: JoinAlgoCounts,
    pub op_profiles: Vec<OpProfile>,
    /// ViewScans that degraded to recomputing their original subexpression
    /// because the view was missing, corrupt, or failed to read.
    pub fallbacks_recompute: u64,
    /// Injected storage read failures observed at ViewScans.
    pub view_read_failures: u64,
    /// Checksum mismatches (torn writes) observed at ViewScans.
    pub view_corruptions: u64,
    /// Views that expired between optimizer match and executor read.
    pub view_expiry_races: u64,
    /// View reads served cold (pages faulted in from disk rather than the
    /// store's buffer pool). Always 0 for in-memory stores.
    pub view_cold_reads: u64,
    /// Signatures to quarantine after this execution: every read-side
    /// failure lands here; the driver denylists them in the view store and
    /// the insights service.
    pub quarantined_sigs: Vec<Sig128>,
    /// Pipeline-breaker states restored from the operator-state cache.
    pub op_state_hits: u64,
    /// Breaker keys that were derivable but not resident (built inline,
    /// published when this execution held the claim).
    pub op_state_misses: u64,
    /// States this execution built and published to the cache.
    pub op_state_published: u64,
    /// Work units of skipped builds, credited from each hit entry's
    /// recorded build cost.
    pub op_state_work_avoided: f64,
    /// Measured wall seconds of skipped builds (the `build_wall_avoided`
    /// currency in BENCH reports).
    pub op_state_wall_avoided: f64,
}

/// A view captured by a spool, not yet sealed into the store.
#[derive(Clone, Debug)]
pub struct PendingView {
    pub sig: Sig128,
    pub recurring_sig: Sig128,
    pub input_guids: Vec<VersionGuid>,
    pub schema: SchemaRef,
    pub data: Table,
    /// Work units the producing subtree cost — the "accurate statistics"
    /// stored with the view.
    pub production_work: f64,
    /// Work of the spool write itself (materialization overhead).
    pub write_work: f64,
}

/// Result of executing one physical plan.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    pub table: Table,
    pub metrics: ExecMetrics,
    pub pending_views: Vec<PendingView>,
}

/// Execute a physical plan.
pub fn execute(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
) -> Result<ExecOutcome> {
    let mut metrics = ExecMetrics::default();
    let mut pending = Vec::new();
    let table = exec_node(plan, ctx, model, &mut metrics, &mut pending)?;
    metrics.rows_out = table.num_rows() as u64;
    Ok(ExecOutcome { table, metrics, pending_views: pending })
}

fn record(
    metrics: &mut ExecMetrics,
    plan: &PhysicalPlan,
    out: &Table,
    work: f64,
    spool_sig: Option<Sig128>,
) {
    metrics.total_work += work;
    metrics.op_profiles.push(OpProfile {
        kind: plan.kind_name(),
        rows_out: out.num_rows() as u64,
        bytes_out: out.byte_size(),
        work,
        partitions: plan.partitions(),
        spool_sig,
    });
}

/// Run a chunk-wise transform over the input: slice into morsels, fan them
/// out through the context's [`MorselRunner`], and reassemble the outputs
/// in chunk order (normalized). Returns the table and the morsel count for
/// the work ledger.
///
/// When `deterministic` is false — the operator's expressions contain
/// `RANDOM()`/`NEW_GUID()` — the input collapses to a single chunk
/// evaluated against the shared [`EvalCtx`], so the per-row nondeterminism
/// counter advances in exactly the monolithic order regardless of the
/// configured chunk size or worker count.
fn stream_chunks(
    input: &Table,
    ctx: &mut ExecContext<'_>,
    deterministic: bool,
    transform: &(dyn Fn(&Table, &mut EvalCtx) -> Result<Table> + Sync),
) -> Result<(Table, usize)> {
    let chunk_size = if deterministic { ctx.chunk_size } else { usize::MAX };
    let ranges = chunk_ranges(input.num_rows(), chunk_size);
    if ranges.len() == 1 {
        let out = transform(input, &mut ctx.eval)?;
        let schema = out.schema().clone();
        return Ok((Table::from_chunks(schema, &[out])?, 1));
    }
    let base_eval = ctx.eval.clone();
    let outputs = morsel::run_indexed(ctx.runner.as_ref(), ranges.len(), &|i| {
        let (off, len) = ranges[i];
        transform(&input.slice(off, len), &mut base_eval.clone())
    });
    let chunks = outputs.into_iter().collect::<Result<Vec<Table>>>()?;
    let schema = chunks[0].schema().clone();
    Ok((Table::from_chunks(schema, &chunks)?, ranges.len()))
}

/// Dispatch one operator, emitting [`ObsSink`] events around the recursion
/// when a sink is installed. `op_started` fires preorder and `op_finished`
/// postorder, so a sink that maps them onto span begin/end reconstructs the
/// exact plan-tree nesting. With `obs: None` this is a single branch — no
/// clock reads, no virtual calls.
fn exec_node(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
    metrics: &mut ExecMetrics,
    pending: &mut Vec<PendingView>,
) -> Result<Table> {
    let Some(obs) = ctx.obs else {
        return exec_node_inner(plan, ctx, model, metrics, pending);
    };
    let kind = plan.kind_name();
    obs.op_started(kind);
    let started = std::time::Instant::now();
    let result = exec_node_inner(plan, ctx, model, metrics, pending);
    let ns = started.elapsed().as_nanos() as u64;
    match &result {
        Ok(table) => obs.op_finished(kind, table.num_rows() as u64, table.byte_size(), ns),
        Err(_) => obs.op_finished(kind, 0, 0, ns),
    }
    result
}

fn exec_node_inner(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
    metrics: &mut ExecMetrics,
    pending: &mut Vec<PendingView>,
) -> Result<Table> {
    match plan {
        PhysicalPlan::TableScan { dataset, guid, .. } => {
            let ds = ctx.catalog.get_by_name(dataset)?;
            if ds.current_guid() != *guid {
                return Err(CvError::exec(format!(
                    "stale plan: dataset `{dataset}` was regenerated since compilation"
                )));
            }
            let table = ds.data().clone();
            let bytes = table.byte_size();
            metrics.input_bytes += bytes;
            metrics.data_read_bytes += bytes;
            let work = model.scan(bytes as f64).total();
            record(metrics, plan, &table, work, None);
            Ok(table)
        }
        PhysicalPlan::ViewScan { sig, fallback, .. } => {
            use cv_data::viewstore::{ViewReadFault, ViewTemperature};
            match ctx.views.read_view_traced(*sig, ctx.now) {
                Ok(Some((table, temperature))) => {
                    let bytes = table.byte_size();
                    metrics.view_bytes_read += bytes;
                    metrics.data_read_bytes += bytes;
                    let work = match temperature {
                        ViewTemperature::Hot => model.view_scan(bytes as f64).total(),
                        ViewTemperature::Cold => {
                            metrics.view_cold_reads += 1;
                            model.view_scan_cold(bytes as f64).total()
                        }
                    };
                    record(metrics, plan, &table, work, None);
                    return Ok(table);
                }
                // Plain miss (expired, purged, quarantined earlier): fall
                // through to the recompute fallback without quarantining.
                Ok(None) => {}
                // Read-side failure: a view must never fail the job.
                // Quarantine the signature, then degrade to recompute.
                Err(fault) => {
                    match fault {
                        ViewReadFault::ReadError => metrics.view_read_failures += 1,
                        ViewReadFault::Corrupt => metrics.view_corruptions += 1,
                        ViewReadFault::ExpiryRace => metrics.view_expiry_races += 1,
                    }
                    metrics.quarantined_sigs.push(*sig);
                }
            }
            let Some(fb) = fallback else {
                return Err(CvError::exec(format!(
                    "materialized view {} unavailable at execution and the plan \
                     carries no recompute fallback",
                    sig.short()
                )));
            };
            metrics.fallbacks_recompute += 1;
            // Execute the fallback subtree, then collapse its operator
            // profiles into this single ViewScan profile: the stage builder
            // zips profiles 1:1 against the plan tree, which still sees a
            // leaf here. The subtree's work/bytes have already accumulated
            // into the aggregate metrics (the recomputation really ran).
            let profiles_before = metrics.op_profiles.len();
            let table = exec_node(fb, ctx, model, metrics, pending)?;
            let sub_work: f64 = metrics.op_profiles.drain(profiles_before..).map(|p| p.work).sum();
            metrics.op_profiles.push(OpProfile {
                kind: plan.kind_name(),
                rows_out: table.num_rows() as u64,
                bytes_out: table.byte_size(),
                work: sub_work,
                partitions: plan.partitions(),
                spool_sig: None,
            });
            Ok(table)
        }
        PhysicalPlan::Filter { predicate, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let (out, chunks) =
                stream_chunks(&in_table, ctx, predicate.is_deterministic(), &|t, ec| {
                    let mask = eval_predicate(predicate, t, ec)?;
                    t.filter(&mask)
                })?;
            let work = model.filter(in_table.num_rows() as f64).total()
                + model.morsel_dispatch(chunks as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Project { exprs, schema, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let det = exprs.iter().all(|(e, _)| e.is_deterministic());
            let (out, chunks) = stream_chunks(&in_table, ctx, det, &|t, ec| {
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    columns.push(eval(e, t, ec)?);
                }
                Table::new(schema.clone(), columns)
            })?;
            let work = model.project(in_table.num_rows() as f64, exprs.len()).total()
                + model.morsel_dispatch(chunks as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Join { algo, kind, on, left, right, swapped, .. } => {
            let l = exec_node(left, ctx, model, metrics, pending)?;
            // Operator-state reuse applies to the hash build side only:
            // derive the build key and ask the source before executing the
            // right subtree at all.
            let mut hit: Option<Arc<OpStateEntry>> = None;
            let mut claimed = false;
            let mut key: Option<Sig128> = None;
            if *algo == JoinAlgo::Hash {
                if let Some(src) = ctx.op_states {
                    if let Some(k) = opstate::join_build_key(right, on) {
                        key = Some(k);
                        match src.acquire(k) {
                            OpStateAcquire::Hit(e) if matches!(*e.state, OpState::JoinBuild(_)) => {
                                hit = Some(e)
                            }
                            OpStateAcquire::Hit(_) => {}
                            OpStateAcquire::Build { claimed: c } => claimed = c,
                        }
                    }
                }
            }
            if let Some(entry) = hit {
                // A restored build must still honor the stale-plan check
                // the skipped scans would have made.
                opstate::validate_scan_guids(right, ctx.catalog)?;
                let OpState::JoinBuild(jb) = &*entry.state else { unreachable!() };
                metrics.op_state_hits += 1;
                metrics.op_state_work_avoided += entry.build_work;
                metrics.op_state_wall_avoided += entry.build_wall;
                if let Some(obs) = ctx.obs {
                    obs.op_state_hit("join_build", key.expect("hit implies key"));
                }
                // The stage builder zips profiles 1:1 against the plan
                // tree: emit zero-work placeholders for the skipped
                // subtree, in the same postorder execution would have.
                push_skipped_profiles(right, metrics);
                metrics.data_read_bytes += l.byte_size() + jb.table.byte_size();
                let (out, probe_chunks) = hash_join_probe(&l, jb, on, *kind, ctx)?;
                let out = restore_swapped_columns(out, *swapped, l.schema().len())?;
                metrics.join_algos.hash += 1;
                let (ln, rn) = (l.num_rows() as f64, jb.table.num_rows() as f64);
                let work = model.hash_join_warm(rn, ln).total()
                    + model.morsel_dispatch(probe_chunks as f64).total();
                record(metrics, plan, &out, work, None);
                return Ok(out);
            }
            if key.is_some() {
                metrics.op_state_misses += 1;
                if let Some(obs) = ctx.obs {
                    obs.op_state_miss("join_build");
                }
            }
            let build_work_before = metrics.total_work;
            let build_started = std::time::Instant::now();
            let r = match exec_node(right, ctx, model, metrics, pending) {
                Ok(t) => t,
                Err(e) => {
                    if claimed {
                        abandon_claim(ctx, key);
                    }
                    return Err(e);
                }
            };
            metrics.data_read_bytes += l.byte_size() + r.byte_size();
            let (out, probe_chunks) = match algo {
                JoinAlgo::Hash => {
                    let jb = match build_join_state(&r, on) {
                        Ok(jb) => jb,
                        Err(e) => {
                            if claimed {
                                abandon_claim(ctx, key);
                            }
                            return Err(e);
                        }
                    };
                    let state = Arc::new(OpState::JoinBuild(jb));
                    if claimed {
                        let build_wall = build_started.elapsed().as_secs_f64();
                        let build_work = metrics.total_work - build_work_before
                            + model.hash_build(r.num_rows() as f64).total();
                        publish_state(
                            ctx,
                            metrics,
                            right,
                            key,
                            state.clone(),
                            build_work,
                            build_wall,
                        );
                    }
                    let OpState::JoinBuild(jb) = &*state else { unreachable!() };
                    hash_join_probe(&l, jb, on, *kind, ctx)?
                }
                JoinAlgo::Merge => (merge_join(&l, &r, on, *kind)?, 1),
                JoinAlgo::Loop => (loop_join(&l, &r, on, *kind)?, 1),
            };
            let out = restore_swapped_columns(out, *swapped, l.schema().len())?;
            match algo {
                JoinAlgo::Hash => metrics.join_algos.hash += 1,
                JoinAlgo::Merge => metrics.join_algos.merge += 1,
                JoinAlgo::Loop => metrics.join_algos.loop_ += 1,
            }
            let (ln, rn) = (l.num_rows() as f64, r.num_rows() as f64);
            let work = match algo {
                JoinAlgo::Hash => model.hash_join(rn, ln),
                JoinAlgo::Merge => model.merge_join(ln, rn),
                JoinAlgo::Loop => model.nested_loop_join(ln, rn),
            }
            .total()
                + model.morsel_dispatch(probe_chunks as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::HashAggregate { group_by, aggs, schema, input, .. } => {
            let acq = acquire_breaker(ctx, metrics, "agg_state", || {
                opstate::agg_state_key(input, group_by, aggs)
            });
            if let Some(out) = restore_table_state(ctx, metrics, input, &acq, |s| match s {
                OpState::AggOutput(t) => Some(t),
                _ => None,
            })? {
                record(metrics, plan, &out, 0.0, None);
                return Ok(out);
            }
            let build_work_before = metrics.total_work;
            let build_started = std::time::Instant::now();
            let in_table = match exec_node(input, ctx, model, metrics, pending) {
                Ok(t) => t,
                Err(e) => {
                    if acq.claimed {
                        abandon_claim(ctx, acq.key);
                    }
                    return Err(e);
                }
            };
            metrics.data_read_bytes += in_table.byte_size();
            let (out, chunks) = match hash_aggregate(&in_table, group_by, aggs, schema, ctx) {
                Ok(v) => v,
                Err(e) => {
                    if acq.claimed {
                        abandon_claim(ctx, acq.key);
                    }
                    return Err(e);
                }
            };
            let work = model.hash_aggregate(in_table.num_rows() as f64, aggs.len()).total()
                + model.morsel_dispatch(chunks as f64).total();
            record(metrics, plan, &out, work, None);
            if acq.claimed {
                let build_wall = build_started.elapsed().as_secs_f64();
                let build_work = metrics.total_work - build_work_before;
                let state = Arc::new(OpState::AggOutput(out.clone()));
                publish_state(ctx, metrics, input, acq.key, state, build_work, build_wall);
            }
            Ok(out)
        }
        PhysicalPlan::Sort { keys, input, .. } => {
            let acq =
                acquire_breaker(ctx, metrics, "sort_run", || opstate::sort_state_key(input, keys));
            if let Some(out) = restore_table_state(ctx, metrics, input, &acq, |s| match s {
                OpState::SortRun(t) => Some(t),
                _ => None,
            })? {
                record(metrics, plan, &out, 0.0, None);
                return Ok(out);
            }
            let build_work_before = metrics.total_work;
            let build_started = std::time::Instant::now();
            let in_table = match exec_node(input, ctx, model, metrics, pending) {
                Ok(t) => t,
                Err(e) => {
                    if acq.claimed {
                        abandon_claim(ctx, acq.key);
                    }
                    return Err(e);
                }
            };
            metrics.data_read_bytes += in_table.byte_size();
            let sorted = (|| -> Result<Table> {
                let mut resolved = Vec::with_capacity(keys.len());
                for (name, asc) in keys {
                    let idx = in_table
                        .schema()
                        .index_of(name)
                        .ok_or_else(|| CvError::exec(format!("sort key `{name}` missing")))?;
                    resolved.push((idx, *asc));
                }
                in_table.sort_by(&resolved)
            })();
            let out = match sorted {
                Ok(t) => t,
                Err(e) => {
                    if acq.claimed {
                        abandon_claim(ctx, acq.key);
                    }
                    return Err(e);
                }
            };
            let work = model.sort(in_table.num_rows() as f64).total();
            record(metrics, plan, &out, work, None);
            if acq.claimed {
                let build_wall = build_started.elapsed().as_secs_f64();
                let build_work = metrics.total_work - build_work_before;
                let state = Arc::new(OpState::SortRun(out.clone()));
                publish_state(ctx, metrics, input, acq.key, state, build_work, build_wall);
            }
            Ok(out)
        }
        PhysicalPlan::Limit { n, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            // Chunk-aware prefix take: chunks fully inside the limit are
            // reused by reference (identity runs), only the boundary chunk
            // is gathered.
            let keep: Vec<usize> = (0..in_table.num_rows().min(*n)).collect();
            let ct = ChunkedTable::from_table(&in_table, ctx.chunk_size);
            let out = ct.take(&keep)?.into_table()?;
            record(metrics, plan, &out, model.limit().total(), None);
            Ok(out)
        }
        PhysicalPlan::Union { inputs, .. } => {
            let mut iter = inputs.iter();
            let first = iter.next().ok_or_else(|| CvError::exec("empty UNION"))?;
            let mut acc = exec_node(first, ctx, model, metrics, pending)?;
            for i in iter {
                let t = exec_node(i, ctx, model, metrics, pending)?;
                acc = acc.concat(&t)?;
            }
            metrics.data_read_bytes += acc.byte_size();
            let work = model.union(acc.num_rows() as f64).total();
            record(metrics, plan, &acc, work, None);
            Ok(acc)
        }
        PhysicalPlan::Udo { spec, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let out = ctx.udos.apply(spec, &in_table)?;
            let work = model.udo(in_table.num_rows() as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Spool { sig, recurring_sig, input_guids, input, .. } => {
            let work_before = metrics.total_work;
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            let production_work = metrics.total_work - work_before;
            let bytes = in_table.byte_size();
            let write_work = model.spool(in_table.num_rows() as f64, bytes as f64).total();
            metrics.bytes_written_views += bytes;
            // Hand sealed chunks to concurrent consumers as they are
            // produced — the single-flight layer buffers them so a job
            // waiting on this view can start before the store commit.
            if let Some(sink) = ctx.spool_sink {
                let ct = ChunkedTable::from_table(&in_table, ctx.chunk_size);
                let last = ct.num_chunks() - 1;
                for (i, chunk) in ct.chunks().iter().enumerate() {
                    sink.publish_chunk(*sig, chunk, i == last);
                }
            }
            pending.push(PendingView {
                sig: *sig,
                recurring_sig: *recurring_sig,
                input_guids: input_guids.clone(),
                schema: in_table.schema().clone(),
                data: in_table.clone(),
                production_work,
                write_work,
            });
            record(metrics, plan, &in_table, write_work, Some(*sig));
            Ok(in_table)
        }
    }
}

/// One breaker's cache negotiation: the derived key (if the subtree is
/// reuse-safe and a source is installed), a resident hit, or a
/// single-flight claim obligating this execution to publish or abandon.
struct BreakerAcq {
    key: Option<Sig128>,
    kind: &'static str,
    hit: Option<Arc<OpStateEntry>>,
    claimed: bool,
}

fn acquire_breaker(
    ctx: &ExecContext<'_>,
    metrics: &mut ExecMetrics,
    kind: &'static str,
    derive_key: impl FnOnce() -> Option<Sig128>,
) -> BreakerAcq {
    let mut acq = BreakerAcq { key: None, kind, hit: None, claimed: false };
    let Some(src) = ctx.op_states else { return acq };
    let Some(key) = derive_key() else { return acq };
    acq.key = Some(key);
    match src.acquire(key) {
        OpStateAcquire::Hit(e) => acq.hit = Some(e),
        OpStateAcquire::Build { claimed } => {
            acq.claimed = claimed;
            metrics.op_state_misses += 1;
            if let Some(obs) = ctx.obs {
                obs.op_state_miss(kind);
            }
        }
    }
    acq
}

/// Restore a whole-table breaker state (aggregate output, sort run): guid
/// validation, hit accounting, and placeholder profiles for the skipped
/// input subtree. Returns `Ok(None)` when there is no usable hit.
fn restore_table_state(
    ctx: &ExecContext<'_>,
    metrics: &mut ExecMetrics,
    subtree: &PhysicalPlan,
    acq: &BreakerAcq,
    pick: impl FnOnce(&OpState) -> Option<&Table>,
) -> Result<Option<Table>> {
    let Some(entry) = &acq.hit else { return Ok(None) };
    let Some(table) = pick(&entry.state) else { return Ok(None) };
    opstate::validate_scan_guids(subtree, ctx.catalog)?;
    metrics.op_state_hits += 1;
    metrics.op_state_work_avoided += entry.build_work;
    metrics.op_state_wall_avoided += entry.build_wall;
    if let Some(obs) = ctx.obs {
        obs.op_state_hit(acq.kind, acq.key.expect("hit implies key"));
    }
    push_skipped_profiles(subtree, metrics);
    metrics.data_read_bytes += table.byte_size();
    Ok(Some(table.clone()))
}

fn state_bytes(state: &OpState) -> u64 {
    match state {
        OpState::JoinBuild(jb) => jb.byte_size(),
        OpState::AggOutput(t) | OpState::SortRun(t) => t.byte_size(),
    }
}

/// Publish a freshly built breaker state under a held claim.
fn publish_state(
    ctx: &ExecContext<'_>,
    metrics: &mut ExecMetrics,
    subtree: &PhysicalPlan,
    key: Option<Sig128>,
    state: Arc<OpState>,
    build_work: f64,
    build_wall: f64,
) {
    let (Some(src), Some(key)) = (ctx.op_states, key) else { return };
    let (dep_sigs, scan_deps) = opstate::state_deps(subtree);
    let bytes = state_bytes(&state);
    let kind = state.kind();
    metrics.op_state_published += 1;
    if let Some(obs) = ctx.obs {
        obs.op_state_published(kind, bytes);
    }
    src.publish(key, OpStateEntry { state, bytes, build_work, build_wall, dep_sigs, scan_deps });
}

/// Release a held claim after a failed build so waiters degrade to inline
/// builds instead of timing out.
fn abandon_claim(ctx: &ExecContext<'_>, key: Option<Sig128>) {
    if let (Some(src), Some(key)) = (ctx.op_states, key) {
        src.abandon(key);
    }
}

/// Emit zero-work placeholder profiles for a subtree a cache hit skipped,
/// in the postorder execution would have produced, so the cluster stage
/// builder's 1:1 profile/plan zip still holds. Skipped subtrees never
/// contain spools (their keys are underivable), so no spool profile or
/// pending view can be lost here.
fn push_skipped_profiles(plan: &PhysicalPlan, metrics: &mut ExecMetrics) {
    for c in plan.children() {
        push_skipped_profiles(c, metrics);
    }
    metrics.op_profiles.push(OpProfile {
        kind: plan.kind_name(),
        rows_out: 0,
        bytes_out: 0,
        work: 0.0,
        partitions: plan.partitions(),
        spool_sig: None,
    });
}

/// Hash-table keys coming out of the key kernel are already
/// avalanche-mixed, so the join/aggregate maps use them verbatim instead of
/// paying SipHash per lookup. Public because snapshot types in
/// [`opstate`] carry these maps across executions.
#[derive(Default)]
pub struct PreHashed(u64);

impl std::hash::Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("PreHashed maps only take u64 keys")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

pub type PreHashedMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<PreHashed>>;

/// Row-at-a-time key equality — reference semantics, kept for `loop_join`
/// (the differential baseline the vectorized paths are tested against).
fn keys_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.sql_eq(y) == Some(true))
}

/// Resolve join key columns to indices.
fn resolve_keys(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut l = Vec::with_capacity(on.len());
    let mut r = Vec::with_capacity(on.len());
    for (lk, rk) in on {
        l.push(
            left.schema()
                .index_of(lk)
                .ok_or_else(|| CvError::exec(format!("left join key `{lk}` missing")))?,
        );
        r.push(
            right
                .schema()
                .index_of(rk)
                .ok_or_else(|| CvError::exec(format!("right join key `{rk}` missing")))?,
        );
    }
    Ok((l, r))
}

fn key_row(t: &Table, cols: &[usize], row: usize) -> Vec<Value> {
    cols.iter().map(|&c| t.column(c).value(row)).collect()
}

/// Assemble join output from matched index pairs. `right_idx == usize::MAX`
/// marks a left-outer miss (right side padded with NULLs).
fn build_join_output(
    left: &Table,
    right: &Table,
    pairs: &[(usize, usize)],
    kind: JoinKind,
) -> Result<Table> {
    let left_idx: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
    let right_idx: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
    join_output_from_indices(left, right, &left_idx, &right_idx, kind)
}

/// Rotate a side-swapped join's output columns back into the logical
/// order. The lowered plan emits `lowered_left ++ lowered_right`; for a
/// swapped join that is `logical_right ++ logical_left`, so the first
/// `probe_width` columns move to the back. Column handles are shared, so
/// this is O(columns), not O(rows).
fn restore_swapped_columns(out: Table, swapped: bool, probe_width: usize) -> Result<Table> {
    if !swapped {
        return Ok(out);
    }
    let fields: Vec<_> = out.schema().fields()[probe_width..]
        .iter()
        .chain(&out.schema().fields()[..probe_width])
        .cloned()
        .collect();
    let mut columns = out.columns()[probe_width..].to_vec();
    columns.extend_from_slice(&out.columns()[..probe_width]);
    Table::new(Schema::new(fields)?.into_ref(), columns)
}

fn join_output_from_indices(
    left: &Table,
    right: &Table,
    left_idx: &[usize],
    right_idx: &[usize],
    kind: JoinKind,
) -> Result<Table> {
    let left_part = left.take(left_idx)?;
    if kind == JoinKind::Semi {
        return Ok(left_part);
    }
    // Typed padded gather: `usize::MAX` indices become NULL rows directly,
    // without materializing a copy of the right table first.
    let schema = left.schema().join(right.schema())?.into_ref();
    let mut columns = left_part.columns().to_vec();
    for col in right.columns() {
        columns.push(col.take_padded(right_idx, usize::MAX));
    }
    Table::new(schema, columns)
}

/// The finished hash-join build side — a pipeline-breaker state the
/// operator-state cache can snapshot and restore: the materialized build
/// table, its resolved key column indices, and the hash→rows map.
#[derive(Debug)]
pub struct JoinBuildState {
    pub table: Table,
    pub key_cols: Vec<usize>,
    pub ht: PreHashedMap<Vec<usize>>,
}

impl JoinBuildState {
    /// Approximate resident bytes: the table plus hash-map overhead.
    pub fn byte_size(&self) -> u64 {
        self.table.byte_size() + self.ht.len() as u64 * 48
    }
}

/// Build side is a pipeline breaker: hash the build table column-wise in
/// one pass and construct the lookup map before any probe chunk runs.
fn build_join_state(right: &Table, on: &[(String, String)]) -> Result<JoinBuildState> {
    let mut rk = Vec::with_capacity(on.len());
    for (_, name) in on {
        rk.push(
            right
                .schema()
                .index_of(name)
                .ok_or_else(|| CvError::exec(format!("right join key `{name}` missing")))?,
        );
    }
    let rkeys = KeyCols::from_table(right, &rk);
    let (rh, rvalid) = rkeys.join_hashes();
    let mut ht: PreHashedMap<Vec<usize>> = PreHashedMap::default();
    for row in 0..right.num_rows() {
        if rvalid[row] {
            ht.entry(rh[row]).or_default().push(row);
        }
    }
    Ok(JoinBuildState { table: right.clone(), key_cols: rk, ht })
}

/// The probe side streams chunk-at-a-time against the (possibly restored)
/// build state. Each chunk emits its own output slice (chunk-local left
/// rows ascending, candidates ascending), so chunk-order reassembly
/// reproduces the monolithic emit order exactly.
fn hash_join_probe(
    left: &Table,
    state: &JoinBuildState,
    on: &[(String, String)],
    kind: JoinKind,
    ctx: &ExecContext<'_>,
) -> Result<(Table, usize)> {
    let mut lk = Vec::with_capacity(on.len());
    for (name, _) in on {
        lk.push(
            left.schema()
                .index_of(name)
                .ok_or_else(|| CvError::exec(format!("left join key `{name}` missing")))?,
        );
    }
    let right = &state.table;
    let rkeys = KeyCols::from_table(right, &state.key_cols);
    let ht = &state.ht;
    let probe = |chunk: &Table| -> Result<Table> {
        let lkeys = KeyCols::from_table(chunk, &lk);
        let (lh, lvalid) = lkeys.join_hashes();
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<usize> = Vec::new();
        for lrow in 0..chunk.num_rows() {
            let mut matched = false;
            if lvalid[lrow] {
                if let Some(cands) = ht.get(&lh[lrow]) {
                    for &rrow in cands {
                        if lkeys.rows_eq_sql(lrow, &rkeys, rrow) {
                            match kind {
                                JoinKind::Semi => {
                                    matched = true;
                                    break;
                                }
                                _ => {
                                    left_idx.push(lrow);
                                    right_idx.push(rrow);
                                    matched = true;
                                }
                            }
                        }
                    }
                }
            }
            match kind {
                JoinKind::Semi if matched => {
                    left_idx.push(lrow);
                    right_idx.push(usize::MAX);
                }
                JoinKind::Left if !matched => {
                    left_idx.push(lrow);
                    right_idx.push(usize::MAX);
                }
                _ => {}
            }
        }
        join_output_from_indices(chunk, right, &left_idx, &right_idx, kind)
    };
    let ranges = chunk_ranges(left.num_rows(), ctx.chunk_size);
    if ranges.len() == 1 {
        let out = probe(left)?;
        let schema = out.schema().clone();
        return Ok((Table::from_chunks(schema, &[out])?, 1));
    }
    let outputs = morsel::run_indexed(ctx.runner.as_ref(), ranges.len(), &|i| {
        let (off, len) = ranges[i];
        probe(&left.slice(off, len))
    });
    let chunks = outputs.into_iter().collect::<Result<Vec<Table>>>()?;
    let schema = chunks[0].schema().clone();
    Ok((Table::from_chunks(schema, &chunks)?, ranges.len()))
}

fn loop_join(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
    kind: JoinKind,
) -> Result<Table> {
    let (lk, rk) = resolve_keys(left, right, on)?;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for lrow in 0..left.num_rows() {
        let lkey = key_row(left, &lk, lrow);
        let mut matched = false;
        for rrow in 0..right.num_rows() {
            if keys_equal(&lkey, &key_row(right, &rk, rrow)) {
                match kind {
                    JoinKind::Semi => {
                        matched = true;
                        break;
                    }
                    _ => {
                        pairs.push((lrow, rrow));
                        matched = true;
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => pairs.push((lrow, usize::MAX)),
            JoinKind::Left if !matched => pairs.push((lrow, usize::MAX)),
            _ => {}
        }
    }
    build_join_output(left, right, &pairs, kind)
}

fn merge_join(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
    kind: JoinKind,
) -> Result<Table> {
    let (lk, rk) = resolve_keys(left, right, on)?;
    let lkeys = KeyCols::from_table(left, &lk);
    let rkeys = KeyCols::from_table(right, &rk);
    // Sort both sides by key; keep a mapping back to original row ids so the
    // output is assembled against the *original* tables.
    let lsorted: Vec<usize> = sorted_indices(left, &lk);
    let rsorted: Vec<usize> = sorted_indices(right, &rk);

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lsorted.len() {
        let lrow0 = lsorted[i];
        if lkeys.has_null(lrow0) {
            // NULL keys never match.
            if kind != JoinKind::Inner && kind != JoinKind::Semi {
                pairs.push((lrow0, usize::MAX));
            }
            i += 1;
            continue;
        }
        // Advance right to the first key ≥ the current left key.
        while j < rsorted.len()
            && (rkeys.has_null(rsorted[j]) || rkeys.cmp_rows(rsorted[j], &lkeys, lrow0).is_lt())
        {
            j += 1;
        }
        // Collect the right group equal to the current left key.
        let mut j_end = j;
        while j_end < rsorted.len() && rkeys.cmp_rows(rsorted[j_end], &lkeys, lrow0).is_eq() {
            j_end += 1;
        }
        // Emit for every left row in this equal group.
        let mut i_end = i;
        while i_end < lsorted.len() && lkeys.cmp_rows(lsorted[i_end], &lkeys, lrow0).is_eq() {
            i_end += 1;
        }
        for &lrow in &lsorted[i..i_end] {
            if j_end > j {
                match kind {
                    JoinKind::Semi => pairs.push((lrow, usize::MAX)),
                    _ => {
                        for &rrow in &rsorted[j..j_end] {
                            pairs.push((lrow, rrow));
                        }
                    }
                }
            } else if kind == JoinKind::Left {
                pairs.push((lrow, usize::MAX));
            }
        }
        i = i_end;
    }
    // Keep output order deterministic (by left row id, then right row id).
    pairs.sort_unstable();
    build_join_output(left, right, &pairs, kind)
}

fn sorted_indices(t: &Table, keys: &[usize]) -> Vec<usize> {
    let kc = KeyCols::from_table(t, keys);
    let mut idx: Vec<usize> = (0..t.num_rows()).collect();
    idx.sort_by(|&a, &b| kc.cmp_rows(a, &kc, b));
    idx
}

/// Numeric widening matching `Value::as_f64` (Int, Float, Date → f64).
#[inline]
fn num_at(col: &Column, row: usize) -> Option<f64> {
    match col.data() {
        ColumnData::Int(v) => Some(v[row] as f64),
        ColumnData::Float(v) => Some(v[row]),
        ColumnData::Date(v) => Some(v[row] as f64),
        _ => None,
    }
}

/// One aggregate's argument columns across all input chunks. Accumulators
/// address cells as `(chunk, row)` pairs so MIN/MAX can keep a handle to
/// the best cell without copying values out of chunk buffers.
struct ArgView<'a> {
    by_chunk: &'a [Vec<Option<Column>>],
    agg: usize,
}

impl ArgView<'_> {
    fn at(&self, chunk: usize) -> Option<&Column> {
        self.by_chunk[chunk][self.agg].as_ref()
    }
}

/// One aggregate accumulator. Updates read typed cells straight off the
/// per-chunk argument columns — no per-row [`Value`] boxing, no string
/// rendering.
enum Acc {
    Count(i64),
    /// DISTINCT keyed on typed value hashes from the key-hash kernel, not
    /// on string rendering (which conflated distinct values that happen to
    /// render alike).
    Distinct(std::collections::HashSet<u64>),
    /// SUM over INT accumulates in checked i64 — overflow is an execution
    /// error, not a silent drift through f64 rounding.
    SumInt {
        total: i64,
        any: bool,
    },
    SumFloat {
        total: f64,
        any: bool,
        int_out: bool,
    },
    MinRow(Option<(usize, usize)>),
    MaxRow(Option<(usize, usize)>),
    Avg {
        total: f64,
        count: i64,
    },
}

impl Acc {
    fn new(func: AggFunc, int_out: bool, arg_dtype: Option<cv_data::value::DataType>) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::Distinct(Default::default()),
            AggFunc::Sum => {
                if int_out && arg_dtype == Some(cv_data::value::DataType::Int) {
                    Acc::SumInt { total: 0, any: false }
                } else {
                    Acc::SumFloat { total: 0.0, any: false, int_out }
                }
            }
            AggFunc::Min => Acc::MinRow(None),
            AggFunc::Max => Acc::MaxRow(None),
            AggFunc::Avg => Acc::Avg { total: 0.0, count: 0 },
        }
    }

    fn update(&mut self, arg: &ArgView<'_>, cell: (usize, usize)) -> Result<()> {
        let (chunk, row) = cell;
        match self {
            Acc::Count(c) => {
                // COUNT(*) gets None arg (count every row); COUNT(x) counts
                // non-null x.
                match arg.at(chunk) {
                    None => *c += 1,
                    Some(col) if !col.is_null(row) => *c += 1,
                    _ => {}
                }
            }
            Acc::Distinct(set) => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row) {
                        set.insert(keys::value_hash(col, row));
                    }
                }
            }
            Acc::SumInt { total, any } => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row) {
                        *total = total
                            .checked_add(col.ints()[row])
                            .ok_or_else(|| CvError::exec("SUM(INT) overflow"))?;
                        *any = true;
                    }
                }
            }
            Acc::SumFloat { total, any, .. } => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row) {
                        if let Some(f) = num_at(col, row) {
                            *total += f;
                            *any = true;
                        }
                    }
                }
            }
            Acc::MinRow(best) => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row)
                        && best.is_none_or(|(bc, br)| {
                            keys::cmp_cells(col, row, arg.at(bc).expect("best cell column"), br)
                                .is_lt()
                        })
                    {
                        *best = Some(cell);
                    }
                }
            }
            Acc::MaxRow(best) => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row)
                        && best.is_none_or(|(bc, br)| {
                            keys::cmp_cells(col, row, arg.at(bc).expect("best cell column"), br)
                                .is_gt()
                        })
                    {
                        *best = Some(cell);
                    }
                }
            }
            Acc::Avg { total, count } => {
                if let Some(col) = arg.at(chunk) {
                    if !col.is_null(row) {
                        if let Some(f) = num_at(col, row) {
                            *total += f;
                            *count += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Read out the final value. Takes `&self` so the chunked output
    /// emitter can finish groups from shared state in parallel.
    fn finish(&self, arg: &ArgView<'_>) -> Value {
        match self {
            Acc::Count(c) => Value::Int(*c),
            Acc::Distinct(set) => Value::Int(set.len() as i64),
            Acc::SumInt { total, any } => {
                if *any {
                    Value::Int(*total)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat { total, any, int_out } => {
                if !*any {
                    Value::Null
                } else if *int_out {
                    Value::Int(*total as i64)
                } else {
                    Value::Float(*total)
                }
            }
            Acc::MinRow(best) | Acc::MaxRow(best) => match best {
                Some((chunk, row)) => arg.at(*chunk).map_or(Value::Null, |col| col.value(*row)),
                None => Value::Null,
            },
            Acc::Avg { total, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / *count as f64)
                }
            }
        }
    }
}

fn hash_aggregate(
    input: &Table,
    group_by: &[(ScalarExpr, String)],
    aggs: &[AggExpr],
    schema: &SchemaRef,
    ctx: &mut ExecContext<'_>,
) -> Result<(Table, usize)> {
    // Phase 1 — evaluate group keys and aggregate arguments chunk-at-a-time
    // (the parallelizable part, fanned through the morsel runner). Phase 2 —
    // accumulate serially in global row order, so order-sensitive
    // accumulation (float SUM/AVG) produces the monolithic bit pattern at
    // every chunk size and worker count.
    let det = group_by.iter().all(|(e, _)| e.is_deterministic())
        && aggs.iter().all(AggExpr::is_deterministic);
    let chunk_size = if det { ctx.chunk_size } else { usize::MAX };
    let ranges = chunk_ranges(input.num_rows(), chunk_size);

    let eval_chunk = |t: &Table, ec: &mut EvalCtx| -> Result<(Vec<Column>, Vec<Option<Column>>)> {
        let keys: Result<Vec<_>> = group_by.iter().map(|(e, _)| eval(e, t, ec)).collect();
        let args: Result<Vec<Option<_>>> =
            aggs.iter().map(|a| a.arg.as_ref().map(|e| eval(e, t, ec)).transpose()).collect();
        Ok((keys?, args?))
    };
    let evaluated: Vec<(Vec<Column>, Vec<Option<Column>>)> = if ranges.len() == 1 {
        vec![eval_chunk(input, &mut ctx.eval)?]
    } else {
        let base_eval = ctx.eval.clone();
        morsel::run_indexed(ctx.runner.as_ref(), ranges.len(), &|i| {
            let (off, len) = ranges[i];
            eval_chunk(&input.slice(off, len), &mut base_eval.clone())
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?
    };
    let (keys_by_chunk, args_by_chunk): (Vec<Vec<Column>>, Vec<Vec<Option<Column>>>) =
        evaluated.into_iter().unzip();

    // SUM over an INT input produces INT; detect from the output schema.
    let int_sum: Vec<bool> = aggs
        .iter()
        .enumerate()
        .map(|(i, _)| schema.field(group_by.len() + i).dtype == cv_data::value::DataType::Int)
        .collect();
    let arg_dtypes: Vec<Option<cv_data::value::DataType>> =
        args_by_chunk[0].iter().map(|c| c.as_ref().map(Column::dtype)).collect();
    let new_accs = || -> Vec<Acc> {
        aggs.iter().enumerate().map(|(i, a)| Acc::new(a.func, int_sum[i], arg_dtypes[i])).collect()
    };

    // Groups remember their first input cell (chunk, row); key output
    // columns are rebuilt from those representative cells at the end — no
    // per-row key boxing.
    struct Group {
        first: (usize, usize),
        accs: Vec<Acc>,
    }
    let kcs: Vec<KeyCols<'_>> = keys_by_chunk
        .iter()
        .zip(&ranges)
        .map(|(cols, &(_, len))| KeyCols::new(cols.iter().collect(), len))
        .collect();
    let mut groups: Vec<Group> = Vec::new();
    let mut index: PreHashedMap<Vec<usize>> = PreHashedMap::default();
    for (c, kc) in kcs.iter().enumerate() {
        let hashes = kc.group_hashes();
        for (row, &h) in hashes.iter().enumerate() {
            let slot = index.entry(h).or_default();
            let gid = slot
                .iter()
                .copied()
                .find(|&g| {
                    let (gc, gr) = groups[g].first;
                    kcs[gc].rows_eq_group(gr, kc, row)
                })
                .unwrap_or_else(|| {
                    let gid = groups.len();
                    groups.push(Group { first: (c, row), accs: new_accs() });
                    slot.push(gid);
                    gid
                });
            for (i, acc) in groups[gid].accs.iter_mut().enumerate() {
                acc.update(&ArgView { by_chunk: &args_by_chunk, agg: i }, (c, row))?;
            }
        }
    }

    // Global aggregate over empty input still yields one group.
    if groups.is_empty() && group_by.is_empty() {
        groups.push(Group { first: (0, 0), accs: new_accs() });
    }

    // Canonical output order: sort group ids by their representative key
    // cells ascending (NULLs first), the exact order `Table::sort_by` over
    // the key columns produces. First-encounter order is an artifact of
    // input row order; sorting makes aggregate output a pure function of
    // the input *multiset*, so an incrementally maintained aggregate
    // (cv-ivm) emitted from group state is byte-identical to inline
    // execution. Distinct groups never compare equal, so the order is
    // total and stability is irrelevant.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    if !group_by.is_empty() {
        order.sort_by(|&a, &b| {
            let (ac, ar) = groups[a].first;
            let (bc, br) = groups[b].first;
            for (ka, kb) in keys_by_chunk[ac].iter().zip(&keys_by_chunk[bc]).take(group_by.len()) {
                let o = keys::cmp_cells(ka, ar, kb, br);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // Final merge streams chunk-at-a-time: each output chunk rebuilds its
    // slice of key columns from representative cells and finishes its
    // accumulators independently, then chunk-order reassembly normalizes —
    // no monolithic materialize-then-sort. Builders produce the canonical
    // validity form, so output bytes are independent of which chunk a
    // representative landed in and of the emit fan-out.
    let emit = |off: usize, len: usize| -> Result<Table> {
        let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
        for (k, key0) in keys_by_chunk[0].iter().enumerate().take(group_by.len()) {
            let mut b = ColumnBuilder::with_capacity(key0.dtype(), len);
            for &g in &order[off..off + len] {
                let (gc, gr) = groups[g].first;
                b.push(&keys_by_chunk[gc][k].value(gr))?;
            }
            columns.push(b.finish());
        }
        for i in 0..aggs.len() {
            let mut b = ColumnBuilder::with_capacity(schema.field(group_by.len() + i).dtype, len);
            let view = ArgView { by_chunk: &args_by_chunk, agg: i };
            for &g in &order[off..off + len] {
                b.push(&groups[g].accs[i].finish(&view))?;
            }
            columns.push(b.finish());
        }
        Table::new(schema.clone(), columns)
    };
    let out_ranges = chunk_ranges(order.len(), chunk_size);
    let out_chunks: Vec<Table> = if out_ranges.len() == 1 {
        vec![emit(out_ranges[0].0, out_ranges[0].1)?]
    } else {
        morsel::run_indexed(ctx.runner.as_ref(), out_ranges.len(), &|i| {
            let (off, len) = out_ranges[i];
            emit(off, len)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?
    };
    let out = Table::from_chunks(schema.clone(), &out_chunks)?;
    Ok((out, ranges.len() + out_ranges.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::optimizer::{AlwaysGrant, Optimizer, OptimizerConfig, ReuseContext};
    use crate::plan::{LogicalPlan, PlanBuilder};
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;
    use cv_data::viewstore::ViewStore;
    use std::sync::Arc;

    fn setup() -> (DatasetCatalog, ViewStore, UdoRegistry) {
        let mut cat = DatasetCatalog::new();
        let sales = Schema::new(vec![
            Field::new("s_cust", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("qty", DataType::Int),
        ])
        .unwrap()
        .into_ref();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![Value::Int(i % 10), Value::Float((i % 7) as f64 + 0.5), Value::Int(i % 5)]
            })
            .collect();
        cat.register("sales", Table::from_rows(sales, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let cust =
            Schema::new(vec![Field::new("c_id", DataType::Int), Field::new("seg", DataType::Str)])
                .unwrap()
                .into_ref();
        let crows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![Value::Int(i), Value::Str(if i % 2 == 0 { "asia" } else { "emea" }.into())]
            })
            .collect();
        cat.register("customer", Table::from_rows(cust, &crows).unwrap(), SimTime::EPOCH).unwrap();
        (cat, ViewStore::with_default_ttl(), UdoRegistry::with_builtins())
    }

    fn try_run(
        plan: &Arc<LogicalPlan>,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
    ) -> Result<ExecOutcome> {
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let out = opt.optimize(plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap();
        let mut ctx = ExecContext::new(cat, views, udos, SimTime::EPOCH);
        execute(&out.physical, &mut ctx, &opt.cfg.cost)
    }

    fn run(
        plan: &Arc<LogicalPlan>,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
    ) -> ExecOutcome {
        try_run(plan, cat, views, udos).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .project(vec![(col("s_cust"), "c"), (col("price").mul(lit(2.0)), "p2")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        // qty in {3,4} → 40 of 100 rows.
        assert_eq!(out.table.num_rows(), 40);
        assert_eq!(out.table.schema().names(), vec!["c", "p2"]);
        assert!(out.metrics.input_bytes > 0);
        assert!(out.metrics.total_work > 0.0);
    }

    fn join_plan(cat: &DatasetCatalog, kind: JoinKind) -> Arc<LogicalPlan> {
        PlanBuilder::scan(cat, "sales")
            .unwrap()
            .join(PlanBuilder::scan(cat, "customer").unwrap(), &[("s_cust", "c_id")], kind)
            .unwrap()
            .build()
    }

    #[test]
    fn all_join_algorithms_agree() {
        let (cat, views, udos) = setup();
        let logical = join_plan(&cat, JoinKind::Inner);
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let opt = Optimizer::new(OptimizerConfig::default());
        let physical = opt
            .to_physical(&crate::normalize::normalize(&logical, &opt.cfg.sig).unwrap(), &stats)
            .unwrap();

        // Execute the same join with each algorithm forced.
        fn force(p: &PhysicalPlan, algo: JoinAlgo) -> PhysicalPlan {
            match p.clone() {
                PhysicalPlan::Join { kind, on, left, right, est, partitions, swapped, .. } => {
                    PhysicalPlan::Join {
                        algo,
                        kind,
                        on,
                        left: Box::new(force(&left, algo)),
                        right: Box::new(force(&right, algo)),
                        est,
                        partitions,
                        swapped,
                    }
                }
                other => other,
            }
        }
        let model = CostModel::default();
        let mut results = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::Loop] {
            let forced = force(&physical, algo);
            let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
            let out = execute(&forced, &mut ctx, &model).unwrap();
            assert_eq!(out.table.num_rows(), 100, "{algo:?} row count");
            results.push(out.table.canonical_rows());
        }
        assert_eq!(results[0], results[1], "hash vs merge");
        assert_eq!(results[0], results[2], "hash vs loop");
    }

    #[test]
    fn left_join_pads_nulls() {
        let (mut cat, views, udos) = setup();
        // Customer table with ids 0..10, sales referencing 0..10 → add a
        // sale with customer id 99 (no match).
        let sales = cat.get_by_name("sales").unwrap().data().clone();
        let extra = Table::from_rows(
            sales.schema().clone(),
            &[vec![Value::Int(99), Value::Float(1.0), Value::Int(1)]],
        )
        .unwrap();
        let id = cat.id_of("sales").unwrap();
        cat.bulk_update(id, sales.concat(&extra).unwrap(), SimTime::EPOCH).unwrap();

        let plan = join_plan(&cat, JoinKind::Left);
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 101);
        let seg_idx = out.table.schema().index_of("seg").unwrap();
        let nulls = (0..out.table.num_rows())
            .filter(|&i| out.table.column(seg_idx).value(i).is_null())
            .count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let (cat, views, udos) = setup();
        let plan = join_plan(&cat, JoinKind::Semi);
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.schema().names(), vec!["s_cust", "price", "qty"]);
        assert_eq!(out.table.num_rows(), 100); // every sale has a customer
    }

    #[test]
    fn aggregation_results() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(
                vec![(col("s_cust"), "cust")],
                vec![
                    AggExpr::new(AggFunc::Sum, col("qty"), "total_qty"),
                    AggExpr::new(AggFunc::Avg, col("price"), "avg_price"),
                    AggExpr::count_star("n"),
                ],
            )
            .unwrap()
            .sort(&[("cust", true)])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 10);
        // Each customer id occurs 10 times.
        let n_idx = out.table.schema().index_of("n").unwrap();
        for i in 0..10 {
            assert_eq!(out.table.column(n_idx).value(i), Value::Int(10));
        }
        // SUM over INT stays INT.
        let tq = out.table.schema().index_of("total_qty").unwrap();
        assert_eq!(out.table.schema().field(tq).dtype, DataType::Int);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(1_000_000)))
            .unwrap()
            .aggregate(
                vec![],
                vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Sum, col("qty"), "s")],
            )
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.table.row(0)[0], Value::Int(0));
        assert!(out.table.row(0)[1].is_null());
    }

    #[test]
    fn count_distinct() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::CountDistinct, col("s_cust"), "d")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.row(0)[0], Value::Int(10));
    }

    #[test]
    fn sum_int_overflow_is_an_error() {
        let (mut cat, views, udos) = setup();
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let rows: Vec<Vec<Value>> = vec![vec![Value::Int(i64::MAX)], vec![Value::Int(1)]];
        cat.register("big", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "big")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("x"), "s")])
            .unwrap()
            .build();
        let err = try_run(&plan, &cat, &views, &udos).unwrap_err();
        assert!(err.to_string().contains("overflow"), "unexpected error: {err}");
    }

    #[test]
    fn count_distinct_uses_typed_equality() {
        let (mut cat, views, udos) = setup();
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]).unwrap().into_ref();
        let vals = [0.0_f64, -0.0, 2.5, f64::NAN, -f64::NAN];
        let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Float(v)]).collect();
        cat.register("fl", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "fl")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::CountDistinct, col("f"), "d")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        // The old string-keyed set counted -0.0 and 0.0 separately; typed
        // hashing collapses the zero signs and all NaN payloads: {0, 2.5, NaN}.
        assert_eq!(out.table.row(0)[0], Value::Int(3));
    }

    #[test]
    fn union_and_limit() {
        let (cat, views, udos) = setup();
        let a = PlanBuilder::scan(&cat, "sales").unwrap();
        let b = PlanBuilder::scan(&cat, "sales").unwrap();
        let plan = a.union(b).unwrap().limit(150).build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 150);
    }

    #[test]
    fn spool_captures_pending_view() {
        let (cat, views, udos) = setup();
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let logical = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .build();
        let normalized = crate::normalize::normalize(&logical, &opt.cfg.sig).unwrap();
        let sig = crate::signature::plan_signature(
            &normalized,
            &opt.cfg.sig,
            crate::signature::SigMode::Strict,
        )
        .unwrap();
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(sig);
        let out = opt.optimize(&logical, &reuse, &stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.built_views, vec![sig]);

        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let exec_out = execute(&out.physical, &mut ctx, &opt.cfg.cost).unwrap();
        assert_eq!(exec_out.pending_views.len(), 1);
        let pv = &exec_out.pending_views[0];
        assert_eq!(pv.sig, sig);
        assert_eq!(pv.data.num_rows(), 40);
        assert!(pv.production_work > 0.0);
        assert!(exec_out.metrics.bytes_written_views > 0);
        // Result identical to the view contents (spool is pass-through).
        assert_eq!(exec_out.table.canonical_rows(), pv.data.canonical_rows());
    }

    #[test]
    fn viewscan_executes_from_store() {
        let (cat, mut views, udos) = setup();
        let (sig, data) = {
            let plan = PlanBuilder::scan(&cat, "sales")
                .unwrap()
                .filter(col("qty").gt(lit(2)))
                .unwrap()
                .build();
            let out = run(&plan, &cat, &views, &udos);
            (Sig128(42), out.table)
        };
        views
            .insert(cv_data::viewstore::MaterializedView {
                strict_sig: sig,
                recurring_sig: sig,
                schema: data.schema().clone(),
                data: data.clone(),
                rows: 0,
                bytes: 0,
                created: SimTime::EPOCH,
                expires: SimTime::EPOCH,
                creator_job: cv_common::ids::JobId(0),
                vc: cv_common::ids::VcId(0),
                input_guids: vec![],
                observed_work: 1.0,
                checksum: 0,
            })
            .unwrap();
        let physical = PhysicalPlan::ViewScan {
            sig,
            schema: data.schema().clone(),
            est: crate::stats::Statistics::accurate(40.0, 100.0),
            partitions: 1,
            fallback: None,
        };
        let model = CostModel::default();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let out = execute(&physical, &mut ctx, &model).unwrap();
        assert_eq!(out.table.canonical_rows(), data.canonical_rows());
        assert!(out.metrics.view_bytes_read > 0);
        assert_eq!(out.metrics.input_bytes, 0);

        // Missing view → execution error.
        let physical2 = PhysicalPlan::ViewScan {
            sig: Sig128(999),
            schema: data.schema().clone(),
            est: crate::stats::Statistics::accurate(1.0, 1.0),
            partitions: 1,
            fallback: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        assert!(execute(&physical2, &mut ctx2, &model).is_err());
    }

    #[test]
    fn viewscan_falls_back_to_recompute_on_read_fault() {
        use cv_common::{FaultPlan, FaultPoint};
        let (cat, mut views, udos) = setup();
        let logical = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .build();
        let expected = run(&logical, &cat, &views, &udos).table;

        // Seal a view for the subexpression, then make every read fail.
        views
            .insert(cv_data::viewstore::MaterializedView {
                strict_sig: Sig128(77),
                recurring_sig: Sig128(77),
                schema: expected.schema().clone(),
                data: expected.clone(),
                rows: 0,
                bytes: 0,
                created: SimTime::EPOCH,
                expires: SimTime::EPOCH,
                creator_job: cv_common::ids::JobId(0),
                vc: cv_common::ids::VcId(0),
                input_guids: vec![],
                observed_work: 1.0,
                checksum: 0,
            })
            .unwrap();
        views.set_fault_plan(FaultPlan::seeded(1).with_rate(FaultPoint::ViewRead, 0.9));
        // Under a 0.9 read-fail rate the decision for this sig may still be
        // "serve"; scan seeds until the fault actually fires so the test is
        // deterministic and meaningful.
        let mut seed = 1u64;
        while !views
            .fault_plan()
            .fires(FaultPoint::ViewRead, &[Sig128(77).0 as u64, (Sig128(77).0 >> 64) as u64])
        {
            seed += 1;
            views.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultPoint::ViewRead, 0.9));
        }

        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let fallback = opt.to_physical(&logical, &stats).unwrap();
        let physical = PhysicalPlan::ViewScan {
            sig: Sig128(77),
            schema: expected.schema().clone(),
            est: crate::stats::Statistics::accurate(40.0, 100.0),
            partitions: 1,
            fallback: Some(Box::new(fallback)),
        };
        let model = CostModel::default();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let out = execute(&physical, &mut ctx, &model).unwrap();

        // Correct answer via recomputation, counted as a degradation.
        assert_eq!(out.table.canonical_rows(), expected.canonical_rows());
        assert_eq!(out.metrics.fallbacks_recompute, 1);
        assert_eq!(out.metrics.view_read_failures, 1);
        assert_eq!(out.metrics.quarantined_sigs, vec![Sig128(77)]);
        assert!(out.metrics.input_bytes > 0, "fallback re-read the base table");
        // The fallback subtree collapsed into one ViewScan profile, so the
        // profile list still zips 1:1 with the plan the stage builder sees.
        assert_eq!(out.metrics.op_profiles.len(), 1);
        assert_eq!(out.metrics.op_profiles[0].kind, "ViewScan");
        assert!(out.metrics.op_profiles[0].work > 0.0);
    }

    #[test]
    fn stale_scan_guid_rejected() {
        let (mut cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales").unwrap().build();
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let out = opt.optimize(&plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap();
        // Bulk-update between compile and execute.
        let id = cat.id_of("sales").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::from_days(1.0));
        let err = execute(&out.physical, &mut ctx, &opt.cfg.cost).unwrap_err();
        assert!(err.to_string().contains("stale plan"));
    }

    #[test]
    fn udo_in_pipeline() {
        let (mut cat, views, udos) = setup();
        let events = Schema::new(vec![
            Field::new("user_agent", DataType::Str),
            Field::new("ip_hash", DataType::Int),
        ])
        .unwrap()
        .into_ref();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Str(if i % 2 == 0 { "Chrome/1" } else { "Firefox/2" }.into()),
                    Value::Int(i),
                ]
            })
            .collect();
        cat.register("events", Table::from_rows(events, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "events")
            .unwrap()
            .udo(crate::udo::UdoSpec::new("parse_user_agent"), &udos)
            .unwrap()
            .filter(col("browser").eq(lit("chrome")))
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 10);
    }

    #[test]
    fn metrics_data_read_exceeds_input() {
        let (cat, views, udos) = setup();
        let plan = join_plan(&cat, JoinKind::Inner);
        let out = run(&plan, &cat, &views, &udos);
        assert!(out.metrics.data_read_bytes >= out.metrics.input_bytes);
        assert_eq!(out.metrics.join_algos.total(), 1);
        assert!(!out.metrics.op_profiles.is_empty());
    }

    // ---- chunked morsel-driven execution ----

    fn optimize_physical(
        plan: &Arc<LogicalPlan>,
        cat: &DatasetCatalog,
    ) -> (PhysicalPlan, CostModel) {
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let out = opt.optimize(plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap();
        (out.physical, opt.cfg.cost)
    }

    fn exec_chunked(
        physical: &PhysicalPlan,
        model: &CostModel,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
        chunk_size: usize,
        vectorized: bool,
    ) -> Table {
        let mut ctx = ExecContext::new(cat, views, udos, SimTime::EPOCH)
            .with_chunking(chunk_size, Arc::new(SerialRunner));
        ctx.eval.vectorized = vectorized;
        execute(physical, &mut ctx, model).unwrap().table
    }

    /// Byte-level equality: values, buffer contents, validity bitmaps and
    /// total byte size — strictly stronger than `canonical_rows`.
    fn assert_byte_identical(a: &Table, b: &Table, what: &str) {
        assert_eq!(a.num_rows(), b.num_rows(), "{what}: row count");
        assert_eq!(a.byte_size(), b.byte_size(), "{what}: byte size");
        for ci in 0..a.num_columns() {
            assert_eq!(
                format!("{:?}", a.column(ci).data()),
                format!("{:?}", b.column(ci).data()),
                "{what}: col {ci} buffer"
            );
            assert_eq!(
                a.column(ci).validity().map(|v| v.to_bools()),
                b.column(ci).validity().map(|v| v.to_bools()),
                "{what}: col {ci} validity"
            );
        }
    }

    /// The satellite differential property test: a DetRng-generated input
    /// (nulls included, 103 rows — not divisible by any tested chunk size)
    /// through filter → project → join → aggregate must be byte-for-byte
    /// identical at every chunk size, with the vectorized kernels on and
    /// off.
    #[test]
    fn chunked_execution_is_byte_identical_at_every_chunk_size() {
        let mut rng = cv_common::DetRng::seed(42);
        let mut cat = DatasetCatalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("tag", DataType::Str),
        ])
        .unwrap()
        .into_ref();
        let rows: Vec<Vec<Value>> = (0..103)
            .map(|_| {
                vec![
                    if rng.chance(0.15) { Value::Null } else { Value::Int(rng.range_i64(0, 10)) },
                    if rng.chance(0.1) { Value::Null } else { Value::Float(rng.next_f64() * 9.0) },
                    Value::Str(format!("t{}", rng.range_u64(0, 4))),
                ]
            })
            .collect();
        cat.register("facts", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let dim =
            Schema::new(vec![Field::new("d_id", DataType::Int), Field::new("w", DataType::Float)])
                .unwrap()
                .into_ref();
        let drows: Vec<Vec<Value>> =
            (0..10).map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)]).collect();
        cat.register("dim", Table::from_rows(dim, &drows).unwrap(), SimTime::EPOCH).unwrap();
        let views = ViewStore::with_default_ttl();
        let udos = UdoRegistry::with_builtins();

        let plan = PlanBuilder::scan(&cat, "facts")
            .unwrap()
            .filter(col("v").gt(lit(1.0)))
            .unwrap()
            .join(PlanBuilder::scan(&cat, "dim").unwrap(), &[("k", "d_id")], JoinKind::Left)
            .unwrap()
            .aggregate(
                vec![(col("tag"), "tag")],
                vec![
                    AggExpr::new(AggFunc::Sum, col("v"), "sv"),
                    AggExpr::new(AggFunc::Min, col("w"), "mw"),
                    AggExpr::count_star("n"),
                ],
            )
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&plan, &cat);
        for vectorized in [true, false] {
            let mono = exec_chunked(&physical, &model, &cat, &views, &udos, usize::MAX, vectorized);
            assert!(mono.num_rows() > 0);
            for chunk_size in [1, 3, 7, 50, 2048] {
                let chunked =
                    exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, vectorized);
                assert_byte_identical(
                    &chunked,
                    &mono,
                    &format!("chunk {chunk_size} vectorized {vectorized}"),
                );
            }
        }
    }

    /// A predicate that wipes out entire chunks must not disturb
    /// reassembly: empty chunks concatenate away.
    #[test]
    fn fully_masked_chunks_reassemble_cleanly() {
        let (cat, views, udos) = setup();
        // qty == i % 5: rows 0..50 with qty < 100 all pass, but qty > 3
        // keeps 20 of 100 rows in bursts, leaving many chunks empty at
        // chunk size 3.
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(3)))
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&plan, &cat);
        let mono = exec_chunked(&physical, &model, &cat, &views, &udos, usize::MAX, true);
        assert_eq!(mono.num_rows(), 20);
        for chunk_size in [1, 3, 5, 99] {
            let chunked = exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, true);
            assert_byte_identical(&chunked, &mono, &format!("chunk {chunk_size}"));
        }
        // A predicate no row satisfies: every chunk comes back empty.
        let none = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(100)))
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&none, &cat);
        for chunk_size in [1, 7, usize::MAX] {
            let out = exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, true);
            assert_eq!(out.num_rows(), 0, "chunk {chunk_size}");
            assert_eq!(out.num_columns(), 3);
        }
    }

    /// Chunks whose join/group keys are entirely NULL stream through the
    /// hash-join probe and the aggregate without producing matches or
    /// spurious groups — and stay byte-identical to monolithic execution.
    #[test]
    fn all_null_key_chunks_through_join_and_aggregate() {
        let mut cat = DatasetCatalog::new();
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("x", DataType::Int)])
                .unwrap()
                .into_ref();
        // Rows 4..12 (two whole chunks at size 4) carry NULL keys.
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                let key = if (4..12).contains(&i) { Value::Null } else { Value::Int(i % 3) };
                vec![key, Value::Int(i)]
            })
            .collect();
        cat.register("t", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let dim =
            Schema::new(vec![Field::new("d", DataType::Int), Field::new("lbl", DataType::Str)])
                .unwrap()
                .into_ref();
        let drows: Vec<Vec<Value>> =
            (0..3).map(|i| vec![Value::Int(i), Value::Str(format!("d{i}"))]).collect();
        cat.register("dim", Table::from_rows(dim, &drows).unwrap(), SimTime::EPOCH).unwrap();
        let views = ViewStore::with_default_ttl();
        let udos = UdoRegistry::with_builtins();

        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::Semi] {
            let plan = PlanBuilder::scan(&cat, "t")
                .unwrap()
                .join(PlanBuilder::scan(&cat, "dim").unwrap(), &[("k", "d")], kind)
                .unwrap()
                .build();
            let (physical, model) = optimize_physical(&plan, &cat);
            let mono = exec_chunked(&physical, &model, &cat, &views, &udos, usize::MAX, true);
            for chunk_size in [1, 4, 6] {
                let chunked =
                    exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, true);
                assert_byte_identical(&chunked, &mono, &format!("{kind:?} chunk {chunk_size}"));
            }
            // NULL keys never match: inner/semi drop them, left pads.
            match kind {
                JoinKind::Inner | JoinKind::Semi => assert_eq!(mono.num_rows(), 12),
                _ => assert_eq!(mono.num_rows(), 20),
            }
        }

        let agg = PlanBuilder::scan(&cat, "t")
            .unwrap()
            .aggregate(vec![(col("k"), "k")], vec![AggExpr::new(AggFunc::Sum, col("x"), "sx")])
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&agg, &cat);
        let mono = exec_chunked(&physical, &model, &cat, &views, &udos, usize::MAX, true);
        // Groups: NULL, 0, 1, 2 — all NULL keys collapse into one group.
        assert_eq!(mono.num_rows(), 4);
        for chunk_size in [1, 4, 6] {
            let chunked = exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, true);
            assert_byte_identical(&chunked, &mono, &format!("agg chunk {chunk_size}"));
        }
    }

    /// Nondeterministic expressions collapse to a single chunk and advance
    /// the shared per-row counter in monolithic order — the result is the
    /// same at every configured chunk size.
    #[test]
    fn nondeterministic_exprs_never_chunk() {
        let (cat, views, udos) = setup();
        let rand = ScalarExpr::Func { func: crate::expr::FuncKind::RandomNext, args: vec![] };
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .project(vec![(col("s_cust"), "c"), (rand, "r")])
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&plan, &cat);
        let mono = exec_chunked(&physical, &model, &cat, &views, &udos, usize::MAX, true);
        for chunk_size in [1, 7, 64] {
            let chunked = exec_chunked(&physical, &model, &cat, &views, &udos, chunk_size, true);
            assert_byte_identical(&chunked, &mono, &format!("nd chunk {chunk_size}"));
        }
        // Sanity: the column really is nondeterministic per row.
        let r_idx = mono.schema().index_of("r").unwrap();
        let distinct: std::collections::HashSet<String> =
            (0..mono.num_rows()).map(|i| format!("{:?}", mono.column(r_idx).value(i))).collect();
        assert!(distinct.len() > 1, "RANDOM_NEXT must vary across rows");
    }

    /// The morsel runner really receives one task per chunk (the tentpole's
    /// parallelism seam): a counting runner observes the fan-out.
    #[test]
    fn morsel_runner_sees_one_task_per_chunk() {
        struct CountingRunner(std::sync::atomic::AtomicUsize);
        impl MorselRunner for CountingRunner {
            fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
                self.0.fetch_add(tasks, std::sync::atomic::Ordering::Relaxed);
                for i in 0..tasks {
                    task(i);
                }
            }
        }
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(0)))
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&plan, &cat);
        let runner = Arc::new(CountingRunner(std::sync::atomic::AtomicUsize::new(0)));
        let mut ctx =
            ExecContext::new(&cat, &views, &udos, SimTime::EPOCH).with_chunking(30, runner.clone());
        let out = execute(&physical, &mut ctx, &model).unwrap();
        assert_eq!(out.table.num_rows(), 80);
        // 100 rows at chunk size 30 → 4 morsels through the runner.
        assert_eq!(runner.0.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    /// Minimal in-memory `OpStateSource` for executor-level tests: always
    /// grants the claim on a miss, keeps published entries forever.
    #[derive(Debug, Default)]
    struct MemOpStates {
        entries: std::sync::Mutex<std::collections::HashMap<Sig128, Arc<OpStateEntry>>>,
        abandoned: std::sync::atomic::AtomicU64,
    }

    impl OpStateSource for MemOpStates {
        fn acquire(&self, key: Sig128) -> OpStateAcquire {
            match self.entries.lock().unwrap().get(&key) {
                Some(e) => OpStateAcquire::Hit(e.clone()),
                None => OpStateAcquire::Build { claimed: true },
            }
        }
        fn publish(&self, key: Sig128, entry: OpStateEntry) {
            self.entries.lock().unwrap().insert(key, Arc::new(entry));
        }
        fn abandon(&self, _key: Sig128) {
            self.abandoned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn is_warm(&self, key: Sig128) -> bool {
            self.entries.lock().unwrap().contains_key(&key)
        }
    }

    fn exec_with_states(
        physical: &PhysicalPlan,
        model: &CostModel,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
        states: Option<&dyn OpStateSource>,
    ) -> Result<ExecOutcome> {
        let mut ctx = ExecContext::new(cat, views, udos, SimTime::EPOCH)
            .with_chunking(16, Arc::new(SerialRunner));
        ctx.op_states = states;
        execute(physical, &mut ctx, model)
    }

    fn force_hash(p: &PhysicalPlan) -> PhysicalPlan {
        match p.clone() {
            PhysicalPlan::Join { kind, on, left, right, est, partitions, swapped, .. } => {
                PhysicalPlan::Join {
                    algo: JoinAlgo::Hash,
                    kind,
                    on,
                    left: Box::new(force_hash(&left)),
                    right: Box::new(force_hash(&right)),
                    est,
                    partitions,
                    swapped,
                }
            }
            other => other,
        }
    }

    #[test]
    fn join_build_state_is_reused_across_executions() {
        let (cat, views, udos) = setup();
        let plan = join_plan(&cat, JoinKind::Inner);
        let (physical, model) = optimize_physical(&plan, &cat);
        let physical = force_hash(&physical);

        let states = MemOpStates::default();
        let cold = exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states)).unwrap();
        assert_eq!(cold.metrics.op_state_hits, 0);
        assert_eq!(cold.metrics.op_state_misses, 1);
        assert_eq!(cold.metrics.op_state_published, 1);

        let warm = exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states)).unwrap();
        assert_eq!(warm.metrics.op_state_hits, 1);
        assert_eq!(warm.metrics.op_state_published, 0);
        assert!(warm.metrics.op_state_work_avoided > 0.0, "hit must credit the skipped build");

        // The tentpole invariant: the cache never moves bytes.
        let off = exec_with_states(&physical, &model, &cat, &views, &udos, None).unwrap();
        assert_byte_identical(&warm.table, &off.table, "hash join warm vs cache-off");
        assert_byte_identical(&cold.table, &off.table, "hash join cold vs cache-off");

        // The skipped build side still yields placeholder profiles, so the
        // stage builder's 1:1 plan/profile zip survives a hit.
        assert_eq!(warm.metrics.op_profiles.len(), off.metrics.op_profiles.len());
        let kinds = |m: &ExecMetrics| m.op_profiles.iter().map(|p| p.kind).collect::<Vec<_>>();
        assert_eq!(kinds(&warm.metrics), kinds(&off.metrics));
        // And the warm run did measurably less work.
        assert!(warm.metrics.total_work < off.metrics.total_work);
    }

    #[test]
    fn aggregate_and_sort_states_are_reused() {
        let (cat, views, udos) = setup();
        let agg = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(
                vec![(col("s_cust"), "c")],
                vec![AggExpr::new(AggFunc::Sum, col("qty"), "sq")],
            )
            .unwrap()
            .build();
        let sort =
            PlanBuilder::scan(&cat, "sales").unwrap().sort(&[("price", false)]).unwrap().build();
        for plan in [agg, sort] {
            let (physical, model) = optimize_physical(&plan, &cat);
            let states = MemOpStates::default();
            let cold =
                exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states)).unwrap();
            assert_eq!(cold.metrics.op_state_published, 1);
            let warm =
                exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states)).unwrap();
            assert_eq!(warm.metrics.op_state_hits, 1);
            let off = exec_with_states(&physical, &model, &cat, &views, &udos, None).unwrap();
            assert_byte_identical(&warm.table, &off.table, "state restore vs cache-off");
            assert_eq!(warm.metrics.op_profiles.len(), off.metrics.op_profiles.len());
        }
    }

    /// A hit for a stale plan must raise the exact error the cache-off
    /// execution would: the entry key pins the old guid, but the plan is
    /// stale either way — the cache must not mask that.
    #[test]
    fn stale_plan_hit_raises_the_same_error_as_cache_off() {
        let (mut cat, views, udos) = setup();
        let agg = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(
                vec![(col("s_cust"), "c")],
                vec![AggExpr::new(AggFunc::Sum, col("qty"), "sq")],
            )
            .unwrap()
            .build();
        let (physical, model) = optimize_physical(&agg, &cat);
        let states = MemOpStates::default();
        exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states)).unwrap();

        // Rotate the input under the already-compiled plan.
        let id = cat.id_of("sales").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();

        let err_off =
            exec_with_states(&physical, &model, &cat, &views, &udos, None).unwrap_err().to_string();
        let err_on = exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states))
            .unwrap_err()
            .to_string();
        assert!(err_off.contains("stale plan"), "baseline error: {err_off}");
        assert_eq!(err_on, err_off, "cache-on must surface the identical stale-plan error");
    }

    /// A failed build under a held claim abandons the key instead of
    /// leaving waiters stuck — observed through the test source's counter.
    #[test]
    fn failed_build_abandons_the_claim() {
        let (mut cat, views, udos) = setup();
        let join = join_plan(&cat, JoinKind::Inner);
        let (physical, model) = optimize_physical(&join, &cat);
        let physical = force_hash(&physical);
        // Rotate only the build (right) side so the probe-side scan
        // succeeds and the failure happens while the claim is held.
        fn build_side_dataset(p: &PhysicalPlan) -> Option<String> {
            if let PhysicalPlan::Join { right, .. } = p {
                let mut node: &PhysicalPlan = right;
                loop {
                    if let PhysicalPlan::TableScan { dataset, .. } = node {
                        return Some(dataset.clone());
                    }
                    node = *node.children().first()?;
                }
            }
            p.children().iter().find_map(|c| build_side_dataset(c))
        }
        let build_ds = build_side_dataset(&physical).unwrap();
        let id = cat.id_of(&build_ds).unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        let states = MemOpStates::default();
        let err = exec_with_states(&physical, &model, &cat, &views, &udos, Some(&states))
            .unwrap_err()
            .to_string();
        assert!(err.contains("stale plan"), "unexpected error: {err}");
        assert!(states.entries.lock().unwrap().is_empty(), "nothing published");
        assert!(
            states.abandoned.load(std::sync::atomic::Ordering::Relaxed) >= 1,
            "claim must be released on failure"
        );
    }
}
