//! Single-node vectorized executor.
//!
//! Executes physical plans over the in-memory catalog, producing the result
//! table plus the runtime telemetry the rest of the system feeds on:
//!
//! * per-operator **work units** (cost-model formulas charged on *actual*
//!   row/byte counts) — the cluster simulator turns these into
//!   container-seconds;
//! * **input bytes** (paper Fig. 7b) and **total data read** including
//!   intermediates (Fig. 7c);
//! * executed **join-algorithm counts** (Fig. 9);
//! * **pending views** captured by spool operators, to be sealed by the job
//!   manager (early sealing happens in the cluster layer).

mod keys;

use crate::cost::CostModel;
use crate::expr::eval::{eval, eval_predicate, EvalCtx};
use crate::expr::{AggExpr, AggFunc};
use crate::obs::ObsSink;
use crate::physical::{JoinAlgo, JoinAlgoCounts, PhysicalPlan};
use crate::plan::JoinKind;
use crate::udo::UdoRegistry;
use cv_common::hash::Sig128;
use cv_common::ids::VersionGuid;
use cv_common::{CvError, Result, SimTime};
use cv_data::catalog::DatasetCatalog;
use cv_data::column::{Column, ColumnBuilder, ColumnData};
use cv_data::schema::SchemaRef;
use cv_data::table::Table;
use cv_data::value::Value;
use cv_data::viewstore::ViewSource;
use keys::KeyCols;
use std::collections::HashMap;

/// Execution context: read access to storage plus the evaluation state.
///
/// Views come in through the [`ViewSource`] trait object so the same
/// executor runs against a plain `ViewStore`, the service layer's sharded
/// store, or a pipelining wrapper over in-flight materializations.
pub struct ExecContext<'a> {
    pub catalog: &'a DatasetCatalog,
    pub views: &'a dyn ViewSource,
    pub udos: &'a UdoRegistry,
    pub now: SimTime,
    pub eval: EvalCtx,
    /// Per-operator observability hooks; `None` keeps the hot path free of
    /// timing calls entirely (a single branch per operator).
    pub obs: Option<&'a dyn ObsSink>,
}

impl<'a> ExecContext<'a> {
    pub fn new(
        catalog: &'a DatasetCatalog,
        views: &'a dyn ViewSource,
        udos: &'a UdoRegistry,
        now: SimTime,
    ) -> ExecContext<'a> {
        let eval = EvalCtx::new((now.seconds() / 86_400.0) as i32);
        ExecContext { catalog, views, udos, now, eval, obs: None }
    }

    pub fn with_obs(mut self, obs: &'a dyn ObsSink) -> ExecContext<'a> {
        self.obs = Some(obs);
        self
    }
}

/// Profile of one executed operator.
#[derive(Clone, Debug)]
pub struct OpProfile {
    pub kind: &'static str,
    pub rows_out: u64,
    pub bytes_out: u64,
    pub work: f64,
    pub partitions: usize,
    /// Set for spool operators: the view being materialized.
    pub spool_sig: Option<Sig128>,
}

/// Aggregate runtime metrics of one job execution.
#[derive(Clone, Debug, Default)]
pub struct ExecMetrics {
    /// Bytes read from base datasets (paper Fig. 7b "input size").
    pub input_bytes: u64,
    /// Bytes read from materialized views.
    pub view_bytes_read: u64,
    /// All bytes flowing into operators, incl. intermediates (Fig. 7c).
    pub data_read_bytes: u64,
    /// Bytes written by spools to the view store.
    pub bytes_written_views: u64,
    pub rows_out: u64,
    /// Total work units (≈ container-seconds at unit speed).
    pub total_work: f64,
    pub join_algos: JoinAlgoCounts,
    pub op_profiles: Vec<OpProfile>,
    /// ViewScans that degraded to recomputing their original subexpression
    /// because the view was missing, corrupt, or failed to read.
    pub fallbacks_recompute: u64,
    /// Injected storage read failures observed at ViewScans.
    pub view_read_failures: u64,
    /// Checksum mismatches (torn writes) observed at ViewScans.
    pub view_corruptions: u64,
    /// Views that expired between optimizer match and executor read.
    pub view_expiry_races: u64,
    /// View reads served cold (pages faulted in from disk rather than the
    /// store's buffer pool). Always 0 for in-memory stores.
    pub view_cold_reads: u64,
    /// Signatures to quarantine after this execution: every read-side
    /// failure lands here; the driver denylists them in the view store and
    /// the insights service.
    pub quarantined_sigs: Vec<Sig128>,
}

/// A view captured by a spool, not yet sealed into the store.
#[derive(Clone, Debug)]
pub struct PendingView {
    pub sig: Sig128,
    pub recurring_sig: Sig128,
    pub input_guids: Vec<VersionGuid>,
    pub schema: SchemaRef,
    pub data: Table,
    /// Work units the producing subtree cost — the "accurate statistics"
    /// stored with the view.
    pub production_work: f64,
    /// Work of the spool write itself (materialization overhead).
    pub write_work: f64,
}

/// Result of executing one physical plan.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    pub table: Table,
    pub metrics: ExecMetrics,
    pub pending_views: Vec<PendingView>,
}

/// Execute a physical plan.
pub fn execute(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
) -> Result<ExecOutcome> {
    let mut metrics = ExecMetrics::default();
    let mut pending = Vec::new();
    let table = exec_node(plan, ctx, model, &mut metrics, &mut pending)?;
    metrics.rows_out = table.num_rows() as u64;
    Ok(ExecOutcome { table, metrics, pending_views: pending })
}

fn record(
    metrics: &mut ExecMetrics,
    plan: &PhysicalPlan,
    out: &Table,
    work: f64,
    spool_sig: Option<Sig128>,
) {
    metrics.total_work += work;
    metrics.op_profiles.push(OpProfile {
        kind: plan.kind_name(),
        rows_out: out.num_rows() as u64,
        bytes_out: out.byte_size(),
        work,
        partitions: plan.partitions(),
        spool_sig,
    });
}

/// Dispatch one operator, emitting [`ObsSink`] events around the recursion
/// when a sink is installed. `op_started` fires preorder and `op_finished`
/// postorder, so a sink that maps them onto span begin/end reconstructs the
/// exact plan-tree nesting. With `obs: None` this is a single branch — no
/// clock reads, no virtual calls.
fn exec_node(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
    metrics: &mut ExecMetrics,
    pending: &mut Vec<PendingView>,
) -> Result<Table> {
    let Some(obs) = ctx.obs else {
        return exec_node_inner(plan, ctx, model, metrics, pending);
    };
    let kind = plan.kind_name();
    obs.op_started(kind);
    let started = std::time::Instant::now();
    let result = exec_node_inner(plan, ctx, model, metrics, pending);
    let ns = started.elapsed().as_nanos() as u64;
    match &result {
        Ok(table) => obs.op_finished(kind, table.num_rows() as u64, table.byte_size(), ns),
        Err(_) => obs.op_finished(kind, 0, 0, ns),
    }
    result
}

fn exec_node_inner(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext<'_>,
    model: &CostModel,
    metrics: &mut ExecMetrics,
    pending: &mut Vec<PendingView>,
) -> Result<Table> {
    match plan {
        PhysicalPlan::TableScan { dataset, guid, .. } => {
            let ds = ctx.catalog.get_by_name(dataset)?;
            if ds.current_guid() != *guid {
                return Err(CvError::exec(format!(
                    "stale plan: dataset `{dataset}` was regenerated since compilation"
                )));
            }
            let table = ds.data().clone();
            let bytes = table.byte_size();
            metrics.input_bytes += bytes;
            metrics.data_read_bytes += bytes;
            let work = model.scan(bytes as f64).total();
            record(metrics, plan, &table, work, None);
            Ok(table)
        }
        PhysicalPlan::ViewScan { sig, fallback, .. } => {
            use cv_data::viewstore::{ViewReadFault, ViewTemperature};
            match ctx.views.read_view_traced(*sig, ctx.now) {
                Ok(Some((table, temperature))) => {
                    let bytes = table.byte_size();
                    metrics.view_bytes_read += bytes;
                    metrics.data_read_bytes += bytes;
                    let work = match temperature {
                        ViewTemperature::Hot => model.view_scan(bytes as f64).total(),
                        ViewTemperature::Cold => {
                            metrics.view_cold_reads += 1;
                            model.view_scan_cold(bytes as f64).total()
                        }
                    };
                    record(metrics, plan, &table, work, None);
                    return Ok(table);
                }
                // Plain miss (expired, purged, quarantined earlier): fall
                // through to the recompute fallback without quarantining.
                Ok(None) => {}
                // Read-side failure: a view must never fail the job.
                // Quarantine the signature, then degrade to recompute.
                Err(fault) => {
                    match fault {
                        ViewReadFault::ReadError => metrics.view_read_failures += 1,
                        ViewReadFault::Corrupt => metrics.view_corruptions += 1,
                        ViewReadFault::ExpiryRace => metrics.view_expiry_races += 1,
                    }
                    metrics.quarantined_sigs.push(*sig);
                }
            }
            let Some(fb) = fallback else {
                return Err(CvError::exec(format!(
                    "materialized view {} unavailable at execution and the plan \
                     carries no recompute fallback",
                    sig.short()
                )));
            };
            metrics.fallbacks_recompute += 1;
            // Execute the fallback subtree, then collapse its operator
            // profiles into this single ViewScan profile: the stage builder
            // zips profiles 1:1 against the plan tree, which still sees a
            // leaf here. The subtree's work/bytes have already accumulated
            // into the aggregate metrics (the recomputation really ran).
            let profiles_before = metrics.op_profiles.len();
            let table = exec_node(fb, ctx, model, metrics, pending)?;
            let sub_work: f64 = metrics.op_profiles.drain(profiles_before..).map(|p| p.work).sum();
            metrics.op_profiles.push(OpProfile {
                kind: plan.kind_name(),
                rows_out: table.num_rows() as u64,
                bytes_out: table.byte_size(),
                work: sub_work,
                partitions: plan.partitions(),
                spool_sig: None,
            });
            Ok(table)
        }
        PhysicalPlan::Filter { predicate, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let mask = eval_predicate(predicate, &in_table, &mut ctx.eval)?;
            let out = in_table.filter(&mask)?;
            let work = model.filter(in_table.num_rows() as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Project { exprs, schema, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let mut columns = Vec::with_capacity(exprs.len());
            for (e, _) in exprs {
                columns.push(eval(e, &in_table, &mut ctx.eval)?);
            }
            let out = Table::new(schema.clone(), columns)?;
            let work = model.project(in_table.num_rows() as f64, exprs.len()).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Join { algo, kind, on, left, right, .. } => {
            let l = exec_node(left, ctx, model, metrics, pending)?;
            let r = exec_node(right, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += l.byte_size() + r.byte_size();
            let out = match algo {
                JoinAlgo::Hash => hash_join(&l, &r, on, *kind)?,
                JoinAlgo::Merge => merge_join(&l, &r, on, *kind)?,
                JoinAlgo::Loop => loop_join(&l, &r, on, *kind)?,
            };
            match algo {
                JoinAlgo::Hash => metrics.join_algos.hash += 1,
                JoinAlgo::Merge => metrics.join_algos.merge += 1,
                JoinAlgo::Loop => metrics.join_algos.loop_ += 1,
            }
            let (ln, rn) = (l.num_rows() as f64, r.num_rows() as f64);
            let work = match algo {
                JoinAlgo::Hash => model.hash_join(rn, ln),
                JoinAlgo::Merge => model.merge_join(ln, rn),
                JoinAlgo::Loop => model.nested_loop_join(ln, rn),
            }
            .total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::HashAggregate { group_by, aggs, schema, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let out = hash_aggregate(&in_table, group_by, aggs, schema, &mut ctx.eval)?;
            let work = model.hash_aggregate(in_table.num_rows() as f64, aggs.len()).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Sort { keys, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let mut resolved = Vec::with_capacity(keys.len());
            for (name, asc) in keys {
                let idx = in_table
                    .schema()
                    .index_of(name)
                    .ok_or_else(|| CvError::exec(format!("sort key `{name}` missing")))?;
                resolved.push((idx, *asc));
            }
            let out = in_table.sort_by(&resolved)?;
            let work = model.sort(in_table.num_rows() as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Limit { n, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            let keep: Vec<usize> = (0..in_table.num_rows().min(*n)).collect();
            let out = in_table.take(&keep)?;
            record(metrics, plan, &out, model.limit().total(), None);
            Ok(out)
        }
        PhysicalPlan::Union { inputs, .. } => {
            let mut iter = inputs.iter();
            let first = iter.next().ok_or_else(|| CvError::exec("empty UNION"))?;
            let mut acc = exec_node(first, ctx, model, metrics, pending)?;
            for i in iter {
                let t = exec_node(i, ctx, model, metrics, pending)?;
                acc = acc.concat(&t)?;
            }
            metrics.data_read_bytes += acc.byte_size();
            let work = model.union(acc.num_rows() as f64).total();
            record(metrics, plan, &acc, work, None);
            Ok(acc)
        }
        PhysicalPlan::Udo { spec, input, .. } => {
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            metrics.data_read_bytes += in_table.byte_size();
            let out = ctx.udos.apply(spec, &in_table)?;
            let work = model.udo(in_table.num_rows() as f64).total();
            record(metrics, plan, &out, work, None);
            Ok(out)
        }
        PhysicalPlan::Spool { sig, recurring_sig, input_guids, input, .. } => {
            let work_before = metrics.total_work;
            let in_table = exec_node(input, ctx, model, metrics, pending)?;
            let production_work = metrics.total_work - work_before;
            let bytes = in_table.byte_size();
            let write_work = model.spool(in_table.num_rows() as f64, bytes as f64).total();
            metrics.bytes_written_views += bytes;
            pending.push(PendingView {
                sig: *sig,
                recurring_sig: *recurring_sig,
                input_guids: input_guids.clone(),
                schema: in_table.schema().clone(),
                data: in_table.clone(),
                production_work,
                write_work,
            });
            record(metrics, plan, &in_table, write_work, Some(*sig));
            Ok(in_table)
        }
    }
}

/// Hash-table keys coming out of the key kernel are already
/// avalanche-mixed, so the join/aggregate maps use them verbatim instead of
/// paying SipHash per lookup.
#[derive(Default)]
struct PreHashed(u64);

impl std::hash::Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("PreHashed maps only take u64 keys")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type PreHashedMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<PreHashed>>;

/// Row-at-a-time key equality — reference semantics, kept for `loop_join`
/// (the differential baseline the vectorized paths are tested against).
fn keys_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.sql_eq(y) == Some(true))
}

/// Resolve join key columns to indices.
fn resolve_keys(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut l = Vec::with_capacity(on.len());
    let mut r = Vec::with_capacity(on.len());
    for (lk, rk) in on {
        l.push(
            left.schema()
                .index_of(lk)
                .ok_or_else(|| CvError::exec(format!("left join key `{lk}` missing")))?,
        );
        r.push(
            right
                .schema()
                .index_of(rk)
                .ok_or_else(|| CvError::exec(format!("right join key `{rk}` missing")))?,
        );
    }
    Ok((l, r))
}

fn key_row(t: &Table, cols: &[usize], row: usize) -> Vec<Value> {
    cols.iter().map(|&c| t.column(c).value(row)).collect()
}

/// Assemble join output from matched index pairs. `right_idx == usize::MAX`
/// marks a left-outer miss (right side padded with NULLs).
fn build_join_output(
    left: &Table,
    right: &Table,
    pairs: &[(usize, usize)],
    kind: JoinKind,
) -> Result<Table> {
    let left_idx: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
    let right_idx: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
    join_output_from_indices(left, right, &left_idx, &right_idx, kind)
}

fn join_output_from_indices(
    left: &Table,
    right: &Table,
    left_idx: &[usize],
    right_idx: &[usize],
    kind: JoinKind,
) -> Result<Table> {
    let left_part = left.take(left_idx)?;
    if kind == JoinKind::Semi {
        return Ok(left_part);
    }
    // Typed padded gather: `usize::MAX` indices become NULL rows directly,
    // without materializing a copy of the right table first.
    let schema = left.schema().join(right.schema())?.into_ref();
    let mut columns = left_part.columns().to_vec();
    for col in right.columns() {
        columns.push(col.take_padded(right_idx, usize::MAX));
    }
    Table::new(schema, columns)
}

fn hash_join(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
    kind: JoinKind,
) -> Result<Table> {
    let (lk, rk) = resolve_keys(left, right, on)?;
    let lkeys = KeyCols::from_table(left, &lk);
    let rkeys = KeyCols::from_table(right, &rk);
    // Hash both sides column-wise in one pass, then build on the right.
    let (rh, rvalid) = rkeys.join_hashes();
    let mut ht: PreHashedMap<Vec<usize>> = PreHashedMap::default();
    for row in 0..right.num_rows() {
        if rvalid[row] {
            ht.entry(rh[row]).or_default().push(row);
        }
    }
    let (lh, lvalid) = lkeys.join_hashes();
    // Matched row ids go straight into the two gather lists (same order a
    // pair list would have: left row ascending, candidates ascending).
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    for lrow in 0..left.num_rows() {
        let mut matched = false;
        if lvalid[lrow] {
            if let Some(cands) = ht.get(&lh[lrow]) {
                for &rrow in cands {
                    if lkeys.rows_eq_sql(lrow, &rkeys, rrow) {
                        match kind {
                            JoinKind::Semi => {
                                matched = true;
                                break;
                            }
                            _ => {
                                left_idx.push(lrow);
                                right_idx.push(rrow);
                                matched = true;
                            }
                        }
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => {
                left_idx.push(lrow);
                right_idx.push(usize::MAX);
            }
            JoinKind::Left if !matched => {
                left_idx.push(lrow);
                right_idx.push(usize::MAX);
            }
            _ => {}
        }
    }
    join_output_from_indices(left, right, &left_idx, &right_idx, kind)
}

fn loop_join(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
    kind: JoinKind,
) -> Result<Table> {
    let (lk, rk) = resolve_keys(left, right, on)?;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for lrow in 0..left.num_rows() {
        let lkey = key_row(left, &lk, lrow);
        let mut matched = false;
        for rrow in 0..right.num_rows() {
            if keys_equal(&lkey, &key_row(right, &rk, rrow)) {
                match kind {
                    JoinKind::Semi => {
                        matched = true;
                        break;
                    }
                    _ => {
                        pairs.push((lrow, rrow));
                        matched = true;
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => pairs.push((lrow, usize::MAX)),
            JoinKind::Left if !matched => pairs.push((lrow, usize::MAX)),
            _ => {}
        }
    }
    build_join_output(left, right, &pairs, kind)
}

fn merge_join(
    left: &Table,
    right: &Table,
    on: &[(String, String)],
    kind: JoinKind,
) -> Result<Table> {
    let (lk, rk) = resolve_keys(left, right, on)?;
    let lkeys = KeyCols::from_table(left, &lk);
    let rkeys = KeyCols::from_table(right, &rk);
    // Sort both sides by key; keep a mapping back to original row ids so the
    // output is assembled against the *original* tables.
    let lsorted: Vec<usize> = sorted_indices(left, &lk);
    let rsorted: Vec<usize> = sorted_indices(right, &rk);

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lsorted.len() {
        let lrow0 = lsorted[i];
        if lkeys.has_null(lrow0) {
            // NULL keys never match.
            if kind != JoinKind::Inner && kind != JoinKind::Semi {
                pairs.push((lrow0, usize::MAX));
            }
            i += 1;
            continue;
        }
        // Advance right to the first key ≥ the current left key.
        while j < rsorted.len()
            && (rkeys.has_null(rsorted[j]) || rkeys.cmp_rows(rsorted[j], &lkeys, lrow0).is_lt())
        {
            j += 1;
        }
        // Collect the right group equal to the current left key.
        let mut j_end = j;
        while j_end < rsorted.len() && rkeys.cmp_rows(rsorted[j_end], &lkeys, lrow0).is_eq() {
            j_end += 1;
        }
        // Emit for every left row in this equal group.
        let mut i_end = i;
        while i_end < lsorted.len() && lkeys.cmp_rows(lsorted[i_end], &lkeys, lrow0).is_eq() {
            i_end += 1;
        }
        for &lrow in &lsorted[i..i_end] {
            if j_end > j {
                match kind {
                    JoinKind::Semi => pairs.push((lrow, usize::MAX)),
                    _ => {
                        for &rrow in &rsorted[j..j_end] {
                            pairs.push((lrow, rrow));
                        }
                    }
                }
            } else if kind == JoinKind::Left {
                pairs.push((lrow, usize::MAX));
            }
        }
        i = i_end;
    }
    // Keep output order deterministic (by left row id, then right row id).
    pairs.sort_unstable();
    build_join_output(left, right, &pairs, kind)
}

fn sorted_indices(t: &Table, keys: &[usize]) -> Vec<usize> {
    let kc = KeyCols::from_table(t, keys);
    let mut idx: Vec<usize> = (0..t.num_rows()).collect();
    idx.sort_by(|&a, &b| kc.cmp_rows(a, &kc, b));
    idx
}

/// Numeric widening matching `Value::as_f64` (Int, Float, Date → f64).
#[inline]
fn num_at(col: &Column, row: usize) -> Option<f64> {
    match col.data() {
        ColumnData::Int(v) => Some(v[row] as f64),
        ColumnData::Float(v) => Some(v[row]),
        ColumnData::Date(v) => Some(v[row] as f64),
        _ => None,
    }
}

/// One aggregate accumulator. Updates read typed cells straight off the
/// argument column — no per-row [`Value`] boxing, no string rendering.
enum Acc {
    Count(i64),
    /// DISTINCT keyed on typed value hashes from the key-hash kernel, not
    /// on string rendering (which conflated distinct values that happen to
    /// render alike).
    Distinct(std::collections::HashSet<u64>),
    /// SUM over INT accumulates in checked i64 — overflow is an execution
    /// error, not a silent drift through f64 rounding.
    SumInt {
        total: i64,
        any: bool,
    },
    SumFloat {
        total: f64,
        any: bool,
        int_out: bool,
    },
    MinRow(Option<usize>),
    MaxRow(Option<usize>),
    Avg {
        total: f64,
        count: i64,
    },
}

impl Acc {
    fn new(func: AggFunc, int_out: bool, arg_dtype: Option<cv_data::value::DataType>) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::Distinct(Default::default()),
            AggFunc::Sum => {
                if int_out && arg_dtype == Some(cv_data::value::DataType::Int) {
                    Acc::SumInt { total: 0, any: false }
                } else {
                    Acc::SumFloat { total: 0.0, any: false, int_out }
                }
            }
            AggFunc::Min => Acc::MinRow(None),
            AggFunc::Max => Acc::MaxRow(None),
            AggFunc::Avg => Acc::Avg { total: 0.0, count: 0 },
        }
    }

    fn update(&mut self, arg: Option<&Column>, row: usize) -> Result<()> {
        match self {
            Acc::Count(c) => {
                // COUNT(*) gets None arg (count every row); COUNT(x) counts
                // non-null x.
                match arg {
                    None => *c += 1,
                    Some(col) if !col.is_null(row) => *c += 1,
                    _ => {}
                }
            }
            Acc::Distinct(set) => {
                if let Some(col) = arg {
                    if !col.is_null(row) {
                        set.insert(keys::value_hash(col, row));
                    }
                }
            }
            Acc::SumInt { total, any } => {
                if let Some(col) = arg {
                    if !col.is_null(row) {
                        *total = total
                            .checked_add(col.ints()[row])
                            .ok_or_else(|| CvError::exec("SUM(INT) overflow"))?;
                        *any = true;
                    }
                }
            }
            Acc::SumFloat { total, any, .. } => {
                if let Some(col) = arg {
                    if !col.is_null(row) {
                        if let Some(f) = num_at(col, row) {
                            *total += f;
                            *any = true;
                        }
                    }
                }
            }
            Acc::MinRow(best) => {
                if let Some(col) = arg {
                    if !col.is_null(row)
                        && best.is_none_or(|b| keys::cmp_cells(col, row, col, b).is_lt())
                    {
                        *best = Some(row);
                    }
                }
            }
            Acc::MaxRow(best) => {
                if let Some(col) = arg {
                    if !col.is_null(row)
                        && best.is_none_or(|b| keys::cmp_cells(col, row, col, b).is_gt())
                    {
                        *best = Some(row);
                    }
                }
            }
            Acc::Avg { total, count } => {
                if let Some(col) = arg {
                    if !col.is_null(row) {
                        if let Some(f) = num_at(col, row) {
                            *total += f;
                            *count += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self, arg: Option<&Column>) -> Value {
        match self {
            Acc::Count(c) => Value::Int(c),
            Acc::Distinct(set) => Value::Int(set.len() as i64),
            Acc::SumInt { total, any } => {
                if any {
                    Value::Int(total)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat { total, any, int_out } => {
                if !any {
                    Value::Null
                } else if int_out {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            Acc::MinRow(best) | Acc::MaxRow(best) => match (best, arg) {
                (Some(row), Some(col)) => col.value(row),
                _ => Value::Null,
            },
            Acc::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
        }
    }
}

fn hash_aggregate(
    input: &Table,
    group_by: &[(crate::expr::ScalarExpr, String)],
    aggs: &[AggExpr],
    schema: &SchemaRef,
    eval_ctx: &mut EvalCtx,
) -> Result<Table> {
    // Evaluate group keys and aggregate arguments once, columnar.
    let key_cols: Result<Vec<_>> = group_by.iter().map(|(e, _)| eval(e, input, eval_ctx)).collect();
    let key_cols = key_cols?;
    let arg_cols: Result<Vec<Option<_>>> =
        aggs.iter().map(|a| a.arg.as_ref().map(|e| eval(e, input, eval_ctx)).transpose()).collect();
    let arg_cols = arg_cols?;

    // SUM over an INT input produces INT; detect from the output schema.
    let int_sum: Vec<bool> = aggs
        .iter()
        .enumerate()
        .map(|(i, _)| schema.field(group_by.len() + i).dtype == cv_data::value::DataType::Int)
        .collect();

    // Groups remember their first input row; key output columns are a
    // typed gather over those rows at the end — no per-row key boxing.
    struct Group {
        first_row: usize,
        accs: Vec<Acc>,
    }
    let new_accs = |aggs: &[AggExpr], arg_cols: &[Option<Column>]| -> Vec<Acc> {
        aggs.iter()
            .enumerate()
            .map(|(i, a)| Acc::new(a.func, int_sum[i], arg_cols[i].as_ref().map(|c| c.dtype())))
            .collect()
    };
    let mut groups: Vec<Group> = Vec::new();
    let mut index: PreHashedMap<Vec<usize>> = PreHashedMap::default();

    let n = input.num_rows();
    let key_refs = KeyCols::new(key_cols.iter().collect(), n);
    let hashes = key_refs.group_hashes();
    for (row, &h) in hashes.iter().enumerate() {
        let slot = index.entry(h).or_default();
        let gid = slot
            .iter()
            .copied()
            .find(|&g| key_refs.rows_eq_group(groups[g].first_row, &key_refs, row))
            .unwrap_or_else(|| {
                let gid = groups.len();
                groups.push(Group { first_row: row, accs: new_accs(aggs, &arg_cols) });
                slot.push(gid);
                gid
            });
        for (acc, arg) in groups[gid].accs.iter_mut().zip(&arg_cols) {
            acc.update(arg.as_ref(), row)?;
        }
    }

    // Global aggregate over empty input still yields one group.
    if groups.is_empty() && group_by.is_empty() {
        groups.push(Group { first_row: 0, accs: new_accs(aggs, &arg_cols) });
    }

    let first_rows: Vec<usize> = groups.iter().map(|g| g.first_row).collect();
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for c in &key_cols {
        columns.push(c.take(&first_rows).normalize_validity());
    }
    let mut builders: Vec<ColumnBuilder> = (0..aggs.len())
        .map(|i| ColumnBuilder::with_capacity(schema.field(group_by.len() + i).dtype, groups.len()))
        .collect();
    for g in groups {
        for ((acc, b), arg) in g.accs.into_iter().zip(&mut builders).zip(&arg_cols) {
            b.push(&acc.finish(arg.as_ref()))?;
        }
    }
    columns.extend(builders.into_iter().map(ColumnBuilder::finish));
    let out = Table::new(schema.clone(), columns)?;
    if group_by.is_empty() {
        return Ok(out);
    }
    // Canonical output order: sort by the group-key columns ascending.
    // First-encounter order is an artifact of input row order; sorting
    // makes aggregate output a pure function of the input *multiset*, so
    // an incrementally maintained aggregate (cv-ivm) emitted from group
    // state is byte-identical to inline execution.
    let keys: Vec<(usize, bool)> = (0..group_by.len()).map(|i| (i, true)).collect();
    out.sort_by(&keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::optimizer::{AlwaysGrant, Optimizer, OptimizerConfig, ReuseContext};
    use crate::plan::{LogicalPlan, PlanBuilder};
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;
    use cv_data::viewstore::ViewStore;
    use std::sync::Arc;

    fn setup() -> (DatasetCatalog, ViewStore, UdoRegistry) {
        let mut cat = DatasetCatalog::new();
        let sales = Schema::new(vec![
            Field::new("s_cust", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("qty", DataType::Int),
        ])
        .unwrap()
        .into_ref();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![Value::Int(i % 10), Value::Float((i % 7) as f64 + 0.5), Value::Int(i % 5)]
            })
            .collect();
        cat.register("sales", Table::from_rows(sales, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let cust =
            Schema::new(vec![Field::new("c_id", DataType::Int), Field::new("seg", DataType::Str)])
                .unwrap()
                .into_ref();
        let crows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![Value::Int(i), Value::Str(if i % 2 == 0 { "asia" } else { "emea" }.into())]
            })
            .collect();
        cat.register("customer", Table::from_rows(cust, &crows).unwrap(), SimTime::EPOCH).unwrap();
        (cat, ViewStore::with_default_ttl(), UdoRegistry::with_builtins())
    }

    fn try_run(
        plan: &Arc<LogicalPlan>,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
    ) -> Result<ExecOutcome> {
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let out = opt.optimize(plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap();
        let mut ctx = ExecContext::new(cat, views, udos, SimTime::EPOCH);
        execute(&out.physical, &mut ctx, &opt.cfg.cost)
    }

    fn run(
        plan: &Arc<LogicalPlan>,
        cat: &DatasetCatalog,
        views: &ViewStore,
        udos: &UdoRegistry,
    ) -> ExecOutcome {
        try_run(plan, cat, views, udos).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .project(vec![(col("s_cust"), "c"), (col("price").mul(lit(2.0)), "p2")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        // qty in {3,4} → 40 of 100 rows.
        assert_eq!(out.table.num_rows(), 40);
        assert_eq!(out.table.schema().names(), vec!["c", "p2"]);
        assert!(out.metrics.input_bytes > 0);
        assert!(out.metrics.total_work > 0.0);
    }

    fn join_plan(cat: &DatasetCatalog, kind: JoinKind) -> Arc<LogicalPlan> {
        PlanBuilder::scan(cat, "sales")
            .unwrap()
            .join(PlanBuilder::scan(cat, "customer").unwrap(), &[("s_cust", "c_id")], kind)
            .unwrap()
            .build()
    }

    #[test]
    fn all_join_algorithms_agree() {
        let (cat, views, udos) = setup();
        let logical = join_plan(&cat, JoinKind::Inner);
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let opt = Optimizer::new(OptimizerConfig::default());
        let physical = opt
            .to_physical(&crate::normalize::normalize(&logical, &opt.cfg.sig).unwrap(), &stats)
            .unwrap();

        // Execute the same join with each algorithm forced.
        fn force(p: &PhysicalPlan, algo: JoinAlgo) -> PhysicalPlan {
            match p.clone() {
                PhysicalPlan::Join { kind, on, left, right, est, partitions, .. } => {
                    PhysicalPlan::Join {
                        algo,
                        kind,
                        on,
                        left: Box::new(force(&left, algo)),
                        right: Box::new(force(&right, algo)),
                        est,
                        partitions,
                    }
                }
                other => other,
            }
        }
        let model = CostModel::default();
        let mut results = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::Loop] {
            let forced = force(&physical, algo);
            let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
            let out = execute(&forced, &mut ctx, &model).unwrap();
            assert_eq!(out.table.num_rows(), 100, "{algo:?} row count");
            results.push(out.table.canonical_rows());
        }
        assert_eq!(results[0], results[1], "hash vs merge");
        assert_eq!(results[0], results[2], "hash vs loop");
    }

    #[test]
    fn left_join_pads_nulls() {
        let (mut cat, views, udos) = setup();
        // Customer table with ids 0..10, sales referencing 0..10 → add a
        // sale with customer id 99 (no match).
        let sales = cat.get_by_name("sales").unwrap().data().clone();
        let extra = Table::from_rows(
            sales.schema().clone(),
            &[vec![Value::Int(99), Value::Float(1.0), Value::Int(1)]],
        )
        .unwrap();
        let id = cat.id_of("sales").unwrap();
        cat.bulk_update(id, sales.concat(&extra).unwrap(), SimTime::EPOCH).unwrap();

        let plan = join_plan(&cat, JoinKind::Left);
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 101);
        let seg_idx = out.table.schema().index_of("seg").unwrap();
        let nulls = (0..out.table.num_rows())
            .filter(|&i| out.table.column(seg_idx).value(i).is_null())
            .count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let (cat, views, udos) = setup();
        let plan = join_plan(&cat, JoinKind::Semi);
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.schema().names(), vec!["s_cust", "price", "qty"]);
        assert_eq!(out.table.num_rows(), 100); // every sale has a customer
    }

    #[test]
    fn aggregation_results() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(
                vec![(col("s_cust"), "cust")],
                vec![
                    AggExpr::new(AggFunc::Sum, col("qty"), "total_qty"),
                    AggExpr::new(AggFunc::Avg, col("price"), "avg_price"),
                    AggExpr::count_star("n"),
                ],
            )
            .unwrap()
            .sort(&[("cust", true)])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 10);
        // Each customer id occurs 10 times.
        let n_idx = out.table.schema().index_of("n").unwrap();
        for i in 0..10 {
            assert_eq!(out.table.column(n_idx).value(i), Value::Int(10));
        }
        // SUM over INT stays INT.
        let tq = out.table.schema().index_of("total_qty").unwrap();
        assert_eq!(out.table.schema().field(tq).dtype, DataType::Int);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(1_000_000)))
            .unwrap()
            .aggregate(
                vec![],
                vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Sum, col("qty"), "s")],
            )
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.table.row(0)[0], Value::Int(0));
        assert!(out.table.row(0)[1].is_null());
    }

    #[test]
    fn count_distinct() {
        let (cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::CountDistinct, col("s_cust"), "d")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.row(0)[0], Value::Int(10));
    }

    #[test]
    fn sum_int_overflow_is_an_error() {
        let (mut cat, views, udos) = setup();
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let rows: Vec<Vec<Value>> = vec![vec![Value::Int(i64::MAX)], vec![Value::Int(1)]];
        cat.register("big", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "big")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("x"), "s")])
            .unwrap()
            .build();
        let err = try_run(&plan, &cat, &views, &udos).unwrap_err();
        assert!(err.to_string().contains("overflow"), "unexpected error: {err}");
    }

    #[test]
    fn count_distinct_uses_typed_equality() {
        let (mut cat, views, udos) = setup();
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]).unwrap().into_ref();
        let vals = [0.0_f64, -0.0, 2.5, f64::NAN, -f64::NAN];
        let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Float(v)]).collect();
        cat.register("fl", Table::from_rows(schema, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "fl")
            .unwrap()
            .aggregate(vec![], vec![AggExpr::new(AggFunc::CountDistinct, col("f"), "d")])
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        // The old string-keyed set counted -0.0 and 0.0 separately; typed
        // hashing collapses the zero signs and all NaN payloads: {0, 2.5, NaN}.
        assert_eq!(out.table.row(0)[0], Value::Int(3));
    }

    #[test]
    fn union_and_limit() {
        let (cat, views, udos) = setup();
        let a = PlanBuilder::scan(&cat, "sales").unwrap();
        let b = PlanBuilder::scan(&cat, "sales").unwrap();
        let plan = a.union(b).unwrap().limit(150).build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 150);
    }

    #[test]
    fn spool_captures_pending_view() {
        let (cat, views, udos) = setup();
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let logical = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .build();
        let normalized = crate::normalize::normalize(&logical, &opt.cfg.sig).unwrap();
        let sig = crate::signature::plan_signature(
            &normalized,
            &opt.cfg.sig,
            crate::signature::SigMode::Strict,
        )
        .unwrap();
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(sig);
        let out = opt.optimize(&logical, &reuse, &stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.built_views, vec![sig]);

        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let exec_out = execute(&out.physical, &mut ctx, &opt.cfg.cost).unwrap();
        assert_eq!(exec_out.pending_views.len(), 1);
        let pv = &exec_out.pending_views[0];
        assert_eq!(pv.sig, sig);
        assert_eq!(pv.data.num_rows(), 40);
        assert!(pv.production_work > 0.0);
        assert!(exec_out.metrics.bytes_written_views > 0);
        // Result identical to the view contents (spool is pass-through).
        assert_eq!(exec_out.table.canonical_rows(), pv.data.canonical_rows());
    }

    #[test]
    fn viewscan_executes_from_store() {
        let (cat, mut views, udos) = setup();
        let (sig, data) = {
            let plan = PlanBuilder::scan(&cat, "sales")
                .unwrap()
                .filter(col("qty").gt(lit(2)))
                .unwrap()
                .build();
            let out = run(&plan, &cat, &views, &udos);
            (Sig128(42), out.table)
        };
        views
            .insert(cv_data::viewstore::MaterializedView {
                strict_sig: sig,
                recurring_sig: sig,
                schema: data.schema().clone(),
                data: data.clone(),
                rows: 0,
                bytes: 0,
                created: SimTime::EPOCH,
                expires: SimTime::EPOCH,
                creator_job: cv_common::ids::JobId(0),
                vc: cv_common::ids::VcId(0),
                input_guids: vec![],
                observed_work: 1.0,
                checksum: 0,
            })
            .unwrap();
        let physical = PhysicalPlan::ViewScan {
            sig,
            schema: data.schema().clone(),
            est: crate::stats::Statistics::accurate(40.0, 100.0),
            partitions: 1,
            fallback: None,
        };
        let model = CostModel::default();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let out = execute(&physical, &mut ctx, &model).unwrap();
        assert_eq!(out.table.canonical_rows(), data.canonical_rows());
        assert!(out.metrics.view_bytes_read > 0);
        assert_eq!(out.metrics.input_bytes, 0);

        // Missing view → execution error.
        let physical2 = PhysicalPlan::ViewScan {
            sig: Sig128(999),
            schema: data.schema().clone(),
            est: crate::stats::Statistics::accurate(1.0, 1.0),
            partitions: 1,
            fallback: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        assert!(execute(&physical2, &mut ctx2, &model).is_err());
    }

    #[test]
    fn viewscan_falls_back_to_recompute_on_read_fault() {
        use cv_common::{FaultPlan, FaultPoint};
        let (cat, mut views, udos) = setup();
        let logical = PlanBuilder::scan(&cat, "sales")
            .unwrap()
            .filter(col("qty").gt(lit(2)))
            .unwrap()
            .build();
        let expected = run(&logical, &cat, &views, &udos).table;

        // Seal a view for the subexpression, then make every read fail.
        views
            .insert(cv_data::viewstore::MaterializedView {
                strict_sig: Sig128(77),
                recurring_sig: Sig128(77),
                schema: expected.schema().clone(),
                data: expected.clone(),
                rows: 0,
                bytes: 0,
                created: SimTime::EPOCH,
                expires: SimTime::EPOCH,
                creator_job: cv_common::ids::JobId(0),
                vc: cv_common::ids::VcId(0),
                input_guids: vec![],
                observed_work: 1.0,
                checksum: 0,
            })
            .unwrap();
        views.set_fault_plan(FaultPlan::seeded(1).with_rate(FaultPoint::ViewRead, 0.9));
        // Under a 0.9 read-fail rate the decision for this sig may still be
        // "serve"; scan seeds until the fault actually fires so the test is
        // deterministic and meaningful.
        let mut seed = 1u64;
        while !views
            .fault_plan()
            .fires(FaultPoint::ViewRead, &[Sig128(77).0 as u64, (Sig128(77).0 >> 64) as u64])
        {
            seed += 1;
            views.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultPoint::ViewRead, 0.9));
        }

        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let fallback = opt.to_physical(&logical, &stats).unwrap();
        let physical = PhysicalPlan::ViewScan {
            sig: Sig128(77),
            schema: expected.schema().clone(),
            est: crate::stats::Statistics::accurate(40.0, 100.0),
            partitions: 1,
            fallback: Some(Box::new(fallback)),
        };
        let model = CostModel::default();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::EPOCH);
        let out = execute(&physical, &mut ctx, &model).unwrap();

        // Correct answer via recomputation, counted as a degradation.
        assert_eq!(out.table.canonical_rows(), expected.canonical_rows());
        assert_eq!(out.metrics.fallbacks_recompute, 1);
        assert_eq!(out.metrics.view_read_failures, 1);
        assert_eq!(out.metrics.quarantined_sigs, vec![Sig128(77)]);
        assert!(out.metrics.input_bytes > 0, "fallback re-read the base table");
        // The fallback subtree collapsed into one ViewScan profile, so the
        // profile list still zips 1:1 with the plan the stage builder sees.
        assert_eq!(out.metrics.op_profiles.len(), 1);
        assert_eq!(out.metrics.op_profiles[0].kind, "ViewScan");
        assert!(out.metrics.op_profiles[0].work > 0.0);
    }

    #[test]
    fn stale_scan_guid_rejected() {
        let (mut cat, views, udos) = setup();
        let plan = PlanBuilder::scan(&cat, "sales").unwrap().build();
        let opt = Optimizer::new(OptimizerConfig::default());
        let stats =
            |name: &str| cat.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
        let out = opt.optimize(&plan, &ReuseContext::empty(), &stats, &mut AlwaysGrant).unwrap();
        // Bulk-update between compile and execute.
        let id = cat.id_of("sales").unwrap();
        let data = cat.get(id).unwrap().data().clone();
        cat.bulk_update(id, data, SimTime::from_days(1.0)).unwrap();
        let mut ctx = ExecContext::new(&cat, &views, &udos, SimTime::from_days(1.0));
        let err = execute(&out.physical, &mut ctx, &opt.cfg.cost).unwrap_err();
        assert!(err.to_string().contains("stale plan"));
    }

    #[test]
    fn udo_in_pipeline() {
        let (mut cat, views, udos) = setup();
        let events = Schema::new(vec![
            Field::new("user_agent", DataType::Str),
            Field::new("ip_hash", DataType::Int),
        ])
        .unwrap()
        .into_ref();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Str(if i % 2 == 0 { "Chrome/1" } else { "Firefox/2" }.into()),
                    Value::Int(i),
                ]
            })
            .collect();
        cat.register("events", Table::from_rows(events, &rows).unwrap(), SimTime::EPOCH).unwrap();
        let plan = PlanBuilder::scan(&cat, "events")
            .unwrap()
            .udo(crate::udo::UdoSpec::new("parse_user_agent"), &udos)
            .unwrap()
            .filter(col("browser").eq(lit("chrome")))
            .unwrap()
            .build();
        let out = run(&plan, &cat, &views, &udos);
        assert_eq!(out.table.num_rows(), 10);
    }

    #[test]
    fn metrics_data_read_exceeds_input() {
        let (cat, views, udos) = setup();
        let plan = join_plan(&cat, JoinKind::Inner);
        let out = run(&plan, &cat, &views, &udos);
        assert!(out.metrics.data_read_bytes >= out.metrics.input_bytes);
        assert_eq!(out.metrics.join_algos.total(), 1);
        assert!(!out.metrics.op_profiles.is_empty());
    }
}
