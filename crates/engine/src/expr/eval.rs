//! Expression evaluation over columnar tables.
//!
//! Evaluation is column-at-a-time: each expression node materializes one
//! output [`Column`] for the whole chunk. Scalar kernels operate on
//! [`Value`]s with SQL ternary-logic null semantics; the same scalar kernels
//! back the constant folder in [`super::fold`], so folding and runtime can
//! never disagree.

use super::{kernels, BinOp, FuncKind, ScalarExpr, UnOp};
use cv_common::hash::StableHasher;
use cv_common::{CvError, Result};
use cv_data::bitmap::Bitmap;
use cv_data::column::{Column, ColumnBuilder};
use cv_data::table::Table;
use cv_data::value::{DataType, Value};

/// Evaluation context: carries the simulated "now" and the counter behind
/// the non-deterministic builtins. Those builtins are *reproducible* given
/// the context (so tests are stable), but they are semantically
/// non-deterministic: the signature layer refuses to sign plans using them
/// (paper §4 "signature correctness").
#[derive(Debug, Clone)]
pub struct EvalCtx {
    /// Simulated current date, days since epoch (returned by `NOW()`).
    pub now_days: i32,
    /// Use the typed vectorized kernels where available (on by default).
    /// Turned off only by differential tests, which compare kernel output
    /// against the scalar reference loops.
    pub vectorized: bool,
    nd_counter: u64,
}

impl EvalCtx {
    pub fn new(now_days: i32) -> EvalCtx {
        EvalCtx { now_days, vectorized: true, nd_counter: 0 }
    }

    fn next_nd(&mut self) -> u64 {
        self.nd_counter = self.nd_counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut h = StableHasher::with_domain("nondeterministic");
        h.write_u64(self.nd_counter);
        h.write_i64(self.now_days as i64);
        h.finish64()
    }
}

impl Default for EvalCtx {
    fn default() -> Self {
        EvalCtx::new(0)
    }
}

/// Evaluate an expression over every row of `table`, producing a column.
pub fn eval(expr: &ScalarExpr, table: &Table, ctx: &mut EvalCtx) -> Result<Column> {
    let n = table.num_rows();
    let out_type = expr.dtype(table.schema())?;
    match expr {
        ScalarExpr::Column(name) => {
            let col = table
                .column_by_name(name)
                .ok_or_else(|| CvError::exec(format!("unknown column `{name}`")))?;
            Ok(col.clone())
        }
        ScalarExpr::Literal(v) | ScalarExpr::Param { value: v, .. } => {
            if ctx.vectorized {
                if let Some(c) = kernels::broadcast(v, out_type, n) {
                    return Ok(c);
                }
            }
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            for _ in 0..n {
                b.push(v)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::Binary { op, left, right } => {
            let l = eval(left, table, ctx)?;
            let r = eval(right, table, ctx)?;
            if ctx.vectorized {
                if let Some(c) = kernels::binary(*op, &l, &r) {
                    return Ok(c);
                }
            }
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            for i in 0..n {
                let v = binary_value(*op, &l.value(i), &r.value(i))?;
                b.push(&v)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::Unary { op, expr } => {
            let c = eval(expr, table, ctx)?;
            if ctx.vectorized {
                if let Some(out) = kernels::unary(*op, &c) {
                    return Ok(out);
                }
            }
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            for i in 0..n {
                let v = unary_value(*op, &c.value(i))?;
                b.push(&v)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::Func { func, args } => {
            let arg_cols: Result<Vec<Column>> = args.iter().map(|a| eval(a, table, ctx)).collect();
            let arg_cols = arg_cols?;
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            let mut row_args: Vec<Value> = Vec::with_capacity(arg_cols.len());
            for i in 0..n {
                row_args.clear();
                for c in &arg_cols {
                    row_args.push(c.value(i));
                }
                let v = func_value(*func, &row_args, ctx)?;
                b.push(&v)?;
            }
            Ok(b.finish())
        }
        ScalarExpr::Case { branches, else_expr } => {
            let when_cols: Result<Vec<Column>> =
                branches.iter().map(|(w, _)| eval(w, table, ctx)).collect();
            let when_cols = when_cols?;
            let then_cols: Result<Vec<Column>> =
                branches.iter().map(|(_, t)| eval(t, table, ctx)).collect();
            let then_cols = then_cols?;
            let else_col = match else_expr {
                Some(e) => Some(eval(e, table, ctx)?),
                None => None,
            };
            if ctx.vectorized {
                if let Some(c) =
                    kernels::case_select(&when_cols, &then_cols, else_col.as_ref(), out_type, n)
                {
                    return Ok(c);
                }
            }
            let mut b = ColumnBuilder::with_capacity(out_type, n);
            'rows: for i in 0..n {
                for (w, t) in when_cols.iter().zip(&then_cols) {
                    if w.value(i).as_bool() == Some(true) {
                        b.push(&t.value(i))?;
                        continue 'rows;
                    }
                }
                match &else_col {
                    Some(e) => b.push(&e.value(i))?,
                    None => b.push_null(),
                }
            }
            Ok(b.finish())
        }
        ScalarExpr::Cast { expr, dtype } => {
            let c = eval(expr, table, ctx)?;
            if ctx.vectorized {
                if let Some(out) = kernels::cast(&c, *dtype) {
                    return Ok(out);
                }
            }
            let mut b = ColumnBuilder::with_capacity(*dtype, n);
            for i in 0..n {
                let v = cast_value(&c.value(i), *dtype)?;
                b.push(&v)?;
            }
            Ok(b.finish())
        }
    }
}

/// Evaluate a predicate into a selection mask; SQL semantics: NULL → false.
/// The mask is a [`Bitmap`] (bit set = row selected) so `Table::filter` can
/// gather word-at-a-time and short-circuit the all-true case.
pub fn eval_predicate(expr: &ScalarExpr, table: &Table, ctx: &mut EvalCtx) -> Result<Bitmap> {
    let c = eval(expr, table, ctx)?;
    if c.dtype() != DataType::Bool {
        return Err(CvError::exec(format!("predicate must be BOOL, got {}", c.dtype())));
    }
    let mask = Bitmap::from_bools(c.bools());
    Ok(match c.validity() {
        Some(v) => mask.and(v),
        None => mask,
    })
}

/// Scalar binary kernel with SQL null propagation (AND/OR use ternary logic).
pub fn binary_value(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => {
            return Ok(match (a.as_bool(), b.as_bool()) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Or => {
            return Ok(match (a.as_bool(), b.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        _ => {}
    }
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = a.total_cmp(b);
        let res = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(res));
    }
    // Arithmetic.
    if let (Value::Date(d), Value::Int(i)) = (a, b) {
        return match op {
            Add => Ok(Value::Date(d.wrapping_add(*i as i32))),
            Sub => Ok(Value::Date(d.wrapping_sub(*i as i32))),
            _ => Err(CvError::exec("only +/- allowed on dates")),
        };
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) if op != Div => {
            let r = match op {
                Add => x.wrapping_add(*y),
                Sub => x.wrapping_sub(*y),
                Mul => x.wrapping_mul(*y),
                Mod => {
                    if *y == 0 {
                        return Ok(Value::Null);
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(r))
        }
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(CvError::exec(format!(
                        "arithmetic {} on non-numeric values {a} and {b}",
                        op.symbol()
                    )))
                }
            };
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Ok(Value::Null); // SQL: division by zero → NULL here
                    }
                    x / y
                }
                Mod => {
                    if y == 0.0 {
                        return Ok(Value::Null);
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(r))
        }
    }
}

/// Scalar unary kernel.
pub fn unary_value(op: UnOp, v: &Value) -> Result<Value> {
    match op {
        UnOp::Not => Ok(match v.as_bool() {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        }),
        UnOp::Neg => {
            if v.is_null() {
                return Ok(Value::Null);
            }
            match v {
                Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(CvError::exec(format!("cannot negate {other}"))),
            }
        }
        UnOp::IsNull => Ok(Value::Bool(v.is_null())),
        UnOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
    }
}

/// Scalar function kernel.
pub fn func_value(func: FuncKind, args: &[Value], ctx: &mut EvalCtx) -> Result<Value> {
    // Deterministic single-argument functions propagate NULL.
    if func.arity() == 1 && args[0].is_null() {
        return Ok(Value::Null);
    }
    match func {
        FuncKind::Lower => Ok(Value::Str(req_str(&args[0])?.to_lowercase())),
        FuncKind::Upper => Ok(Value::Str(req_str(&args[0])?.to_uppercase())),
        FuncKind::Length => Ok(Value::Int(req_str(&args[0])?.len() as i64)),
        FuncKind::Abs => match &args[0] {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(CvError::exec(format!("ABS on non-numeric {other}"))),
        },
        FuncKind::Round => match &args[0] {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Float(f.round())),
            other => Err(CvError::exec(format!("ROUND on non-numeric {other}"))),
        },
        FuncKind::Year => {
            let days = args[0].as_date().ok_or_else(|| CvError::exec("YEAR requires a DATE"))?;
            let y = cv_data::value::format_date(days)[..4].parse::<i64>().expect("4-digit year");
            Ok(Value::Int(y))
        }
        FuncKind::Month => {
            let days = args[0].as_date().ok_or_else(|| CvError::exec("MONTH requires a DATE"))?;
            let formatted = cv_data::value::format_date(days);
            let m = formatted[5..7].parse::<i64>().expect("2-digit month");
            Ok(Value::Int(m))
        }
        FuncKind::Hash64 => {
            let mut h = StableHasher::with_domain("hash64-fn");
            args[0].stable_hash(&mut h);
            Ok(Value::Int((h.finish64() >> 1) as i64))
        }
        FuncKind::Now => Ok(Value::Date(ctx.now_days)),
        FuncKind::RandomNext => Ok(Value::Int((ctx.next_nd() >> 33) as i64)),
        FuncKind::NewGuid => Ok(Value::Str(format!("{:016x}", ctx.next_nd()))),
    }
}

/// Scalar cast kernel.
pub fn cast_value(v: &Value, to: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let out = match (v, to) {
        (Value::Int(i), DataType::Int) => Value::Int(*i),
        (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
        (Value::Int(i), DataType::Str) => Value::Str(i.to_string()),
        (Value::Int(i), DataType::Bool) => Value::Bool(*i != 0),
        (Value::Int(i), DataType::Date) => Value::Date(*i as i32),
        (Value::Float(f), DataType::Float) => Value::Float(*f),
        (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
        (Value::Float(f), DataType::Str) => Value::Str(f.to_string()),
        (Value::Str(s), DataType::Str) => Value::Str(s.clone()),
        (Value::Str(s), DataType::Int) => match s.trim().parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Null,
        },
        (Value::Str(s), DataType::Float) => match s.trim().parse::<f64>() {
            Ok(f) => Value::Float(f),
            Err(_) => Value::Null,
        },
        (Value::Str(s), DataType::Date) => match cv_data::value::parse_date(s) {
            Some(d) => Value::Date(d),
            None => Value::Null,
        },
        (Value::Bool(b), DataType::Bool) => Value::Bool(*b),
        (Value::Bool(b), DataType::Int) => Value::Int(*b as i64),
        (Value::Bool(b), DataType::Str) => Value::Str(b.to_string()),
        (Value::Date(d), DataType::Date) => Value::Date(*d),
        (Value::Date(d), DataType::Int) => Value::Int(*d as i64),
        (Value::Date(d), DataType::Str) => Value::Str(cv_data::value::format_date(*d)),
        (v, to) => {
            return Err(CvError::exec(format!("unsupported cast {v} -> {to}")));
        }
    };
    Ok(out)
}

fn req_str(v: &Value) -> Result<&str> {
    v.as_str().ok_or_else(|| CvError::exec(format!("expected STRING, got {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, param};
    use cv_data::schema::{Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("qty", DataType::Int),
            Field::new("seg", DataType::Str),
            Field::new("day", DataType::Date),
        ])
        .unwrap()
        .into_ref();
        Table::from_rows(
            schema,
            &[
                vec![Value::Float(2.5), Value::Int(4), Value::Str("asia".into()), Value::Date(0)],
                vec![Value::Float(1.0), Value::Null, Value::Str("emea".into()), Value::Date(31)],
                vec![Value::Null, Value::Int(2), Value::Str("asia".into()), Value::Date(60)],
            ],
        )
        .unwrap()
    }

    fn ev(e: &ScalarExpr) -> Column {
        eval(e, &table(), &mut EvalCtx::new(100)).unwrap()
    }

    #[test]
    fn column_and_literal() {
        let c = ev(&col("qty"));
        assert_eq!(c.value(0), Value::Int(4));
        assert!(c.value(1).is_null());
        let l = ev(&lit(7));
        assert_eq!(l.len(), 3);
        assert_eq!(l.value(2), Value::Int(7));
    }

    #[test]
    fn arithmetic_with_null_propagation() {
        let e = col("price").mul(col("qty").cast(DataType::Float));
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Float(10.0));
        assert!(c.value(1).is_null()); // qty null
        assert!(c.value(2).is_null()); // price null
    }

    #[test]
    fn integer_arithmetic_stays_int() {
        let c = ev(&col("qty").add(lit(1)));
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.value(0), Value::Int(5));
    }

    #[test]
    fn division_promotes_and_div_by_zero_is_null() {
        assert_eq!(
            binary_value(BinOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert!(binary_value(BinOp::Div, &Value::Int(7), &Value::Int(0)).unwrap().is_null());
        assert!(binary_value(BinOp::Mod, &Value::Int(7), &Value::Int(0)).unwrap().is_null());
    }

    #[test]
    fn comparisons() {
        let mask =
            eval_predicate(&col("seg").eq(lit("asia")), &table(), &mut EvalCtx::default()).unwrap();
        assert_eq!(mask.to_bools(), vec![true, false, true]);
        // NULL comparison is not true.
        let mask2 =
            eval_predicate(&col("qty").gt(lit(0)), &table(), &mut EvalCtx::default()).unwrap();
        assert_eq!(mask2.to_bools(), vec![true, false, true]);
    }

    #[test]
    fn ternary_logic_and_or() {
        let n = Value::Null;
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        assert_eq!(binary_value(BinOp::And, &n, &f).unwrap(), Value::Bool(false));
        assert!(binary_value(BinOp::And, &n, &t).unwrap().is_null());
        assert_eq!(binary_value(BinOp::Or, &n, &t).unwrap(), Value::Bool(true));
        assert!(binary_value(BinOp::Or, &n, &f).unwrap().is_null());
    }

    #[test]
    fn is_null_checks() {
        let c = ev(&col("qty").is_null());
        assert_eq!(c.value(0), Value::Bool(false));
        assert_eq!(c.value(1), Value::Bool(true));
        let c2 = ev(&col("qty").is_not_null());
        assert_eq!(c2.value(1), Value::Bool(false));
    }

    #[test]
    fn date_arithmetic_and_parts() {
        let c = ev(&col("day").add(lit(7)));
        assert_eq!(c.value(0), Value::Date(7));
        let y = ev(&ScalarExpr::Func { func: FuncKind::Year, args: vec![col("day")] });
        assert_eq!(y.value(0), Value::Int(1970));
        let m = ev(&ScalarExpr::Func { func: FuncKind::Month, args: vec![col("day")] });
        assert_eq!(m.value(1), Value::Int(2)); // day 31 = 1970-02-01
    }

    #[test]
    fn string_functions() {
        let c = ev(&ScalarExpr::Func { func: FuncKind::Upper, args: vec![col("seg")] });
        assert_eq!(c.value(0), Value::Str("ASIA".into()));
        let l = ev(&ScalarExpr::Func { func: FuncKind::Length, args: vec![col("seg")] });
        assert_eq!(l.value(1), Value::Int(4));
    }

    #[test]
    fn case_expression() {
        let e = ScalarExpr::Case {
            branches: vec![(col("seg").eq(lit("asia")), lit(1))],
            else_expr: Some(Box::new(lit(0))),
        };
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Int(0));
    }

    #[test]
    fn case_without_else_yields_null() {
        let e = ScalarExpr::Case {
            branches: vec![(col("seg").eq(lit("asia")), lit(1))],
            else_expr: None,
        };
        let c = ev(&e);
        assert!(c.value(1).is_null());
    }

    #[test]
    fn casts() {
        assert_eq!(cast_value(&Value::Str("42".into()), DataType::Int).unwrap(), Value::Int(42));
        assert!(cast_value(&Value::Str("xx".into()), DataType::Int).unwrap().is_null());
        assert_eq!(
            cast_value(&Value::Str("2020-02-01".into()), DataType::Date).unwrap(),
            Value::Date(cv_data::value::parse_date("2020-02-01").unwrap())
        );
        assert_eq!(
            cast_value(&Value::Date(0), DataType::Str).unwrap(),
            Value::Str("1970-01-01".into())
        );
    }

    #[test]
    fn params_evaluate_like_literals() {
        let c = ev(&param("cutoff", 3i64));
        assert_eq!(c.value(0), Value::Int(3));
    }

    #[test]
    fn now_uses_context() {
        let c = ev(&ScalarExpr::Func { func: FuncKind::Now, args: vec![] });
        assert_eq!(c.value(0), Value::Date(100));
    }

    #[test]
    fn nondeterministic_functions_vary_per_row() {
        let c = ev(&ScalarExpr::Func { func: FuncKind::NewGuid, args: vec![] });
        assert_ne!(c.value(0), c.value(1));
        let r = ev(&ScalarExpr::Func { func: FuncKind::RandomNext, args: vec![] });
        assert_ne!(r.value(0), r.value(1));
    }

    #[test]
    fn hash64_is_stable() {
        let a = func_value(FuncKind::Hash64, &[Value::Str("x".into())], &mut EvalCtx::default())
            .unwrap();
        let b = func_value(FuncKind::Hash64, &[Value::Str("x".into())], &mut EvalCtx::default())
            .unwrap();
        assert_eq!(a, b);
        assert!(a.as_int().unwrap() >= 0);
    }

    #[test]
    fn predicate_type_enforced() {
        let err = eval_predicate(&col("qty"), &table(), &mut EvalCtx::default()).unwrap_err();
        assert_eq!(err.kind(), "execution");
    }
}
