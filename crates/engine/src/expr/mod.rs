//! Scalar expressions and aggregates.

pub mod eval;
pub mod fold;
mod kernels;

use cv_common::hash::{Sig128, StableHasher};
use cv_common::{CvError, Result};
use cv_data::schema::Schema;
use cv_data::value::{DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }

    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::NotEq | BinOp::And | BinOp::Or)
    }

    /// For comparisons: the operator with operands swapped
    /// (`a < b` ⇔ `b > a`). Identity for commutative comparisons.
    pub fn mirror(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    fn ordinal(self) -> u8 {
        match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Mod => 4,
            BinOp::Eq => 5,
            BinOp::NotEq => 6,
            BinOp::Lt => 7,
            BinOp::LtEq => 8,
            BinOp::Gt => 9,
            BinOp::GtEq => 10,
            BinOp::And => 11,
            BinOp::Or => 12,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

impl UnOp {
    fn ordinal(self) -> u8 {
        match self {
            UnOp::Not => 0,
            UnOp::Neg => 1,
            UnOp::IsNull => 2,
            UnOp::IsNotNull => 3,
        }
    }
}

/// Built-in scalar functions. The last three are *non-deterministic* —
/// exactly the hazards the paper names (`DateTime.Now`, `Guid.NewGuid()`,
/// `new Random().Next()`, §4 "signature correctness"): subexpressions
/// containing them are never given signatures and therefore never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuncKind {
    Lower,
    Upper,
    Length,
    Abs,
    Round,
    Year,
    Month,
    /// Stable 64-bit hash of the argument (partitioning, sampling).
    Hash64,
    /// Wall-clock now — non-deterministic.
    Now,
    /// Pseudo-random integer — non-deterministic.
    RandomNext,
    /// Fresh GUID — non-deterministic.
    NewGuid,
}

impl FuncKind {
    pub fn name(self) -> &'static str {
        match self {
            FuncKind::Lower => "LOWER",
            FuncKind::Upper => "UPPER",
            FuncKind::Length => "LENGTH",
            FuncKind::Abs => "ABS",
            FuncKind::Round => "ROUND",
            FuncKind::Year => "YEAR",
            FuncKind::Month => "MONTH",
            FuncKind::Hash64 => "HASH64",
            FuncKind::Now => "NOW",
            FuncKind::RandomNext => "RANDOM_NEXT",
            FuncKind::NewGuid => "NEW_GUID",
        }
    }

    pub fn from_name(name: &str) -> Option<FuncKind> {
        Some(match name.to_ascii_uppercase().as_str() {
            "LOWER" => FuncKind::Lower,
            "UPPER" => FuncKind::Upper,
            "LENGTH" => FuncKind::Length,
            "ABS" => FuncKind::Abs,
            "ROUND" => FuncKind::Round,
            "YEAR" => FuncKind::Year,
            "MONTH" => FuncKind::Month,
            "HASH64" => FuncKind::Hash64,
            "NOW" => FuncKind::Now,
            "RANDOM_NEXT" => FuncKind::RandomNext,
            "NEW_GUID" => FuncKind::NewGuid,
            _ => return None,
        })
    }

    pub fn is_deterministic(self) -> bool {
        !matches!(self, FuncKind::Now | FuncKind::RandomNext | FuncKind::NewGuid)
    }

    pub fn arity(self) -> usize {
        match self {
            FuncKind::Now | FuncKind::RandomNext | FuncKind::NewGuid => 0,
            _ => 1,
        }
    }

    fn ordinal(self) -> u8 {
        match self {
            FuncKind::Lower => 0,
            FuncKind::Upper => 1,
            FuncKind::Length => 2,
            FuncKind::Abs => 3,
            FuncKind::Round => 4,
            FuncKind::Year => 5,
            FuncKind::Month => 6,
            FuncKind::Hash64 => 7,
            FuncKind::Now => 8,
            FuncKind::RandomNext => 9,
            FuncKind::NewGuid => 10,
        }
    }
}

/// A scalar expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalarExpr {
    /// Reference to an input column by name.
    Column(String),
    /// A constant.
    Literal(Value),
    /// A named parameter of a recurring job template (e.g. the run date).
    /// Evaluates like a literal, but *recurring* signatures hash the name
    /// rather than the value, so daily instances collide (paper §2.3
    /// "recurring signatures ... discard time varying attributes like
    /// parameter values").
    Param {
        name: String,
        value: Value,
    },
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Unary {
        op: UnOp,
        expr: Box<ScalarExpr>,
    },
    Func {
        func: FuncKind,
        args: Vec<ScalarExpr>,
    },
    Case {
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_expr: Option<Box<ScalarExpr>>,
    },
    Cast {
        expr: Box<ScalarExpr>,
        dtype: DataType,
    },
}

/// Shorthand constructors used throughout the workspace.
pub fn col(name: impl Into<String>) -> ScalarExpr {
    ScalarExpr::Column(name.into())
}

pub fn lit(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Literal(v.into())
}

pub fn param(name: impl Into<String>, v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Param { name: name.into(), value: v.into() }
}

// add/sub/mul/div/not mirror the SQL surface as a fluent builder; the
// std::ops traits would force by-value semantics onto every expression use.
#[allow(clippy::should_implement_trait)]
impl ScalarExpr {
    pub fn binary(op: BinOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    pub fn eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Eq, self, other)
    }
    pub fn not_eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::NotEq, self, other)
    }
    pub fn lt(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Lt, self, other)
    }
    pub fn lt_eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::LtEq, self, other)
    }
    pub fn gt(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Gt, self, other)
    }
    pub fn gt_eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::GtEq, self, other)
    }
    pub fn and(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::And, self, other)
    }
    pub fn or(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Or, self, other)
    }
    pub fn add(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Add, self, other)
    }
    pub fn sub(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Sub, self, other)
    }
    pub fn mul(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Mul, self, other)
    }
    pub fn div(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Div, self, other)
    }
    pub fn not(self) -> ScalarExpr {
        ScalarExpr::Unary { op: UnOp::Not, expr: Box::new(self) }
    }
    pub fn is_null(self) -> ScalarExpr {
        ScalarExpr::Unary { op: UnOp::IsNull, expr: Box::new(self) }
    }
    pub fn is_not_null(self) -> ScalarExpr {
        ScalarExpr::Unary { op: UnOp::IsNotNull, expr: Box::new(self) }
    }
    pub fn cast(self, dtype: DataType) -> ScalarExpr {
        ScalarExpr::Cast { expr: Box::new(self), dtype }
    }

    /// Infer the output type against an input schema. Errors on unknown
    /// columns or type mismatches (the binder's type check).
    pub fn dtype(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Column(name) => schema
                .field_by_name(name)
                .map(|f| f.dtype)
                .ok_or_else(|| CvError::plan(format!("unknown column `{name}`"))),
            ScalarExpr::Literal(v) | ScalarExpr::Param { value: v, .. } => {
                v.dtype().ok_or_else(|| CvError::plan("untyped NULL literal; add a CAST"))
            }
            ScalarExpr::Binary { op, left, right } => {
                let lt = left.dtype(schema)?;
                let rt = right.dtype(schema)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        if lt != DataType::Bool || rt != DataType::Bool {
                            return Err(CvError::plan(format!(
                                "{} requires BOOL operands, got {lt} and {rt}",
                                op.symbol()
                            )));
                        }
                        Ok(DataType::Bool)
                    }
                    _ if op.is_comparison() => {
                        let compatible = lt == rt
                            || (lt.is_numeric() && rt.is_numeric())
                            || (lt == DataType::Date && rt == DataType::Date);
                        if !compatible {
                            return Err(CvError::plan(format!("cannot compare {lt} with {rt}")));
                        }
                        Ok(DataType::Bool)
                    }
                    _ => {
                        // Arithmetic. Date +/- Int is allowed (day shifts).
                        if lt == DataType::Date
                            && rt == DataType::Int
                            && matches!(op, BinOp::Add | BinOp::Sub)
                        {
                            return Ok(DataType::Date);
                        }
                        if !lt.is_numeric() || !rt.is_numeric() {
                            return Err(CvError::plan(format!(
                                "arithmetic {} requires numeric operands, got {lt} and {rt}",
                                op.symbol()
                            )));
                        }
                        if lt == DataType::Float || rt == DataType::Float || *op == BinOp::Div {
                            Ok(DataType::Float)
                        } else {
                            Ok(DataType::Int)
                        }
                    }
                }
            }
            ScalarExpr::Unary { op, expr } => {
                let t = expr.dtype(schema)?;
                match op {
                    UnOp::Not => {
                        if t != DataType::Bool {
                            return Err(CvError::plan(format!("NOT requires BOOL, got {t}")));
                        }
                        Ok(DataType::Bool)
                    }
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            return Err(CvError::plan(format!(
                                "negation requires numeric, got {t}"
                            )));
                        }
                        Ok(t)
                    }
                    UnOp::IsNull | UnOp::IsNotNull => Ok(DataType::Bool),
                }
            }
            ScalarExpr::Func { func, args } => {
                if args.len() != func.arity() {
                    return Err(CvError::plan(format!(
                        "{} takes {} argument(s), got {}",
                        func.name(),
                        func.arity(),
                        args.len()
                    )));
                }
                match func {
                    FuncKind::Lower | FuncKind::Upper => {
                        expect_type(&args[0], schema, DataType::Str, func.name())?;
                        Ok(DataType::Str)
                    }
                    FuncKind::Length => {
                        expect_type(&args[0], schema, DataType::Str, func.name())?;
                        Ok(DataType::Int)
                    }
                    FuncKind::Abs | FuncKind::Round => {
                        let t = args[0].dtype(schema)?;
                        if !t.is_numeric() {
                            return Err(CvError::plan(format!(
                                "{} requires numeric, got {t}",
                                func.name()
                            )));
                        }
                        Ok(t)
                    }
                    FuncKind::Year | FuncKind::Month => {
                        expect_type(&args[0], schema, DataType::Date, func.name())?;
                        Ok(DataType::Int)
                    }
                    FuncKind::Hash64 => {
                        args[0].dtype(schema)?;
                        Ok(DataType::Int)
                    }
                    FuncKind::Now => Ok(DataType::Date),
                    FuncKind::RandomNext => Ok(DataType::Int),
                    FuncKind::NewGuid => Ok(DataType::Str),
                }
            }
            ScalarExpr::Case { branches, else_expr } => {
                if branches.is_empty() {
                    return Err(CvError::plan("CASE requires at least one WHEN branch"));
                }
                let mut result_t: Option<DataType> = None;
                for (when, then) in branches {
                    if when.dtype(schema)? != DataType::Bool {
                        return Err(CvError::plan("CASE WHEN condition must be BOOL"));
                    }
                    let t = then.dtype(schema)?;
                    result_t = Some(unify(result_t, t)?);
                }
                if let Some(e) = else_expr {
                    let t = e.dtype(schema)?;
                    result_t = Some(unify(result_t, t)?);
                }
                Ok(result_t.expect("nonempty branches"))
            }
            ScalarExpr::Cast { expr, dtype } => {
                expr.dtype(schema)?;
                Ok(*dtype)
            }
        }
    }

    /// Columns this expression references (for pushdown and pruning).
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Column(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            ScalarExpr::Literal(_) | ScalarExpr::Param { .. } => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            ScalarExpr::Unary { expr, .. } => expr.referenced_columns(out),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            ScalarExpr::Case { branches, else_expr } => {
                for (w, t) in branches {
                    w.referenced_columns(out);
                    t.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.referenced_columns(out),
        }
    }

    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.referenced_columns(&mut out);
        out
    }

    /// True if no sub-expression is a non-deterministic function. Plans
    /// containing non-deterministic expressions are never signed/reused.
    pub fn is_deterministic(&self) -> bool {
        match self {
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) | ScalarExpr::Param { .. } => true,
            ScalarExpr::Binary { left, right, .. } => {
                left.is_deterministic() && right.is_deterministic()
            }
            ScalarExpr::Unary { expr, .. } => expr.is_deterministic(),
            ScalarExpr::Func { func, args } => {
                func.is_deterministic() && args.iter().all(ScalarExpr::is_deterministic)
            }
            ScalarExpr::Case { branches, else_expr } => {
                branches.iter().all(|(w, t)| w.is_deterministic() && t.is_deterministic())
                    && else_expr.as_ref().is_none_or(|e| e.is_deterministic())
            }
            ScalarExpr::Cast { expr, .. } => expr.is_deterministic(),
        }
    }

    /// Feed the expression into a signature hasher. `strict` controls how
    /// `Param` is hashed: by value (strict) or by name (recurring).
    pub fn stable_hash(&self, h: &mut StableHasher, strict: bool) {
        match self {
            ScalarExpr::Column(name) => {
                h.write_u8(0);
                h.write_str(name);
            }
            ScalarExpr::Literal(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
            ScalarExpr::Param { name, value } => {
                if strict {
                    // Strict signatures treat a parameter exactly like the
                    // literal it currently holds.
                    h.write_u8(1);
                    value.stable_hash(h);
                } else {
                    h.write_u8(2);
                    h.write_str(name);
                }
            }
            ScalarExpr::Binary { op, left, right } => {
                h.write_u8(3);
                h.write_u8(op.ordinal());
                left.stable_hash(h, strict);
                right.stable_hash(h, strict);
            }
            ScalarExpr::Unary { op, expr } => {
                h.write_u8(4);
                h.write_u8(op.ordinal());
                expr.stable_hash(h, strict);
            }
            ScalarExpr::Func { func, args } => {
                h.write_u8(5);
                h.write_u8(func.ordinal());
                h.write_u64(args.len() as u64);
                for a in args {
                    a.stable_hash(h, strict);
                }
            }
            ScalarExpr::Case { branches, else_expr } => {
                h.write_u8(6);
                h.write_u64(branches.len() as u64);
                for (w, t) in branches {
                    w.stable_hash(h, strict);
                    t.stable_hash(h, strict);
                }
                match else_expr {
                    Some(e) => {
                        h.write_bool(true);
                        e.stable_hash(h, strict);
                    }
                    None => h.write_bool(false),
                }
            }
            ScalarExpr::Cast { expr, dtype } => {
                h.write_u8(7);
                h.write_u8(dtype.ordinal());
                expr.stable_hash(h, strict);
            }
        }
    }

    /// Signature of this expression alone (strict mode).
    pub fn sig(&self) -> Sig128 {
        let mut h = StableHasher::new();
        self.stable_hash(&mut h, true);
        h.finish128()
    }
}

fn expect_type(e: &ScalarExpr, schema: &Schema, want: DataType, ctx: &str) -> Result<()> {
    let t = e.dtype(schema)?;
    if t != want {
        return Err(CvError::plan(format!("{ctx} requires {want}, got {t}")));
    }
    Ok(())
}

fn unify(acc: Option<DataType>, t: DataType) -> Result<DataType> {
    match acc {
        None => Ok(t),
        Some(a) if a == t => Ok(a),
        Some(a) if a.is_numeric() && t.is_numeric() => Ok(DataType::Float),
        Some(a) => Err(CvError::plan(format!("CASE branches mix {a} and {t}"))),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(name) => write!(f, "{name}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Param { name, value } => write!(f, "@{name}[{value}]"),
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "NOT ({expr})"),
                UnOp::Neg => write!(f, "-({expr})"),
                UnOp::IsNull => write!(f, "({expr}) IS NULL"),
                UnOp::IsNotNull => write!(f, "({expr}) IS NOT NULL"),
            },
            ScalarExpr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Case { branches, else_expr } => {
                write!(f, "CASE")?;
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::Cast { expr, dtype } => write!(f, "CAST({expr} AS {dtype})"),
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    Count,
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT_DISTINCT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    fn ordinal(self) -> u8 {
        match self {
            AggFunc::Count => 0,
            AggFunc::CountDistinct => 1,
            AggFunc::Sum => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
            AggFunc::Avg => 5,
        }
    }
}

/// One aggregate in an `Aggregate` plan node, e.g. `AVG(price * qty) AS v`.
#[derive(Clone, PartialEq, Debug)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, arg: ScalarExpr, alias: impl Into<String>) -> AggExpr {
        AggExpr { func, arg: Some(arg), alias: alias.into() }
    }

    pub fn count_star(alias: impl Into<String>) -> AggExpr {
        AggExpr { func: AggFunc::Count, arg: None, alias: alias.into() }
    }

    /// Output type of the aggregate.
    pub fn dtype(&self, schema: &Schema) -> Result<DataType> {
        match self.func {
            AggFunc::Count | AggFunc::CountDistinct => Ok(DataType::Int),
            AggFunc::Avg => Ok(DataType::Float),
            AggFunc::Sum => {
                let arg =
                    self.arg.as_ref().ok_or_else(|| CvError::plan("SUM requires an argument"))?;
                let t = arg.dtype(schema)?;
                if !t.is_numeric() {
                    return Err(CvError::plan(format!("SUM requires numeric, got {t}")));
                }
                Ok(t)
            }
            AggFunc::Min | AggFunc::Max => {
                let arg = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| CvError::plan("MIN/MAX require an argument"))?;
                arg.dtype(schema)
            }
        }
    }

    pub fn is_deterministic(&self) -> bool {
        self.arg.as_ref().is_none_or(ScalarExpr::is_deterministic)
    }

    pub fn stable_hash(&self, h: &mut StableHasher, strict: bool) {
        h.write_u8(self.func.ordinal());
        match &self.arg {
            Some(a) => {
                h.write_bool(true);
                a.stable_hash(h, strict);
            }
            None => h.write_bool(false),
        }
        // The alias is part of the *schema* of the output, hence signature-
        // relevant: downstream operators reference it by name.
        h.write_str(&self.alias);
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) if self.func == AggFunc::CountDistinct => {
                write!(f, "COUNT(DISTINCT {a}) AS {}", self.alias)
            }
            Some(a) => write!(f, "{}({a}) AS {}", self.func.name(), self.alias),
            None => write!(f, "COUNT(*) AS {}", self.alias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_data::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("qty", DataType::Int),
            Field::new("seg", DataType::Str),
            Field::new("day", DataType::Date),
            Field::new("ok", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn dtype_inference() {
        let s = schema();
        assert_eq!(col("price").mul(col("qty")).dtype(&s).unwrap(), DataType::Float);
        assert_eq!(col("qty").add(lit(1)).dtype(&s).unwrap(), DataType::Int);
        assert_eq!(col("qty").div(lit(2)).dtype(&s).unwrap(), DataType::Float);
        assert_eq!(col("seg").eq(lit("asia")).dtype(&s).unwrap(), DataType::Bool);
        assert_eq!(col("day").add(lit(7)).dtype(&s).unwrap(), DataType::Date);
        assert_eq!(
            ScalarExpr::Func { func: FuncKind::Year, args: vec![col("day")] }.dtype(&s).unwrap(),
            DataType::Int
        );
    }

    #[test]
    fn dtype_errors() {
        let s = schema();
        assert!(col("nope").dtype(&s).is_err());
        assert!(col("seg").add(lit(1)).dtype(&s).is_err());
        assert!(col("qty").and(col("ok")).dtype(&s).is_err());
        assert!(col("seg").eq(lit(1)).dtype(&s).is_err());
        assert!(ScalarExpr::Func { func: FuncKind::Lower, args: vec![] }.dtype(&s).is_err());
    }

    #[test]
    fn case_type_unification() {
        let s = schema();
        let case = ScalarExpr::Case {
            branches: vec![(col("ok").clone(), lit(1))],
            else_expr: Some(Box::new(lit(2.5))),
        };
        assert_eq!(case.dtype(&s).unwrap(), DataType::Float);

        let bad = ScalarExpr::Case {
            branches: vec![(col("ok").clone(), lit(1))],
            else_expr: Some(Box::new(lit("x"))),
        };
        assert!(bad.dtype(&s).is_err());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = col("price").mul(col("qty")).add(col("price"));
        assert_eq!(e.columns(), vec!["price".to_string(), "qty".to_string()]);
    }

    #[test]
    fn determinism_flags() {
        assert!(col("a").add(lit(1)).is_deterministic());
        let nd = ScalarExpr::Func { func: FuncKind::Now, args: vec![] };
        assert!(!nd.is_deterministic());
        assert!(!col("a").eq(nd).is_deterministic());
        assert!(FuncKind::Hash64.is_deterministic());
        assert!(!FuncKind::NewGuid.is_deterministic());
    }

    #[test]
    fn param_hashes_differ_by_mode() {
        let p1 = param("run_date", Value::Date(100));
        let p2 = param("run_date", Value::Date(200));
        // Strict: different values → different signatures.
        assert_ne!(p1.sig(), p2.sig());
        // Recurring: same name → same hash regardless of value.
        let mut h1 = StableHasher::new();
        p1.stable_hash(&mut h1, false);
        let mut h2 = StableHasher::new();
        p2.stable_hash(&mut h2, false);
        assert_eq!(h1.finish128(), h2.finish128());
    }

    #[test]
    fn param_strict_hash_equals_literal_hash() {
        // A param holding value V must strictly-hash like the literal V, so
        // that a parameterized template instance matches the equivalent
        // hand-written query.
        let p = param("d", Value::Int(5));
        let l = lit(5);
        assert_eq!(p.sig(), l.sig());
    }

    #[test]
    fn sig_distinguishes_structure() {
        let a = col("x").add(col("y"));
        let b = col("y").add(col("x"));
        // Pre-normalization these differ; the normalizer (tested separately)
        // maps them to one canonical form.
        assert_ne!(a.sig(), b.sig());
        assert_ne!(col("x").sig(), lit("x").sig());
    }

    #[test]
    fn agg_dtype() {
        let s = schema();
        assert_eq!(AggExpr::new(AggFunc::Sum, col("qty"), "s").dtype(&s).unwrap(), DataType::Int);
        assert_eq!(
            AggExpr::new(AggFunc::Avg, col("price"), "a").dtype(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(AggExpr::count_star("c").dtype(&s).unwrap(), DataType::Int);
        assert_eq!(AggExpr::new(AggFunc::Min, col("seg"), "m").dtype(&s).unwrap(), DataType::Str);
        assert!(AggExpr::new(AggFunc::Sum, col("seg"), "s").dtype(&s).is_err());
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = col("price").mul(col("qty")).gt(lit(10.0));
        assert_eq!(e.to_string(), "((price * qty) > 10.0)");
        let agg = AggExpr::new(AggFunc::Avg, col("price"), "avg_p");
        assert_eq!(agg.to_string(), "AVG(price) AS avg_p");
    }

    #[test]
    fn mirror_ops() {
        assert_eq!(BinOp::Lt.mirror(), BinOp::Gt);
        assert_eq!(BinOp::GtEq.mirror(), BinOp::LtEq);
        assert_eq!(BinOp::Eq.mirror(), BinOp::Eq);
    }
}
