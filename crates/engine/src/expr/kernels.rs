//! Vectorized typed expression kernels.
//!
//! Each kernel dispatches on the [`ColumnData`] variants of its inputs and
//! runs a tight loop over the typed buffers, with null propagation handled
//! through validity bitmaps instead of per-row [`Value`] boxing. The scalar
//! kernels in [`super::eval`] (`binary_value`, `unary_value`, `cast_value`)
//! remain the *reference semantics*: every kernel here must produce exactly
//! the column the scalar row loop would — same values, same NULLs, same
//! null-slot placeholders, and no validity bitmap when every row is valid
//! (so `byte_size` is identical across both paths). Differential property
//! tests in `tests/kernels.rs` enforce this.
//!
//! A kernel returns `None` when it has no typed implementation for the
//! operand combination; the caller falls back to the scalar loop, which
//! either handles it or raises the same error the scalar path always did.

use super::{BinOp, UnOp};
use cv_data::bitmap::Bitmap;
use cv_data::column::{Column, ColumnData};
use cv_data::value::{DataType, Value};
use std::cmp::Ordering;

/// Broadcast a literal/parameter into a constant column (one allocation,
/// no per-row push). Coercions mirror `ColumnBuilder::push`: Int widens
/// into Float and Date columns.
pub(super) fn broadcast(v: &Value, out_type: DataType, n: usize) -> Option<Column> {
    let data = match (v, out_type) {
        (Value::Bool(b), DataType::Bool) => ColumnData::Bool(vec![*b; n]),
        (Value::Int(i), DataType::Int) => ColumnData::Int(vec![*i; n]),
        (Value::Int(i), DataType::Float) => ColumnData::Float(vec![*i as f64; n]),
        (Value::Int(i), DataType::Date) => ColumnData::Date(vec![*i as i32; n]),
        (Value::Float(f), DataType::Float) => ColumnData::Float(vec![*f; n]),
        (Value::Str(s), DataType::Str) => ColumnData::Str(vec![s.clone(); n]),
        (Value::Date(d), DataType::Date) => ColumnData::Date(vec![*d; n]),
        _ => return None,
    };
    Some(Column::new(data, None))
}

/// Typed binary kernel. `None` means "no kernel for this combination".
pub(super) fn binary(op: BinOp, l: &Column, r: &Column) -> Option<Column> {
    debug_assert_eq!(l.len(), r.len());
    match op {
        BinOp::And | BinOp::Or => and_or(op, l, r),
        _ if op.is_comparison() => compare(op, l, r),
        _ => arith(op, l, r),
    }
}

#[inline]
fn valid(v: Option<&Bitmap>, i: usize) -> bool {
    v.is_none_or(|b| b.get(i))
}

/// AND/OR with SQL ternary logic on Bool columns.
fn and_or(op: BinOp, l: &Column, r: &Column) -> Option<Column> {
    let (ColumnData::Bool(lv), ColumnData::Bool(rv)) = (l.data(), r.data()) else {
        return None;
    };
    let n = lv.len();
    let (lval, rval) = (l.validity(), r.validity());
    let mut data = vec![false; n];
    let mut validity = Bitmap::all_set(n);
    let mut any_null = false;
    for i in 0..n {
        let a = if valid(lval, i) { Some(lv[i]) } else { None };
        let b = if valid(rval, i) { Some(rv[i]) } else { None };
        let out = match op {
            BinOp::And => match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        match out {
            Some(x) => data[i] = x,
            None => {
                validity.set(i, false);
                any_null = true;
            }
        }
    }
    Some(Column::new(ColumnData::Bool(data), if any_null { Some(validity) } else { None }))
}

fn combine_validity(l: &Column, r: &Column) -> Option<Bitmap> {
    match (l.validity(), r.validity()) {
        (None, None) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(b)) => Some(a.and(b)),
    }
}

/// Drop a validity bitmap with no cleared bits — the canonical form the
/// scalar builders produce.
fn normalize(v: Option<Bitmap>) -> Option<Bitmap> {
    v.filter(|b| !b.all_true())
}

/// Comparison kernels: typed per-pair loops matching `Value::total_cmp`
/// (Int/Float mixes widen to f64, floats via `f64::total_cmp`).
fn compare(op: BinOp, l: &Column, r: &Column) -> Option<Column> {
    let n = l.len();
    let pred: fn(Ordering) -> bool = match op {
        BinOp::Eq => |o| o == Ordering::Equal,
        BinOp::NotEq => |o| o != Ordering::Equal,
        BinOp::Lt => |o| o == Ordering::Less,
        BinOp::LtEq => |o| o != Ordering::Greater,
        BinOp::Gt => |o| o == Ordering::Greater,
        BinOp::GtEq => |o| o != Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    };
    let validity = combine_validity(l, r);
    let mut data = vec![false; n];
    macro_rules! fill {
        ($ord:expr) => {{
            let ord = $ord;
            match &validity {
                None => {
                    for i in 0..n {
                        data[i] = pred(ord(i));
                    }
                }
                Some(v) => {
                    for i in 0..n {
                        if v.get(i) {
                            data[i] = pred(ord(i));
                        }
                    }
                }
            }
        }};
    }
    match (l.data(), r.data()) {
        (ColumnData::Int(a), ColumnData::Int(b)) => fill!(|i: usize| a[i].cmp(&b[i])),
        (ColumnData::Float(a), ColumnData::Float(b)) => fill!(|i: usize| a[i].total_cmp(&b[i])),
        (ColumnData::Int(a), ColumnData::Float(b)) => {
            fill!(|i: usize| (a[i] as f64).total_cmp(&b[i]))
        }
        (ColumnData::Float(a), ColumnData::Int(b)) => {
            fill!(|i: usize| a[i].total_cmp(&(b[i] as f64)))
        }
        (ColumnData::Str(a), ColumnData::Str(b)) => fill!(|i: usize| a[i].cmp(&b[i])),
        (ColumnData::Date(a), ColumnData::Date(b)) => fill!(|i: usize| a[i].cmp(&b[i])),
        (ColumnData::Bool(a), ColumnData::Bool(b)) => fill!(|i: usize| a[i].cmp(&b[i])),
        _ => return None,
    }
    Some(Column::new(ColumnData::Bool(data), normalize(validity)))
}

/// View over a numeric buffer widening Int to f64 (the `as_f64` coercion).
enum NumView<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
}

impl NumView<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumView::Int(v) => v[i] as f64,
            NumView::Float(v) => v[i],
        }
    }
}

fn num_view(d: &ColumnData) -> Option<NumView<'_>> {
    match d {
        ColumnData::Int(v) => Some(NumView::Int(v)),
        ColumnData::Float(v) => Some(NumView::Float(v)),
        _ => None,
    }
}

/// Arithmetic kernels: Int×Int stays Int (wrapping, except Div which
/// promotes to Float), Date±Int shifts days, anything else numeric widens
/// to f64. Div/Mod by zero produce NULL.
fn arith(op: BinOp, l: &Column, r: &Column) -> Option<Column> {
    use BinOp::*;
    let n = l.len();
    let mut validity = match combine_validity(l, r) {
        Some(v) => v,
        None => Bitmap::all_set(n),
    };
    let data = match (l.data(), r.data()) {
        (ColumnData::Date(a), ColumnData::Int(b)) => {
            if !matches!(op, Add | Sub) {
                return None;
            }
            let mut out = vec![0i32; n];
            for i in 0..n {
                if validity.get(i) {
                    let d = b[i] as i32;
                    out[i] = if op == Add { a[i].wrapping_add(d) } else { a[i].wrapping_sub(d) };
                }
            }
            ColumnData::Date(out)
        }
        (ColumnData::Int(a), ColumnData::Int(b)) if op != Div => {
            let mut out = vec![0i64; n];
            for i in 0..n {
                if !validity.get(i) {
                    continue;
                }
                out[i] = match op {
                    Add => a[i].wrapping_add(b[i]),
                    Sub => a[i].wrapping_sub(b[i]),
                    Mul => a[i].wrapping_mul(b[i]),
                    Mod => {
                        if b[i] == 0 {
                            validity.set(i, false);
                            0
                        } else {
                            a[i] % b[i]
                        }
                    }
                    _ => unreachable!(),
                };
            }
            ColumnData::Int(out)
        }
        (ld, rd) => {
            let (Some(va), Some(vb)) = (num_view(ld), num_view(rd)) else {
                return None;
            };
            let mut out = vec![0.0f64; n];
            for (i, slot) in out.iter_mut().enumerate() {
                if !validity.get(i) {
                    continue;
                }
                let (x, y) = (va.get(i), vb.get(i));
                *slot = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div | Mod => {
                        if y == 0.0 {
                            validity.set(i, false);
                            0.0
                        } else if op == Div {
                            x / y
                        } else {
                            x % y
                        }
                    }
                    _ => unreachable!(),
                };
            }
            ColumnData::Float(out)
        }
    };
    Some(Column::new(data, normalize(Some(validity))))
}

/// Typed unary kernel.
pub(super) fn unary(op: UnOp, c: &Column) -> Option<Column> {
    let n = c.len();
    match op {
        UnOp::Not => {
            let ColumnData::Bool(v) = c.data() else { return None };
            let data: Vec<bool> = match c.validity() {
                None => v.iter().map(|b| !b).collect(),
                Some(val) => (0..n).map(|i| if val.get(i) { !v[i] } else { false }).collect(),
            };
            Some(Column::new(ColumnData::Bool(data), normalize(c.validity().cloned())))
        }
        UnOp::Neg => {
            let validity = normalize(c.validity().cloned());
            let data = match c.data() {
                ColumnData::Int(v) => {
                    let mut out = vec![0i64; n];
                    for i in 0..n {
                        if valid(c.validity(), i) {
                            out[i] = v[i].wrapping_neg();
                        }
                    }
                    ColumnData::Int(out)
                }
                ColumnData::Float(v) => {
                    let mut out = vec![0.0f64; n];
                    for i in 0..n {
                        if valid(c.validity(), i) {
                            out[i] = -v[i];
                        }
                    }
                    ColumnData::Float(out)
                }
                _ => return None,
            };
            Some(Column::new(data, validity))
        }
        UnOp::IsNull => {
            let data: Vec<bool> = match c.validity() {
                None => vec![false; n],
                Some(v) => (0..n).map(|i| !v.get(i)).collect(),
            };
            Some(Column::new(ColumnData::Bool(data), None))
        }
        UnOp::IsNotNull => {
            let data: Vec<bool> = match c.validity() {
                None => vec![true; n],
                Some(v) => (0..n).map(|i| v.get(i)).collect(),
            };
            Some(Column::new(ColumnData::Bool(data), None))
        }
    }
}

/// Typed cast kernel. Identity casts share the source buffer (reference
/// bump); string parses that fail produce NULL, matching `cast_value`.
pub(super) fn cast(c: &Column, to: DataType) -> Option<Column> {
    let n = c.len();
    if c.dtype() == to {
        return Some(
            Column::from_shared(c.shared_data(), c.validity().cloned()).normalize_validity(),
        );
    }
    let mut validity = c.validity().cloned().unwrap_or_else(|| Bitmap::all_set(n));
    macro_rules! convert {
        ($src:ident, $default:expr, $wrap:expr, $f:expr) => {{
            let mut out = vec![$default; n];
            for i in 0..n {
                if validity.get(i) {
                    out[i] = $f(&$src[i]);
                }
            }
            $wrap(out)
        }};
    }
    // Fallible string parses clear validity on failure.
    macro_rules! parse {
        ($src:ident, $default:expr, $wrap:expr, $f:expr) => {{
            let mut out = vec![$default; n];
            for i in 0..n {
                if validity.get(i) {
                    match $f(&$src[i]) {
                        Some(x) => out[i] = x,
                        None => validity.set(i, false),
                    }
                }
            }
            $wrap(out)
        }};
    }
    let data = match (c.data(), to) {
        (ColumnData::Int(v), DataType::Float) => {
            convert!(v, 0.0, ColumnData::Float, |x: &i64| *x as f64)
        }
        (ColumnData::Int(v), DataType::Date) => {
            convert!(v, 0, ColumnData::Date, |x: &i64| *x as i32)
        }
        (ColumnData::Int(v), DataType::Str) => {
            convert!(v, String::new(), ColumnData::Str, |x: &i64| x.to_string())
        }
        (ColumnData::Int(v), DataType::Bool) => {
            convert!(v, false, ColumnData::Bool, |x: &i64| *x != 0)
        }
        (ColumnData::Float(v), DataType::Int) => {
            convert!(v, 0, ColumnData::Int, |x: &f64| *x as i64)
        }
        (ColumnData::Float(v), DataType::Str) => {
            convert!(v, String::new(), ColumnData::Str, |x: &f64| x.to_string())
        }
        (ColumnData::Str(v), DataType::Int) => {
            parse!(v, 0, ColumnData::Int, |s: &String| s.trim().parse::<i64>().ok())
        }
        (ColumnData::Str(v), DataType::Float) => {
            parse!(v, 0.0, ColumnData::Float, |s: &String| s.trim().parse::<f64>().ok())
        }
        (ColumnData::Str(v), DataType::Date) => {
            parse!(v, 0, ColumnData::Date, |s: &String| cv_data::value::parse_date(s))
        }
        (ColumnData::Bool(v), DataType::Int) => {
            convert!(v, 0, ColumnData::Int, |x: &bool| *x as i64)
        }
        (ColumnData::Bool(v), DataType::Str) => {
            convert!(v, String::new(), ColumnData::Str, |x: &bool| x.to_string())
        }
        (ColumnData::Date(v), DataType::Int) => {
            convert!(v, 0, ColumnData::Int, |x: &i32| *x as i64)
        }
        (ColumnData::Date(v), DataType::Str) => {
            convert!(v, String::new(), ColumnData::Str, |x: &i32| cv_data::value::format_date(*x))
        }
        _ => return None,
    };
    Some(Column::new(data, normalize(Some(validity))))
}

/// CASE kernel: compute a per-row branch-selection vector from the WHEN
/// columns, coerce every source column to the output type (Int widens into
/// Float/Date outputs, exactly like `ColumnBuilder::push`), then gather
/// typed. `None` falls back to the scalar loop.
pub(super) fn case_select(
    when_cols: &[Column],
    then_cols: &[Column],
    else_col: Option<&Column>,
    out_type: DataType,
    n: usize,
) -> Option<Column> {
    const NO_BRANCH: usize = usize::MAX;
    let mut sel = vec![NO_BRANCH; n];
    for (bi, w) in when_cols.iter().enumerate() {
        let ColumnData::Bool(wv) = w.data() else { return None };
        let wval = w.validity();
        for i in 0..n {
            if sel[i] == NO_BRANCH && valid(wval, i) && wv[i] {
                sel[i] = bi;
            }
        }
    }
    // Coerce sources up front so the gather below is monomorphic.
    let coerce = |c: &Column| -> Option<Column> {
        if c.dtype() == out_type {
            Some(c.clone())
        } else if c.dtype() == DataType::Int && matches!(out_type, DataType::Float | DataType::Date)
        {
            cast(c, out_type)
        } else {
            None
        }
    };
    let srcs: Option<Vec<Column>> = then_cols.iter().map(coerce).collect();
    let srcs = srcs?;
    let else_src = match else_col {
        Some(c) => Some(coerce(c)?),
        None => None,
    };
    let mut validity = Bitmap::all_set(n);
    macro_rules! gather {
        ($variant:ident, $ty:ty, $default:expr, $get:expr) => {{
            let mut out: Vec<$ty> = vec![$default; n];
            for i in 0..n {
                let src: Option<&Column> =
                    if sel[i] != NO_BRANCH { Some(&srcs[sel[i]]) } else { else_src.as_ref() };
                match src {
                    Some(c) if !c.is_null(i) => {
                        let ColumnData::$variant(v) = c.data() else {
                            unreachable!("coerced to output type above")
                        };
                        out[i] = $get(&v[i]);
                    }
                    _ => validity.set(i, false),
                }
            }
            ColumnData::$variant(out)
        }};
    }
    let data = match out_type {
        DataType::Bool => gather!(Bool, bool, false, |x: &bool| *x),
        DataType::Int => gather!(Int, i64, 0, |x: &i64| *x),
        DataType::Float => gather!(Float, f64, 0.0, |x: &f64| *x),
        DataType::Str => gather!(Str, String, String::new(), |x: &String| x.clone()),
        DataType::Date => gather!(Date, i32, 0, |x: &i32| *x),
    };
    Some(Column::new(data, normalize(Some(validity))))
}
