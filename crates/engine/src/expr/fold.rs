//! Constant folding and canonical expression ordering.
//!
//! These rewrites run inside plan normalization so that trivially-equal
//! expressions — `1 + 2` vs `3`, `a AND b` vs `b AND a` — produce identical
//! signatures. CloudViews deliberately stops at this level: general semantic
//! equivalence is undecidable and the paper leaves it to future work (§5.3),
//! e.g. `CustomerId > 5` and `2 * CustomerId > 10` intentionally do NOT
//! collide here.

use super::eval::{binary_value, func_value, unary_value, EvalCtx};
use super::{BinOp, ScalarExpr, UnOp};
use cv_data::value::Value;

/// Fully normalize an expression: fold constants, simplify boolean
/// identities, then order commutative operands canonically. Idempotent.
pub fn normalize_expr(expr: &ScalarExpr) -> ScalarExpr {
    canonicalize(&fold(expr))
}

/// Bottom-up constant folding with boolean/arithmetic identity rules.
pub fn fold(expr: &ScalarExpr) -> ScalarExpr {
    match expr {
        ScalarExpr::Column(_) | ScalarExpr::Literal(_) | ScalarExpr::Param { .. } => expr.clone(),
        ScalarExpr::Binary { op, left, right } => {
            let l = fold(left);
            let r = fold(right);
            // Pure-literal operands evaluate now (Params are excluded: their
            // value varies per instance and folding them would erase the
            // recurring-signature marker).
            if let (ScalarExpr::Literal(a), ScalarExpr::Literal(b)) = (&l, &r) {
                if let Ok(v) = binary_value(*op, a, b) {
                    return ScalarExpr::Literal(v);
                }
            }
            // Boolean identities (valid under SQL ternary logic).
            match op {
                BinOp::And => {
                    if is_true(&l) {
                        return r;
                    }
                    if is_true(&r) {
                        return l;
                    }
                    if is_false(&l) || is_false(&r) {
                        return ScalarExpr::Literal(Value::Bool(false));
                    }
                }
                BinOp::Or => {
                    if is_false(&l) {
                        return r;
                    }
                    if is_false(&r) {
                        return l;
                    }
                    if is_true(&l) || is_true(&r) {
                        return ScalarExpr::Literal(Value::Bool(true));
                    }
                }
                // x + 0, x - 0, x * 1, x / 1 preserve value AND null-ness.
                BinOp::Add | BinOp::Sub => {
                    if is_zero(&r) {
                        return l;
                    }
                    if *op == BinOp::Add && is_zero(&l) {
                        return r;
                    }
                }
                BinOp::Mul => {
                    if is_one(&r) {
                        return l;
                    }
                    if is_one(&l) {
                        return r;
                    }
                }
                BinOp::Div if is_one(&r) => {
                    return l;
                }
                _ => {}
            }
            ScalarExpr::Binary { op: *op, left: Box::new(l), right: Box::new(r) }
        }
        ScalarExpr::Unary { op, expr } => {
            let e = fold(expr);
            if let ScalarExpr::Literal(v) = &e {
                if let Ok(folded) = unary_value(*op, v) {
                    return ScalarExpr::Literal(folded);
                }
            }
            // NOT NOT x → x
            if *op == UnOp::Not {
                if let ScalarExpr::Unary { op: UnOp::Not, expr: inner } = &e {
                    return (**inner).clone();
                }
            }
            ScalarExpr::Unary { op: *op, expr: Box::new(e) }
        }
        ScalarExpr::Func { func, args } => {
            let folded_args: Vec<ScalarExpr> = args.iter().map(fold).collect();
            if func.is_deterministic()
                && folded_args.iter().all(|a| matches!(a, ScalarExpr::Literal(_)))
            {
                let vals: Vec<Value> = folded_args
                    .iter()
                    .map(|a| match a {
                        ScalarExpr::Literal(v) => v.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                if let Ok(v) = func_value(*func, &vals, &mut EvalCtx::default()) {
                    return ScalarExpr::Literal(v);
                }
            }
            ScalarExpr::Func { func: *func, args: folded_args }
        }
        ScalarExpr::Case { branches, else_expr } => {
            let mut out: Vec<(ScalarExpr, ScalarExpr)> = Vec::new();
            let mut else_out = else_expr.as_ref().map(|e| fold(e));
            for (w, t) in branches {
                let w = fold(w);
                let t = fold(t);
                if is_false(&w) {
                    continue; // dead branch
                }
                if is_true(&w) {
                    // Everything after an always-true branch is dead; it
                    // becomes the ELSE.
                    else_out = Some(t);
                    break;
                }
                out.push((w, t));
            }
            match (out.is_empty(), &else_out) {
                (true, Some(e)) => e.clone(),
                (true, None) => ScalarExpr::Literal(Value::Null),
                _ => ScalarExpr::Case { branches: out, else_expr: else_out.map(Box::new) },
            }
        }
        ScalarExpr::Cast { expr, dtype } => {
            let e = fold(expr);
            if let ScalarExpr::Literal(v) = &e {
                if let Ok(c) = super::eval::cast_value(v, *dtype) {
                    return ScalarExpr::Literal(c);
                }
            }
            ScalarExpr::Cast { expr: Box::new(e), dtype: *dtype }
        }
    }
}

/// Order commutative operands canonically (by signature), flattening and
/// re-sorting AND/OR chains, and mirroring comparisons so the smaller-hash
/// operand comes first. Makes `a AND b AND c` permutation-insensitive.
pub fn canonicalize(expr: &ScalarExpr) -> ScalarExpr {
    match expr {
        ScalarExpr::Binary { op: op @ (BinOp::And | BinOp::Or), .. } => {
            let mut terms = Vec::new();
            collect_chain(expr, *op, &mut terms);
            let mut terms: Vec<ScalarExpr> = terms.iter().map(canonicalize).collect();
            terms.sort_by_key(|t| t.sig());
            terms.dedup(); // a AND a → a
            let mut it = terms.into_iter();
            let first = it.next().expect("chain has at least one term");
            it.fold(first, |acc, t| ScalarExpr::binary(*op, acc, t))
        }
        ScalarExpr::Binary { op, left, right } => {
            let l = canonicalize(left);
            let r = canonicalize(right);
            if op.is_commutative() && r.sig() < l.sig() {
                ScalarExpr::Binary { op: *op, left: Box::new(r), right: Box::new(l) }
            } else if op.is_comparison() && op.mirror() != *op && r.sig() < l.sig() {
                ScalarExpr::Binary { op: op.mirror(), left: Box::new(r), right: Box::new(l) }
            } else {
                ScalarExpr::Binary { op: *op, left: Box::new(l), right: Box::new(r) }
            }
        }
        ScalarExpr::Unary { op, expr } => {
            ScalarExpr::Unary { op: *op, expr: Box::new(canonicalize(expr)) }
        }
        ScalarExpr::Func { func, args } => {
            ScalarExpr::Func { func: *func, args: args.iter().map(canonicalize).collect() }
        }
        ScalarExpr::Case { branches, else_expr } => ScalarExpr::Case {
            branches: branches.iter().map(|(w, t)| (canonicalize(w), canonicalize(t))).collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(canonicalize(e))),
        },
        ScalarExpr::Cast { expr, dtype } => {
            ScalarExpr::Cast { expr: Box::new(canonicalize(expr)), dtype: *dtype }
        }
        _ => expr.clone(),
    }
}

/// Split a conjunction into its conjuncts (post-fold). Used by filter
/// pushdown and by the containment checker in the extensions crate.
pub fn split_conjunction(expr: &ScalarExpr) -> Vec<ScalarExpr> {
    let mut terms = Vec::new();
    collect_chain(expr, BinOp::And, &mut terms);
    terms
}

/// Rebuild a conjunction from conjuncts (left-deep, preserving order).
pub fn conjoin(terms: Vec<ScalarExpr>) -> ScalarExpr {
    let mut it = terms.into_iter();
    let first = it.next().unwrap_or(ScalarExpr::Literal(Value::Bool(true)));
    it.fold(first, |acc, t| acc.and(t))
}

fn collect_chain(expr: &ScalarExpr, want: BinOp, out: &mut Vec<ScalarExpr>) {
    match expr {
        ScalarExpr::Binary { op, left, right } if *op == want => {
            collect_chain(left, want, out);
            collect_chain(right, want, out);
        }
        other => out.push(other.clone()),
    }
}

fn is_true(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Bool(true)))
}

fn is_false(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Bool(false)))
}

fn is_zero(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Int(0)))
        || matches!(e, ScalarExpr::Literal(Value::Float(f)) if *f == 0.0)
}

fn is_one(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Literal(Value::Int(1)))
        || matches!(e, ScalarExpr::Literal(Value::Float(f)) if *f == 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, param, FuncKind};

    #[test]
    fn folds_literal_arithmetic() {
        let e = lit(1).add(lit(2)).mul(lit(3));
        assert_eq!(fold(&e), lit(9));
    }

    #[test]
    fn folds_comparisons_and_functions() {
        assert_eq!(fold(&lit(2).lt(lit(3))), lit(true));
        let f = ScalarExpr::Func { func: FuncKind::Upper, args: vec![lit("asia")] };
        assert_eq!(fold(&f), lit("ASIA"));
    }

    #[test]
    fn does_not_fold_nondeterministic() {
        let f = ScalarExpr::Func { func: FuncKind::RandomNext, args: vec![] };
        assert_eq!(fold(&f), f);
    }

    #[test]
    fn does_not_fold_params() {
        let e = param("d", 5i64).add(lit(0)); // +0 simplifies, param survives
        assert_eq!(fold(&e), param("d", 5i64));
        let e2 = param("d", 5i64).add(lit(2));
        assert!(matches!(fold(&e2), ScalarExpr::Binary { .. }));
    }

    #[test]
    fn boolean_identities() {
        let x = col("x");
        assert_eq!(fold(&x.clone().and(lit(true))), x);
        assert_eq!(fold(&x.clone().and(lit(false))), lit(false));
        assert_eq!(fold(&lit(false).or(x.clone())), x);
        assert_eq!(fold(&x.clone().or(lit(true))), lit(true));
        assert_eq!(fold(&x.clone().not().not()), x);
    }

    #[test]
    fn arithmetic_identities() {
        let x = col("x");
        assert_eq!(fold(&x.clone().add(lit(0))), x);
        assert_eq!(fold(&x.clone().mul(lit(1))), x);
        assert_eq!(fold(&lit(1).mul(x.clone())), x);
        assert_eq!(fold(&x.clone().div(lit(1))), x);
    }

    #[test]
    fn dead_case_branches_removed() {
        let e = ScalarExpr::Case {
            branches: vec![
                (lit(false), lit(1)),
                (col("p"), lit(2)),
                (lit(true), lit(3)),
                (col("q"), lit(4)), // dead: after always-true
            ],
            else_expr: Some(Box::new(lit(5))),
        };
        let folded = fold(&e);
        match folded {
            ScalarExpr::Case { branches, else_expr } => {
                assert_eq!(branches.len(), 1);
                assert_eq!(*else_expr.unwrap(), lit(3));
            }
            other => panic!("expected CASE, got {other}"),
        }
    }

    #[test]
    fn case_collapses_to_else_when_all_dead() {
        let e = ScalarExpr::Case {
            branches: vec![(lit(false), lit(1))],
            else_expr: Some(Box::new(lit(9))),
        };
        assert_eq!(fold(&e), lit(9));
    }

    #[test]
    fn commutative_operands_sorted() {
        let ab = normalize_expr(&col("a").add(col("b")));
        let ba = normalize_expr(&col("b").add(col("a")));
        assert_eq!(ab, ba);
        // Non-commutative must NOT swap.
        let sub1 = normalize_expr(&col("a").sub(col("b")));
        let sub2 = normalize_expr(&col("b").sub(col("a")));
        assert_ne!(sub1, sub2);
    }

    #[test]
    fn comparison_mirroring() {
        let a = normalize_expr(&col("a").lt(col("b")));
        let b = normalize_expr(&col("b").gt(col("a")));
        assert_eq!(a, b);
    }

    #[test]
    fn and_chains_permutation_insensitive() {
        let p1 = col("a").eq(lit(1));
        let p2 = col("b").gt(lit(2));
        let p3 = col("c").lt(lit(3));
        let e1 = normalize_expr(&p1.clone().and(p2.clone()).and(p3.clone()));
        let e2 = normalize_expr(&p3.and(p1.clone()).and(p2));
        assert_eq!(e1, e2);
    }

    #[test]
    fn duplicate_conjuncts_removed() {
        let p = col("a").eq(lit(1));
        let e = normalize_expr(&p.clone().and(p.clone()));
        assert_eq!(e, normalize_expr(&p));
    }

    #[test]
    fn normalization_is_idempotent() {
        let exprs = vec![
            col("b").add(col("a")).mul(lit(1)),
            col("a").eq(lit(1)).and(col("b").gt(lit(2))).or(col("c").is_null()),
            lit(3).gt(col("x")),
        ];
        for e in exprs {
            let once = normalize_expr(&e);
            let twice = normalize_expr(&once);
            assert_eq!(once, twice, "not idempotent for {e}");
        }
    }

    #[test]
    fn semantic_equivalence_not_attempted() {
        // Paper §5.3: syntactically different but logically equal predicates
        // must NOT be merged by the core system.
        let a = normalize_expr(&col("CustomerId").gt(lit(5)));
        let b = normalize_expr(&lit(2).mul(col("CustomerId")).gt(lit(10)));
        assert_ne!(a.sig(), b.sig());
    }

    #[test]
    fn split_and_conjoin_roundtrip() {
        let p1 = col("a").eq(lit(1));
        let p2 = col("b").gt(lit(2));
        let e = p1.clone().and(p2.clone());
        let parts = split_conjunction(&e);
        assert_eq!(parts.len(), 2);
        assert_eq!(conjoin(parts), e);
        assert_eq!(split_conjunction(&p1).len(), 1);
    }
}
