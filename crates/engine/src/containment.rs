//! Containment proofs and compensation-plan synthesis.
//!
//! Exact-signature matching (the paper's production behavior, §2.3) misses
//! reuse whenever a candidate subexpression differs from a view's defining
//! plan by even one token. GEqO-style semantic matching widens the net with
//! a cheap-to-expensive cascade: a normalized *template signature* filters
//! candidates (see [`crate::signature::template_signature`]), then a
//! containment *prover* decides — statically, without executing anything —
//! whether the view's result can be turned into the candidate's result by a
//! **compensation plan** stacked on top of the `ViewScan`.
//!
//! This module holds the engine-side vocabulary only: the proof shape, the
//! refusal shape, the prover trait, and the deterministic compensation
//! builder. The actual proof rules live in `cv-analyzer`
//! (`cv_analyzer::containment`), which implements [`ContainmentProver`] —
//! keeping the engine free of diagnostic-code policy while letting the
//! optimizer treat the analyzer as the mandatory certifier for every
//! semantic substitution.

use crate::expr::{AggExpr, ScalarExpr};
use crate::plan::LogicalPlan;
use std::sync::Arc;

/// Re-aggregation step of a compensation plan: group the view's rows by the
/// candidate's (coarser) keys and roll partial aggregates up.
#[derive(Clone, Debug, PartialEq)]
pub struct RollupSpec {
    /// Group-by keys, rewritten to reference the view's output columns.
    pub group_by: Vec<(ScalarExpr, String)>,
    /// Rollup aggregates (e.g. `SUM(view_cnt) AS cnt` for a COUNT→SUM
    /// rewrite), already carrying the candidate's output aliases.
    pub aggs: Vec<AggExpr>,
}

/// A successful containment proof: the recipe for rebuilding the candidate's
/// exact result from the view's rows.
///
/// The compensation stacks in a fixed order — residual filter, then rollup,
/// then projection — mirroring how the three rules compose: filtering must
/// happen on the view's raw rows, re-aggregation consumes the filtered rows,
/// and the final projection shapes the output schema.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ContainmentProof {
    /// Conjuncts of the candidate's predicate not already enforced by the
    /// view. `None` means the predicates matched exactly.
    pub residual_filter: Option<ScalarExpr>,
    /// Re-aggregation from the view's finer grouping to the candidate's.
    pub rollup: Option<RollupSpec>,
    /// Projection rewriting the candidate's outputs in terms of the view's
    /// output columns. `None` means the schemas already agree.
    pub reproject: Option<Vec<(ScalarExpr, String)>>,
    /// Names of the rules that fired, for observability and sweep reports.
    pub rules: Vec<&'static str>,
}

/// Why a containment proof was refused.
///
/// `code` is a diagnostic code owned by the certifying analyzer (the CV06x
/// family); the engine never interprets it beyond surfacing it to
/// observability counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainmentRefusal {
    /// Diagnostic code (e.g. `CV061`), assigned by the prover.
    pub code: &'static str,
    /// The rule that refused (e.g. `predicate-implication`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub reason: String,
}

impl std::fmt::Display for ContainmentRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.rule, self.reason)
    }
}

/// A static prover deciding whether `view`'s defining plan contains
/// `candidate` — i.e. the candidate's result is derivable from the view's
/// result by a compensation plan.
///
/// Implementations must be *sound*: a returned proof is a promise that
/// [`build_compensation`] applied to the view's rows yields byte-identical
/// results to evaluating the candidate directly. They should refuse
/// (`Err`) whenever soundness cannot be certified; refusing a provable
/// containment costs only a missed reuse, while accepting an unprovable one
/// corrupts results.
pub trait ContainmentProver: std::fmt::Debug + Send + Sync {
    fn prove(
        &self,
        view: &Arc<LogicalPlan>,
        candidate: &Arc<LogicalPlan>,
    ) -> Result<ContainmentProof, ContainmentRefusal>;
}

/// Stack a proof's compensation operators on top of a `ViewScan` (or any
/// stand-in base plan). Deterministic: the same proof and base always
/// produce a structurally identical plan, which is what lets the analyzer
/// re-derive and `PartialEq`-compare the compensated subtree during
/// verification.
pub fn build_compensation(proof: &ContainmentProof, base: Arc<LogicalPlan>) -> Arc<LogicalPlan> {
    let mut plan = base;
    if let Some(pred) = &proof.residual_filter {
        plan = Arc::new(LogicalPlan::Filter { predicate: pred.clone(), input: plan });
    }
    if let Some(rollup) = &proof.rollup {
        plan = Arc::new(LogicalPlan::Aggregate {
            group_by: rollup.group_by.clone(),
            aggs: rollup.aggs.clone(),
            input: plan,
        });
    }
    if let Some(exprs) = &proof.reproject {
        plan = Arc::new(LogicalPlan::Project { exprs: exprs.clone(), input: plan });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggFunc};
    use cv_common::ids::VersionGuid;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;

    fn base() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            dataset: "t".into(),
            guid: VersionGuid(1),
            schema: Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("cnt", DataType::Int),
            ])
            .unwrap()
            .into_ref(),
        })
    }

    #[test]
    fn empty_proof_is_identity() {
        let b = base();
        let plan = build_compensation(&ContainmentProof::default(), b.clone());
        assert_eq!(plan, b);
    }

    #[test]
    fn compensation_stacks_filter_rollup_project() {
        let proof = ContainmentProof {
            residual_filter: Some(col("k").gt(lit(5))),
            rollup: Some(RollupSpec {
                group_by: vec![(col("k"), "k".to_string())],
                aggs: vec![AggExpr::new(AggFunc::Sum, col("cnt"), "cnt")],
            }),
            reproject: Some(vec![(col("cnt"), "n".to_string())]),
            rules: vec!["predicate-implication", "group-by-rollup", "projection-subsumption"],
        };
        let plan = build_compensation(&proof, base());
        let LogicalPlan::Project { input: agg, .. } = &*plan else {
            panic!("outermost should be Project, got {plan:?}");
        };
        let LogicalPlan::Aggregate { input: filt, .. } = &**agg else {
            panic!("middle should be Aggregate, got {agg:?}");
        };
        assert!(matches!(&**filt, LogicalPlan::Filter { .. }));
        assert_eq!(plan.schema().unwrap().names(), vec!["n"]);
    }
}
