//! A SCOPE-like analytical query engine — the substrate CloudViews lives in.
//!
//! The paper's CloudViews feature is implemented *inside* the SCOPE
//! compiler/optimizer (Fig. 5, "Query Processing" column). This crate
//! reproduces that substrate end to end:
//!
//! * [`expr`] — typed scalar expressions, aggregates, vectorized evaluation,
//!   constant folding and canonical ordering;
//! * [`udo`] — user-defined operators with determinism flags and library
//!   dependency chains (the §4 "signature correctness" hazards);
//! * [`sql`] — a mini-SQL frontend (lexer, parser, binder) with `@param`
//!   markers for recurring job templates;
//! * [`plan`] — logical plans and a fluent builder;
//! * [`normalize`] — deterministic plan canonicalization so that
//!   syntactically different but trivially-equal plans hash alike;
//! * [`signature`] — strict and recurring subexpression signatures;
//! * [`stats`] / [`cost`] — cardinality estimation (deliberately imperfect,
//!   reproducing §3.5's over-estimation) and the cost model;
//! * [`optimizer`] — normalization pipeline, top-down view *matching*,
//!   bottom-up view *building* (spool insertion), physical planning;
//! * [`physical`] / [`exec`] — physical operators and the single-node
//!   vectorized executor with per-operator work accounting;
//! * [`engine`] — the `QueryEngine` facade tying catalog, view store and
//!   optimizer together.

pub mod cost;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod normalize;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod signature;
pub mod sql;
pub mod stats;
pub mod udo;
pub mod verify;

pub use engine::{CompiledJob, JobOutcome, QueryEngine};
pub use expr::{col, lit, param, AggExpr, AggFunc, BinOp, FuncKind, ScalarExpr, UnOp};
pub use optimizer::{OptimizeOutcome, Optimizer, OptimizerConfig, ReuseContext, ViewMeta};
pub use plan::{JoinKind, LogicalPlan, PlanBuilder};
pub use signature::{
    enumerate_subexpressions, plan_signature, SigMode, SignatureConfig, SubexprInfo,
};
