//! A SCOPE-like analytical query engine — the substrate CloudViews lives in.
//!
//! The paper's CloudViews feature is implemented *inside* the SCOPE
//! compiler/optimizer (Fig. 5, "Query Processing" column). This crate
//! reproduces that substrate end to end:
//!
//! * [`expr`] — typed scalar expressions, aggregates, vectorized evaluation,
//!   constant folding and canonical ordering;
//! * [`udo`] — user-defined operators with determinism flags and library
//!   dependency chains (the §4 "signature correctness" hazards);
//! * [`sql`] — a mini-SQL frontend (lexer, parser, binder) with `@param`
//!   markers for recurring job templates;
//! * [`plan`] — logical plans and a fluent builder;
//! * [`normalize`] — deterministic plan canonicalization so that
//!   syntactically different but trivially-equal plans hash alike;
//! * [`signature`] — strict and recurring subexpression signatures;
//! * [`stats`] / [`cost`] — cardinality estimation (deliberately imperfect,
//!   reproducing §3.5's over-estimation) and the cost model;
//! * [`optimizer`] — normalization pipeline, top-down view *matching*,
//!   bottom-up view *building* (spool insertion), physical planning;
//! * [`physical`] / [`exec`] — physical operators and the single-node
//!   vectorized executor with per-operator work accounting, streaming
//!   fixed-size chunks through morsel-driven pipelines ([`MorselRunner`]);
//! * [`engine`] — the `QueryEngine` facade tying catalog, view store and
//!   optimizer together.

pub mod containment;
pub mod cost;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod normalize;
pub mod obs;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod signature;
pub mod sql;
pub mod stats;
pub mod udo;
pub mod verify;

pub use containment::{
    build_compensation, ContainmentProof, ContainmentProver, ContainmentRefusal, RollupSpec,
};
pub use engine::{CompiledJob, JobOutcome, QueryEngine};
pub use exec::{
    MorselRunner, OpState, OpStateAcquire, OpStateEntry, OpStateSource, SerialRunner, SpoolSink,
};
pub use expr::{col, lit, param, AggExpr, AggFunc, BinOp, FuncKind, ScalarExpr, UnOp};
pub use obs::{NoopSink, ObsSink};
pub use optimizer::{
    OptimizeOutcome, Optimizer, OptimizerConfig, ReuseContext, SemanticGrant, ViewMeta,
};
pub use plan::{JoinKind, LogicalPlan, PlanBuilder};
pub use signature::{
    enumerate_subexpressions, plan_signature, SigMode, SignatureConfig, SubexprInfo,
};

// Compile-time Send + Sync audit of the compiled-plan types the service
// layer shares across worker threads (satellite of the cv-service PR): a
// compiled job is optimized once on the coordinator and executed on any
// worker, so plans, reuse metadata, and the optimizer itself must stay
// thread-shareable. Adding `Rc`/`RefCell` to any of these breaks the build
// here rather than at the first concurrent run.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<plan::LogicalPlan>();
    assert_send_sync::<physical::PhysicalPlan>();
    assert_send_sync::<engine::CompiledJob>();
    assert_send_sync::<optimizer::OptimizeOutcome>();
    assert_send_sync::<optimizer::ReuseContext>();
    assert_send_sync::<Optimizer>();
    assert_send_sync::<udo::UdoRegistry>();
    assert_send_sync::<exec::ExecMetrics>();
    assert_send_sync::<exec::PendingView>();
    assert_send_sync::<exec::ExecOutcome>();
};
