//! The optimizer: normalization → top-down view *matching* → bottom-up view
//! *building* → physical planning (paper Fig. 5, "Query Processing").
//!
//! * **Core search / match view**: walk the normalized plan top-down (larger
//!   subexpressions first); whenever a subexpression's strict signature has
//!   a live materialized view, cost the `ViewScan` alternative against
//!   recomputing the subtree and keep the cheaper plan. Matching is a hash
//!   lookup — no containment reasoning (§2.4 "lightweight view matching").
//! * **Semantic widening (GEqO-style cascade)**: on an exact-signature miss,
//!   fall back to a *template signature* lookup (operator parameters
//!   abstracted, children pinned) and ask the installed
//!   [`ContainmentProver`] — the cv-analyzer — to certify that the view's
//!   defining plan contains the candidate. On a proof, substitute the
//!   `ViewScan` plus a synthesized **compensation plan** (residual filter /
//!   rollup / projection); on a refusal, veto and recurse. Cost-gated like
//!   exact matches, and re-verified end-to-end by `PlanVerifier`.
//! * **Follow-up optimization / build view**: walk bottom-up; for each
//!   subexpression whose signature the workload analysis selected for
//!   materialization, acquire the view-creation lock from the insights
//!   service and insert a spool with two consumers.
//! * **Physical planning**: pick join algorithms and partition counts from
//!   the (possibly view-corrected) statistics.

use crate::containment::{build_compensation, ContainmentProver};
use crate::cost::{Cost, CostModel};
use crate::normalize::normalize;
use crate::physical::{JoinAlgo, PhysicalPlan};
use crate::plan::{JoinKind, LogicalPlan};
use crate::signature::{
    plan_sig_pair, plan_signature, template_signature, SigMode, SignatureConfig,
};
use crate::stats::{estimate, ScanStats, Statistics};
use crate::verify::PlanVerifier;
use cv_common::hash::{Sig128, StableHasher};
use cv_common::{CvError, Result};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Compile-time metadata about an available materialized view, served by the
/// insights service through the query annotations (paper Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewMeta {
    pub rows: u64,
    pub bytes: u64,
    /// Whether the view's pages are currently resident in the store's
    /// buffer pool. Cold views are costed at `view_scan_cold` so the
    /// optimizer can prefer recompute for large un-cached views right
    /// after a restart. In-memory stores are always hot.
    pub cold: bool,
}

impl ViewMeta {
    /// A hot (resident) view — the common case and the only case for
    /// in-memory stores.
    pub fn hot(rows: u64, bytes: u64) -> ViewMeta {
        ViewMeta { rows, bytes, cold: false }
    }
}

/// A semantic-match candidate: a live view whose *template* signature
/// matches some subexpression of the job even though its strict signature
/// does not. Carries the view's defining plan so the containment prover can
/// compare operator parameters, and so the `ViewScan` fallback can recompute
/// the *view's* rows (not the candidate's) on a read failure.
#[derive(Clone, Debug)]
pub struct SemanticGrant {
    /// The view's defining logical plan (normalized, as sealed).
    pub plan: Arc<LogicalPlan>,
    pub meta: ViewMeta,
    /// Template signature of the view's defining plan.
    pub template: Sig128,
}

/// The reuse-relevant annotations for one job: which strict signatures have
/// live views, which the selection pipeline wants materialized, and which
/// views are offered for *semantic* (containment-certified) matching.
#[derive(Clone, Debug, Default)]
pub struct ReuseContext {
    pub available: HashMap<Sig128, ViewMeta>,
    pub to_build: HashSet<Sig128>,
    /// Keyed by the view's strict signature. Populated by the insights
    /// service for views that template-match a subexpression of this job
    /// without being exactly available for it.
    pub semantic: HashMap<Sig128, SemanticGrant>,
}

impl ReuseContext {
    pub fn empty() -> ReuseContext {
        ReuseContext::default()
    }

    pub fn is_empty(&self) -> bool {
        self.available.is_empty() && self.to_build.is_empty() && self.semantic.is_empty()
    }
}

/// Grants (or refuses) the exclusive view-creation lock; implemented by the
/// insights service so that concurrent jobs don't materialize the same view
/// twice (paper Fig. 5 "view lock: acquire/release").
pub trait BuildCoordinator {
    fn try_acquire(&mut self, sig: Sig128) -> bool;
}

/// Coordinator that always grants — for single-job contexts and tests.
#[derive(Debug, Default)]
pub struct AlwaysGrant;

impl BuildCoordinator for AlwaysGrant {
    fn try_acquire(&mut self, _sig: Sig128) -> bool {
        true
    }
}

/// Optimizer tuning knobs.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    pub sig: SignatureConfig,
    /// Master switches — part of the paper's multi-level controls (§4).
    pub enable_view_match: bool,
    pub enable_view_build: bool,
    /// Widen view matching beyond exact signatures: template-signature
    /// candidate discovery + containment-certified compensation plans.
    /// No-op unless a [`ContainmentProver`] is installed and the reuse
    /// context carries semantic grants, so turning it on without the rest
    /// of the cascade changes nothing.
    pub enable_semantic_match: bool,
    /// User-facing control for #views per job (paper Fig. 5 left margin).
    pub max_views_per_job: usize,
    /// Rows per stage partition; estimates above this fan out more tasks.
    pub rows_per_partition: f64,
    pub max_partitions: usize,
    /// Smaller join side below this row count → nested-loop join.
    pub loop_join_threshold: f64,
    /// Larger join side above this row count → sort-merge join.
    pub merge_join_threshold: f64,
    pub cost: CostModel,
    /// Run the installed [`PlanVerifier`] over every optimized plan.
    /// Defaults to on in debug builds (and thus under `cargo test`),
    /// off in release builds.
    pub verify_plans: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            sig: SignatureConfig::default(),
            enable_view_match: true,
            enable_view_build: true,
            enable_semantic_match: true,
            max_views_per_job: 4,
            rows_per_partition: 2_500.0,
            max_partitions: 256,
            loop_join_threshold: 64.0,
            merge_join_threshold: 120_000.0,
            cost: CostModel::default(),
            verify_plans: cfg!(debug_assertions),
        }
    }
}

/// Result of optimizing one job.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Final logical plan (normalized, views matched, materialize markers).
    pub logical: Arc<LogicalPlan>,
    pub physical: PhysicalPlan,
    /// Strict signatures of views this plan reuses (exact and semantic).
    pub matched_views: Vec<Sig128>,
    /// Semantic matches: `(view signature, candidate subexpression
    /// signature)` for each containment-certified substitution. Every view
    /// signature here also appears in `matched_views`.
    pub compensated_views: Vec<(Sig128, Sig128)>,
    /// Strict signatures of views this plan will materialize.
    pub built_views: Vec<Sig128>,
    /// Defining logical plans of the views being materialized, captured so
    /// the insights service can later offer them for semantic matching.
    /// Only *pure* plans (no nested `ViewScan`/`Materialize`) are captured —
    /// a compensation fallback must be recomputable standalone.
    pub built_plans: Vec<(Sig128, Arc<LogicalPlan>)>,
    pub est_cost: Cost,
}

/// The query optimizer.
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    pub cfg: OptimizerConfig,
    /// Installed by the embedding application (see `cv-analyzer`); only
    /// consulted when [`OptimizerConfig::verify_plans`] is set.
    pub verifier: Option<Arc<dyn PlanVerifier>>,
    /// Observability sink for view-match / view-build decisions; no-op when
    /// absent. Installed like the verifier, by the embedding application.
    pub obs: Option<Arc<dyn crate::obs::ObsSink>>,
    /// Containment prover certifying semantic view matches (see
    /// `cv-analyzer`). Semantic matching is disabled while absent — the
    /// optimizer never substitutes a compensation plan it cannot certify.
    pub prover: Option<Arc<dyn ContainmentProver>>,
    /// Operator-state cache probed during physical planning: when a join's
    /// build side is already resident (warm), the lowering step may prefer a
    /// hash join over the threshold rule's merge join, costed at
    /// [`CostModel::hash_join_warm`]. Safe because every join algorithm
    /// produces byte-identical output (`all_join_algorithms_agree`).
    pub warm_states: Option<Arc<dyn crate::exec::OpStateSource>>,
}

impl Optimizer {
    pub fn new(cfg: OptimizerConfig) -> Optimizer {
        Optimizer { cfg, verifier: None, obs: None, prover: None, warm_states: None }
    }

    pub fn set_warm_states(&mut self, states: Arc<dyn crate::exec::OpStateSource>) {
        self.warm_states = Some(states);
    }

    pub fn set_verifier(&mut self, verifier: Arc<dyn PlanVerifier>) {
        self.verifier = Some(verifier);
    }

    pub fn set_obs(&mut self, obs: Arc<dyn crate::obs::ObsSink>) {
        self.obs = Some(obs);
    }

    pub fn set_prover(&mut self, prover: Arc<dyn ContainmentProver>) {
        self.prover = Some(prover);
    }

    fn active_verifier(&self) -> Option<&dyn PlanVerifier> {
        if self.cfg.verify_plans {
            self.verifier.as_deref()
        } else {
            None
        }
    }

    /// Optimize a logical plan under the given reuse annotations.
    pub fn optimize(
        &self,
        plan: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
        scan_stats: ScanStats<'_>,
        coordinator: &mut dyn BuildCoordinator,
    ) -> Result<OptimizeOutcome> {
        let normalized = normalize(plan, &self.cfg.sig)?;
        // Build-side decisions come from the pre-substitution plan so view
        // reuse differences between runs cannot flip them.
        let mut swaps = HashMap::new();
        self.collect_swap_decisions(&normalized, scan_stats, &mut swaps);

        let mut matched = Vec::new();
        let mut compensated = Vec::new();
        let mut replaced = HashMap::new();
        let matchable =
            !reuse.available.is_empty() || (self.semantic_active() && !reuse.semantic.is_empty());
        let with_views = if self.cfg.enable_view_match && matchable {
            self.match_views(
                &normalized,
                reuse,
                scan_stats,
                &mut matched,
                &mut compensated,
                &mut replaced,
                &swaps,
            )?
        } else {
            normalized.clone()
        };

        let mut built = Vec::new();
        let mut built_plans = Vec::new();
        let final_logical = if self.cfg.enable_view_build && !reuse.to_build.is_empty() {
            self.insert_builds(&with_views, reuse, coordinator, &mut built, &mut built_plans)?
        } else {
            with_views
        };

        if let Some(verifier) = self.active_verifier() {
            verifier.verify_logical(&normalized, &final_logical, reuse)?;
        }
        let mut physical = self.to_physical_with(&final_logical, scan_stats, &swaps)?;
        if !replaced.is_empty() {
            // Views are throw-away artifacts: each ViewScan carries the
            // lowered original subexpression so the executor can recompute
            // if the view is gone or corrupt at run time. Attached after
            // verification — the fallback is not a plan child and must not
            // change costs, stages, or analyzer output.
            self.attach_fallbacks(&mut physical, &replaced, scan_stats, &swaps)?;
        }
        let est_cost = physical.total_cost(&self.cfg.cost);
        Ok(OptimizeOutcome {
            logical: final_logical,
            physical,
            matched_views: matched,
            compensated_views: compensated,
            built_views: built,
            built_plans,
            est_cost,
        })
    }

    fn semantic_active(&self) -> bool {
        self.cfg.enable_semantic_match && self.prover.is_some()
    }

    /// Top-down matching: try the largest subexpressions first; on a match
    /// the subtree is replaced and not descended into. Exact signature
    /// lookups run first (cheap hash probe); on a miss, the semantic cascade
    /// widens the search via template signatures and the containment prover.
    #[allow(clippy::too_many_arguments)]
    fn match_views(
        &self,
        node: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
        scan_stats: ScanStats<'_>,
        matched: &mut Vec<Sig128>,
        compensated: &mut Vec<(Sig128, Sig128)>,
        replaced: &mut HashMap<Sig128, Arc<LogicalPlan>>,
        swaps: &HashMap<Sig128, bool>,
    ) -> Result<Arc<LogicalPlan>> {
        let replaceable = !matches!(
            &**node,
            LogicalPlan::Scan { .. }
                | LogicalPlan::ViewScan { .. }
                | LogicalPlan::Materialize { .. }
        );
        if replaceable {
            if let Some(sig) = plan_signature(node, &self.cfg.sig, SigMode::Strict) {
                if let Some(meta) = reuse.available.get(&sig) {
                    // Cost the alternative: the plan using the materialized
                    // view is chosen only if it is cheaper (paper §2.3).
                    let recompute =
                        self.lower(node, scan_stats, swaps)?.total_cost(&self.cfg.cost).total();
                    let reuse_cost = if meta.cold {
                        self.cfg.cost.view_scan_cold(meta.bytes as f64).total()
                    } else {
                        self.cfg.cost.view_scan(meta.bytes as f64).total()
                    };
                    if reuse_cost < recompute {
                        if let Some(obs) = &self.obs {
                            obs.view_matched(sig);
                        }
                        matched.push(sig);
                        replaced.entry(sig).or_insert_with(|| node.clone());
                        return Ok(Arc::new(LogicalPlan::ViewScan {
                            sig,
                            schema: node.schema()?,
                            rows: meta.rows,
                            bytes: meta.bytes,
                        }));
                    }
                } else if let Some(sub) = self.match_semantic(
                    node,
                    sig,
                    reuse,
                    scan_stats,
                    matched,
                    compensated,
                    replaced,
                    swaps,
                )? {
                    return Ok(sub);
                }
            }
        }
        // No match here: recurse.
        let new_children: Result<Vec<Arc<LogicalPlan>>> = node
            .children()
            .into_iter()
            .map(|c| self.match_views(c, reuse, scan_stats, matched, compensated, replaced, swaps))
            .collect();
        Ok(Arc::new(node.with_children(new_children?)?))
    }

    /// Semantic step of the match cascade: find views whose template
    /// signature equals this node's, ask the prover to certify containment,
    /// and substitute the cheapest certified compensation plan. Candidates
    /// are visited in view-signature order so the result is deterministic
    /// regardless of `HashMap` iteration order.
    #[allow(clippy::too_many_arguments)]
    fn match_semantic(
        &self,
        node: &Arc<LogicalPlan>,
        node_sig: Sig128,
        reuse: &ReuseContext,
        scan_stats: ScanStats<'_>,
        matched: &mut Vec<Sig128>,
        compensated: &mut Vec<(Sig128, Sig128)>,
        replaced: &mut HashMap<Sig128, Arc<LogicalPlan>>,
        swaps: &HashMap<Sig128, bool>,
    ) -> Result<Option<Arc<LogicalPlan>>> {
        if !self.semantic_active() || reuse.semantic.is_empty() {
            return Ok(None);
        }
        let Some(prover) = self.prover.as_deref() else {
            return Ok(None);
        };
        let Some(template) = template_signature(node, &self.cfg.sig) else {
            return Ok(None);
        };
        let mut grants: Vec<(&Sig128, &SemanticGrant)> = reuse
            .semantic
            .iter()
            .filter(|(view_sig, g)| g.template == template && **view_sig != node_sig)
            .collect();
        grants.sort_by_key(|(view_sig, _)| **view_sig);
        for (&view_sig, grant) in grants {
            if let Some(obs) = &self.obs {
                obs.semantic_considered(view_sig);
            }
            let proof = match prover.prove(&grant.plan, node) {
                Ok(proof) => proof,
                Err(refusal) => {
                    if let Some(obs) = &self.obs {
                        obs.semantic_vetoed(view_sig, refusal.code);
                    }
                    continue;
                }
            };
            let view_scan = Arc::new(LogicalPlan::ViewScan {
                sig: view_sig,
                schema: grant.plan.schema()?,
                rows: grant.meta.rows,
                bytes: grant.meta.bytes,
            });
            let substitute = build_compensation(&proof, view_scan);
            // Cost gate, like exact matching: the compensated plan (view
            // scan + residual operators) must beat recomputing the subtree.
            let recompute = self.lower(node, scan_stats, swaps)?.total_cost(&self.cfg.cost).total();
            let reuse_cost =
                self.lower(&substitute, scan_stats, swaps)?.total_cost(&self.cfg.cost).total();
            if reuse_cost < recompute {
                if let Some(obs) = &self.obs {
                    obs.semantic_proven(view_sig);
                }
                matched.push(view_sig);
                compensated.push((view_sig, node_sig));
                // The run-time fallback recomputes the *view's* rows (the
                // compensation operators above the ViewScan still apply).
                replaced.entry(view_sig).or_insert_with(|| grant.plan.clone());
                return Ok(Some(substitute));
            }
        }
        Ok(None)
    }

    /// Lower each matched view's original subexpression and hang it off the
    /// corresponding physical `ViewScan` as its recompute fallback.
    fn attach_fallbacks(
        &self,
        plan: &mut PhysicalPlan,
        replaced: &HashMap<Sig128, Arc<LogicalPlan>>,
        scan_stats: ScanStats<'_>,
        swaps: &HashMap<Sig128, bool>,
    ) -> Result<()> {
        if let PhysicalPlan::ViewScan { sig, fallback, .. } = plan {
            if fallback.is_none() {
                if let Some(original) = replaced.get(sig) {
                    *fallback = Some(Box::new(self.lower(original, scan_stats, swaps)?));
                }
            }
            return Ok(());
        }
        for child in plan.children_mut() {
            self.attach_fallbacks(child, replaced, scan_stats, swaps)?;
        }
        Ok(())
    }

    /// Bottom-up build insertion: wrap selected subexpressions in
    /// `Materialize`, bounded by `max_views_per_job`, gated by the lock.
    fn insert_builds(
        &self,
        node: &Arc<LogicalPlan>,
        reuse: &ReuseContext,
        coordinator: &mut dyn BuildCoordinator,
        built: &mut Vec<Sig128>,
        built_plans: &mut Vec<(Sig128, Arc<LogicalPlan>)>,
    ) -> Result<Arc<LogicalPlan>> {
        let new_children: Result<Vec<Arc<LogicalPlan>>> = node
            .children()
            .into_iter()
            .map(|c| self.insert_builds(c, reuse, coordinator, built, built_plans))
            .collect();
        let rebuilt = Arc::new(node.with_children(new_children?)?);

        let eligible = !matches!(
            &*rebuilt,
            LogicalPlan::Scan { .. }
                | LogicalPlan::ViewScan { .. }
                | LogicalPlan::Materialize { .. }
        );
        if eligible && built.len() < self.cfg.max_views_per_job {
            if let Some(sig) = plan_signature(&rebuilt, &self.cfg.sig, SigMode::Strict) {
                if reuse.to_build.contains(&sig)
                    && !reuse.available.contains_key(&sig)
                    && !built.contains(&sig)
                    && coordinator.try_acquire(sig)
                {
                    if let Some(obs) = &self.obs {
                        obs.view_build_inserted(sig);
                    }
                    built.push(sig);
                    if plan_is_pure(&rebuilt) {
                        // Capture the defining plan for future semantic
                        // grants. Plans that themselves contain ViewScans
                        // or nested Materialize markers are skipped: a
                        // semantic fallback must recompute standalone.
                        built_plans.push((sig, rebuilt.clone()));
                    }
                    return Ok(Arc::new(LogicalPlan::Materialize { sig, input: rebuilt }));
                }
            }
        }
        Ok(rebuilt)
    }

    fn partitions_for(&self, est: Statistics) -> usize {
        ((est.rows / self.cfg.rows_per_partition).ceil() as usize).clamp(1, self.cfg.max_partitions)
    }

    /// Structural identity of an inner join for build-side keying: the
    /// equi-join columns plus both child *schemas*. Unlike a subtree
    /// signature, this survives any result-preserving substitution
    /// underneath: an exact `ViewScan` swap keeps subtree signatures (a
    /// view signs as the computation it replaced), but a semantic
    /// compensation — view scan plus residual operators — signs as its
    /// own new shape, so signature keying would miss only in the
    /// semantic-on run and re-introduce the row-order divergence the
    /// swap map exists to prevent. Substitutes are schema-preserving by
    /// contract, so this key is stable across every reuse configuration.
    /// Two distinct joins that collide on it share one decision (the
    /// last collected wins) — possibly suboptimal for one of them, but
    /// identical in every run, which is the property that matters.
    fn join_swap_key(
        on: &[(String, String)],
        left: &Arc<LogicalPlan>,
        right: &Arc<LogicalPlan>,
    ) -> Option<Sig128> {
        let (ls, rs) = (left.schema().ok()?, right.schema().ok()?);
        let mut h = StableHasher::with_domain("cv-join-swap-key");
        for (l, r) in on {
            h.write_str(l);
            h.write_str(r);
        }
        for schema in [&ls, &rs] {
            h.write_u64(schema.len() as u64);
            for f in schema.fields() {
                h.write_str(&f.name);
                h.write_str(f.dtype.name());
            }
        }
        Some(h.finish128())
    }

    /// Decide hash-join build sides on a *substitution-free* plan. For
    /// every inner join, the side with the smaller estimated row count
    /// becomes the build (right) side; the decision is keyed by the
    /// join's structural [`join_swap_key`], which later view substitution
    /// (exact or compensated) preserves. Estimates over a pure plan
    /// depend only on base-table stats, so every driver — and every
    /// view/cache configuration — derives the identical map for the same
    /// logical job. Deciding on the substituted plan instead would let a
    /// `ViewScan`'s *actual* row count flip the comparison wherever one
    /// run reused a view and another computed inline, and a flipped
    /// build side changes join output row order — observable through
    /// order-sensitive float aggregation.
    fn collect_swap_decisions(
        &self,
        node: &Arc<LogicalPlan>,
        scan_stats: ScanStats<'_>,
        out: &mut HashMap<Sig128, bool>,
    ) {
        if let LogicalPlan::Join { left, right, on, kind: JoinKind::Inner } = &**node {
            if let Some(key) = Self::join_swap_key(on, left, right) {
                let l = estimate(left, scan_stats);
                let r = estimate(right, scan_stats);
                out.insert(key, l.rows < r.rows);
            }
        }
        for child in node.children() {
            self.collect_swap_decisions(child, scan_stats, out);
        }
    }

    /// Lower a logical plan to physical operators. Runs the installed
    /// [`PlanVerifier`] over the lowered plan when verification is on.
    /// Build-side decisions are collected from `node` itself — exact when
    /// the plan is substitution-free (tests, scratch engines); `optimize`
    /// collects them from the normalized plan before matching instead.
    pub fn to_physical(
        &self,
        node: &Arc<LogicalPlan>,
        scan_stats: ScanStats<'_>,
    ) -> Result<PhysicalPlan> {
        let mut swaps = HashMap::new();
        self.collect_swap_decisions(node, scan_stats, &mut swaps);
        self.to_physical_with(node, scan_stats, &swaps)
    }

    fn to_physical_with(
        &self,
        node: &Arc<LogicalPlan>,
        scan_stats: ScanStats<'_>,
        swaps: &HashMap<Sig128, bool>,
    ) -> Result<PhysicalPlan> {
        let physical = self.lower(node, scan_stats, swaps)?;
        if let Some(verifier) = self.active_verifier() {
            verifier.verify_physical(&physical)?;
        }
        Ok(physical)
    }

    /// The recursive lowering step (costing probes call this directly so
    /// alternative subplans aren't re-verified mid-search).
    fn lower(
        &self,
        node: &Arc<LogicalPlan>,
        scan_stats: ScanStats<'_>,
        swaps: &HashMap<Sig128, bool>,
    ) -> Result<PhysicalPlan> {
        let est = estimate(node, scan_stats);
        let partitions = self.partitions_for(est);
        Ok(match &**node {
            LogicalPlan::Scan { dataset, guid, schema } => PhysicalPlan::TableScan {
                dataset: dataset.clone(),
                guid: *guid,
                schema: schema.clone(),
                est,
                partitions,
            },
            LogicalPlan::ViewScan { sig, schema, rows, bytes } => PhysicalPlan::ViewScan {
                sig: *sig,
                schema: schema.clone(),
                est: Statistics::accurate(*rows as f64, *bytes as f64),
                partitions,
                fallback: None, // attached post-lowering by `attach_fallbacks`
            },
            LogicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
                predicate: predicate.clone(),
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
                partitions,
            },
            LogicalPlan::Project { exprs, input } => PhysicalPlan::Project {
                exprs: exprs.clone(),
                schema: node.schema()?,
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
                partitions,
            },
            LogicalPlan::Join { left, right, on, kind } => {
                let mut l = self.lower(left, scan_stats, swaps)?;
                let mut r = self.lower(right, scan_stats, swaps)?;
                let mut on = on.clone();
                // The hash build is the right side: for commutative joins,
                // put the smaller estimated input there. The normalizer
                // orders sides by signature (for plan identity), which is
                // arbitrary w.r.t. size — building on the bigger side costs
                // more and, worse for the op-state cache, tends to key the
                // build on the daily-rotating fact instead of the stable
                // dimension. The decision comes from `swaps`, computed on
                // the *pre-substitution* plan (see
                // `collect_swap_decisions`): never cache- or
                // view-state-dependent, so every driver and every
                // cache/reuse configuration lowers the same logical join
                // the same way and join output row order cannot diverge
                // between runs. The executor restores the logical column
                // order for swapped joins, so the swap never leaks into
                // output schemas.
                let swapped = *kind == JoinKind::Inner
                    && Self::join_swap_key(&on, left, right)
                        .is_some_and(|key| swaps.get(&key).copied().unwrap_or(false));
                if swapped {
                    std::mem::swap(&mut l, &mut r);
                    for pair in &mut on {
                        std::mem::swap(&mut pair.0, &mut pair.1);
                    }
                }
                let l_rows = l.est().rows;
                let r_rows = r.est().rows;
                let mut algo = if l_rows.min(r_rows) <= self.cfg.loop_join_threshold {
                    JoinAlgo::Loop
                } else if l_rows.max(r_rows) >= self.cfg.merge_join_threshold {
                    JoinAlgo::Merge
                } else {
                    JoinAlgo::Hash
                };
                if algo == JoinAlgo::Merge {
                    if let Some(warm) = &self.warm_states {
                        // A resident build side collapses the hash join's
                        // dominant term; prefer it over the merge join the
                        // size thresholds would pick, when actually cheaper.
                        let key = crate::exec::opstate::join_build_key(&r, &on);
                        if key.is_some_and(|k| warm.is_warm(k))
                            && self.cfg.cost.hash_join_warm(r_rows, l_rows).total()
                                < self.cfg.cost.merge_join(l_rows, r_rows).total()
                        {
                            algo = JoinAlgo::Hash;
                        }
                    }
                }
                PhysicalPlan::Join {
                    algo,
                    kind: *kind,
                    on: on.clone(),
                    left: Box::new(l),
                    right: Box::new(r),
                    est,
                    partitions,
                    swapped,
                }
            }
            LogicalPlan::Aggregate { group_by, aggs, input } => PhysicalPlan::HashAggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                schema: node.schema()?,
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
                partitions,
            },
            LogicalPlan::Union { inputs } => PhysicalPlan::Union {
                inputs: inputs
                    .iter()
                    .map(|i| self.lower(i, scan_stats, swaps))
                    .collect::<Result<Vec<_>>>()?,
                est,
                partitions,
            },
            LogicalPlan::Sort { keys, input } => PhysicalPlan::Sort {
                keys: keys.clone(),
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
                partitions,
            },
            LogicalPlan::Limit { n, input } => PhysicalPlan::Limit {
                n: *n,
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
            },
            LogicalPlan::Udo { spec, schema, input } => PhysicalPlan::Udo {
                spec: spec.clone(),
                schema: schema.clone(),
                input: Box::new(self.lower(input, scan_stats, swaps)?),
                est,
                partitions,
            },
            LogicalPlan::Materialize { sig, input } => {
                let pair = plan_sig_pair(input, &self.cfg.sig).ok_or_else(|| {
                    CvError::internal("Materialize wrapped an unsignable subexpression")
                })?;
                debug_assert_eq!(pair.strict, *sig);
                PhysicalPlan::Spool {
                    sig: *sig,
                    recurring_sig: pair.recurring,
                    input_guids: input.input_guids(),
                    input: Box::new(self.lower(input, scan_stats, swaps)?),
                    est,
                    partitions,
                }
            }
        })
    }
}

/// True when a plan contains no `ViewScan` or `Materialize` node — i.e. it
/// can be recomputed standalone, without depending on other views.
fn plan_is_pure(plan: &Arc<LogicalPlan>) -> bool {
    !matches!(&**plan, LogicalPlan::ViewScan { .. } | LogicalPlan::Materialize { .. })
        && plan.children().into_iter().all(plan_is_pure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggExpr, AggFunc};
    use crate::plan::JoinKind;
    use cv_common::ids::VersionGuid;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            dataset: name.to_string(),
            guid: VersionGuid(1),
            schema: Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect())
                .unwrap()
                .into_ref(),
        })
    }

    fn sales() -> Arc<LogicalPlan> {
        scan("sales", &[("s_cust", DataType::Int), ("price", DataType::Float)])
    }

    fn customer() -> Arc<LogicalPlan> {
        scan("customer", &[("c_id", DataType::Int), ("seg", DataType::Str)])
    }

    fn scan_stats(name: &str) -> Option<(f64, f64)> {
        match name {
            "sales" => Some((200_000.0, 20_000_000.0)),
            "customer" => Some((10_000.0, 400_000.0)),
            _ => None,
        }
    }

    fn shared_subplan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Join {
            left: sales(),
            right: Arc::new(LogicalPlan::Filter {
                predicate: col("seg").eq(lit("asia")),
                input: customer(),
            }),
            on: vec![("s_cust".into(), "c_id".into())],
            kind: JoinKind::Inner,
        })
    }

    fn query() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Aggregate {
            group_by: vec![(col("s_cust"), "cust".to_string())],
            aggs: vec![AggExpr::new(AggFunc::Avg, col("price"), "avg_price")],
            input: shared_subplan(),
        })
    }

    fn optimizer() -> Optimizer {
        Optimizer::new(OptimizerConfig::default())
    }

    fn shared_sig(opt: &Optimizer) -> Sig128 {
        // Signature of the *normalized* shared subplan — annotations come
        // from workload analysis which sees normalized plans.
        let n = normalize(&shared_subplan(), &opt.cfg.sig).unwrap();
        plan_signature(&n, &opt.cfg.sig, SigMode::Strict).unwrap()
    }

    #[test]
    fn no_annotations_means_plain_plan() {
        let opt = optimizer();
        let out =
            opt.optimize(&query(), &ReuseContext::empty(), &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(out.built_views.is_empty());
        assert!(!out.logical.uses_views());
        assert!(out.est_cost.total() > 0.0);
    }

    #[test]
    fn build_inserts_spool() {
        let opt = optimizer();
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(shared_sig(&opt));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.built_views.len(), 1);
        // A Spool appears in the physical plan.
        let tree = out.physical.display_tree();
        assert!(tree.contains("Spool"), "physical plan:\n{tree}");
    }

    #[test]
    fn match_replaces_subtree_with_viewscan() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        reuse.available.insert(sig, ViewMeta::hot(12_000, 480_000));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.matched_views, vec![sig]);
        assert!(out.logical.uses_views());
        let tree = out.physical.display_tree();
        assert!(tree.contains("ViewScan"), "physical plan:\n{tree}");
        // The base scans are gone.
        assert!(!tree.contains("TableScan"), "physical plan:\n{tree}");
    }

    #[test]
    fn matched_viewscan_carries_recompute_fallback() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        reuse.available.insert(sig, ViewMeta::hot(12_000, 480_000));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();

        fn find_viewscan(p: &PhysicalPlan) -> Option<&PhysicalPlan> {
            if matches!(p, PhysicalPlan::ViewScan { .. }) {
                return Some(p);
            }
            p.children().iter().find_map(|c| find_viewscan(c))
        }
        let scan = find_viewscan(&out.physical).expect("plan has a ViewScan");
        let PhysicalPlan::ViewScan { fallback, .. } = scan else { unreachable!() };
        let fb = fallback.as_ref().expect("matched ViewScan carries a fallback");
        // The fallback is the lowered original subexpression…
        assert!(fb.display_tree().contains("TableScan"));
        // …but stays invisible to the plan's own shape and costing.
        assert!(scan.children().is_empty());
        assert_eq!(scan.node_count(), 1);
        assert!(!out.physical.display_tree().contains("TableScan"));
    }

    #[test]
    fn match_is_cost_gated() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        // A pathological view that is *bigger* than re-reading everything:
        // reuse must be rejected by costing.
        reuse.available.insert(sig, ViewMeta::hot(1 << 30, 1 << 62));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(!out.logical.uses_views());
    }

    #[test]
    fn reused_plan_is_cheaper() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let baseline =
            opt.optimize(&query(), &ReuseContext::empty(), &scan_stats, &mut AlwaysGrant).unwrap();
        let mut reuse = ReuseContext::empty();
        reuse.available.insert(sig, ViewMeta::hot(12_000, 480_000));
        let reused = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(
            reused.est_cost.total() < baseline.est_cost.total(),
            "reuse {} !< baseline {}",
            reused.est_cost.total(),
            baseline.est_cost.total()
        );
    }

    #[test]
    fn max_views_per_job_enforced() {
        let mut cfg = OptimizerConfig::default();
        cfg.max_views_per_job = 0;
        let opt = Optimizer::new(cfg);
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(shared_sig(&opt));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.built_views.is_empty());
    }

    #[test]
    fn lock_denial_prevents_build() {
        struct DenyAll;
        impl BuildCoordinator for DenyAll {
            fn try_acquire(&mut self, _s: Sig128) -> bool {
                false
            }
        }
        let opt = optimizer();
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(shared_sig(&opt));
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut DenyAll).unwrap();
        assert!(out.built_views.is_empty());
        assert!(!out.physical.display_tree().contains("Spool"));
    }

    #[test]
    fn disabled_switches_do_nothing() {
        let mut cfg = OptimizerConfig::default();
        cfg.enable_view_match = false;
        cfg.enable_view_build = false;
        let opt = Optimizer::new(cfg);
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        reuse.available.insert(sig, ViewMeta::hot(10, 100));
        reuse.to_build.insert(sig);
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(out.built_views.is_empty());
    }

    #[test]
    fn available_view_not_rebuilt() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        reuse.available.insert(sig, ViewMeta::hot(12_000, 480_000));
        reuse.to_build.insert(sig);
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        // Matched, and NOT rebuilt (it's already materialized).
        assert_eq!(out.matched_views, vec![sig]);
        assert!(out.built_views.is_empty());
    }

    /// Prover stub for engine-level plumbing tests: the real rules live in
    /// cv-analyzer. Proves any Filter-over-Filter pair with the candidate's
    /// own predicate as residual (sound when the view's predicate is
    /// implied), refuses everything else.
    #[derive(Debug)]
    struct FilterResidualProver;

    impl crate::containment::ContainmentProver for FilterResidualProver {
        fn prove(
            &self,
            view: &Arc<LogicalPlan>,
            candidate: &Arc<LogicalPlan>,
        ) -> std::result::Result<
            crate::containment::ContainmentProof,
            crate::containment::ContainmentRefusal,
        > {
            match (&**view, &**candidate) {
                (LogicalPlan::Filter { .. }, LogicalPlan::Filter { predicate, .. }) => {
                    Ok(crate::containment::ContainmentProof {
                        residual_filter: Some(predicate.clone()),
                        rules: vec!["predicate-implication"],
                        ..Default::default()
                    })
                }
                _ => Err(crate::containment::ContainmentRefusal {
                    code: "CV061",
                    rule: "predicate-implication",
                    reason: "stub refuses non-filter pairs".into(),
                }),
            }
        }
    }

    /// Semantic-match fixture: a view over `customer` filtered to one
    /// segment, and a candidate query filtering to another — same template,
    /// different strict signatures.
    fn semantic_fixture(opt: &Optimizer) -> (Sig128, ReuseContext, Arc<LogicalPlan>) {
        let view_plan = normalize(
            &Arc::new(LogicalPlan::Filter {
                predicate: col("seg").eq(lit("asia")),
                input: customer(),
            }),
            &opt.cfg.sig,
        )
        .unwrap();
        let view_sig = plan_signature(&view_plan, &opt.cfg.sig, SigMode::Strict).unwrap();
        let template = template_signature(&view_plan, &opt.cfg.sig).unwrap();
        let mut reuse = ReuseContext::empty();
        reuse.semantic.insert(
            view_sig,
            SemanticGrant { plan: view_plan, meta: ViewMeta::hot(3_000, 120_000), template },
        );
        let candidate = Arc::new(LogicalPlan::Filter {
            predicate: col("seg").eq(lit("emea")),
            input: customer(),
        });
        (view_sig, reuse, candidate)
    }

    #[test]
    fn semantic_match_substitutes_compensation() {
        let mut opt = optimizer();
        opt.set_prover(Arc::new(FilterResidualProver));
        let (view_sig, reuse, candidate) = semantic_fixture(&opt);
        let normalized = normalize(&candidate, &opt.cfg.sig).unwrap();
        let cand_sig = plan_signature(&normalized, &opt.cfg.sig, SigMode::Strict).unwrap();

        let out = opt.optimize(&candidate, &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.matched_views, vec![view_sig]);
        assert_eq!(out.compensated_views, vec![(view_sig, cand_sig)]);
        // The compensation is a residual Filter over the ViewScan.
        let LogicalPlan::Filter { input, .. } = &*out.logical else {
            panic!("expected residual filter, got {:?}", out.logical);
        };
        assert!(matches!(&**input, LogicalPlan::ViewScan { sig, .. } if *sig == view_sig));
        // The fallback recomputes the *view's* plan under the residual.
        let tree = out.physical.display_tree();
        assert!(tree.contains("ViewScan"), "physical plan:\n{tree}");
    }

    #[test]
    fn semantic_match_requires_switch_and_prover() {
        // Prover installed but switch off → no substitution.
        let mut cfg = OptimizerConfig::default();
        cfg.enable_semantic_match = false;
        let mut opt = Optimizer::new(cfg);
        opt.set_prover(Arc::new(FilterResidualProver));
        let (_, reuse, candidate) = semantic_fixture(&opt);
        let out = opt.optimize(&candidate, &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(out.compensated_views.is_empty());

        // Switch on but no prover installed → no substitution either.
        let opt2 = optimizer();
        let (_, reuse2, candidate2) = semantic_fixture(&opt2);
        let out2 = opt2.optimize(&candidate2, &reuse2, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out2.matched_views.is_empty());
        assert!(!out2.logical.uses_views());
    }

    #[test]
    fn semantic_match_respects_prover_veto() {
        #[derive(Debug)]
        struct RefuseAll;
        impl crate::containment::ContainmentProver for RefuseAll {
            fn prove(
                &self,
                _view: &Arc<LogicalPlan>,
                _candidate: &Arc<LogicalPlan>,
            ) -> std::result::Result<
                crate::containment::ContainmentProof,
                crate::containment::ContainmentRefusal,
            > {
                Err(crate::containment::ContainmentRefusal {
                    code: "CV061",
                    rule: "predicate-implication",
                    reason: "always refuse".into(),
                })
            }
        }
        let mut opt = optimizer();
        opt.set_prover(Arc::new(RefuseAll));
        let (_, reuse, candidate) = semantic_fixture(&opt);
        let out = opt.optimize(&candidate, &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(!out.logical.uses_views());
    }

    #[test]
    fn semantic_match_is_cost_gated() {
        let mut opt = optimizer();
        opt.set_prover(Arc::new(FilterResidualProver));
        let (view_sig, mut reuse, candidate) = semantic_fixture(&opt);
        reuse.semantic.get_mut(&view_sig).unwrap().meta = ViewMeta::hot(1 << 30, 1 << 62);
        let out = opt.optimize(&candidate, &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert!(out.matched_views.is_empty());
        assert!(!out.logical.uses_views());
    }

    #[test]
    fn build_captures_pure_defining_plan() {
        let opt = optimizer();
        let sig = shared_sig(&opt);
        let mut reuse = ReuseContext::empty();
        reuse.to_build.insert(sig);
        let out = opt.optimize(&query(), &reuse, &scan_stats, &mut AlwaysGrant).unwrap();
        assert_eq!(out.built_plans.len(), 1);
        let (plan_sig, plan) = &out.built_plans[0];
        assert_eq!(*plan_sig, sig);
        assert_eq!(plan_signature(plan, &opt.cfg.sig, SigMode::Strict), Some(sig));
        assert!(super::plan_is_pure(plan));
    }

    #[test]
    fn join_algo_selection() {
        let opt = optimizer();
        // customer(10k) ⋈ sales(200k) with merge threshold 120k → Merge.
        let big = shared_subplan();
        let phys = opt.to_physical(&normalize(&big, &opt.cfg.sig).unwrap(), &scan_stats).unwrap();
        let counts = phys.join_algo_counts();
        assert_eq!(counts.total(), 1);
        assert_eq!(counts.merge, 1);

        // Tiny side → loop join.
        let tiny_stats = |name: &str| match name {
            "sales" => Some((100.0, 10_000.0)),
            "customer" => Some((10.0, 400.0)),
            _ => None,
        };
        let phys2 = opt.to_physical(&normalize(&big, &opt.cfg.sig).unwrap(), &tiny_stats).unwrap();
        assert_eq!(phys2.join_algo_counts().loop_, 1);

        // Mid-size both sides → hash join.
        let mid_stats = |name: &str| match name {
            "sales" => Some((50_000.0, 5_000_000.0)),
            "customer" => Some((5_000.0, 200_000.0)),
            _ => None,
        };
        let phys3 = opt.to_physical(&normalize(&big, &opt.cfg.sig).unwrap(), &mid_stats).unwrap();
        assert_eq!(phys3.join_algo_counts().hash, 1);
    }

    #[test]
    fn partition_counts_track_estimates() {
        let opt = optimizer();
        let phys =
            opt.to_physical(&normalize(&query(), &opt.cfg.sig).unwrap(), &scan_stats).unwrap();
        // sales scan: 200k rows / 2.5k per partition = 80 partitions.
        fn find_scan(p: &PhysicalPlan) -> Option<usize> {
            if let PhysicalPlan::TableScan { dataset, partitions, .. } = p {
                if dataset == "sales" {
                    return Some(*partitions);
                }
            }
            p.children().iter().find_map(|c| find_scan(c))
        }
        assert_eq!(find_scan(&phys), Some(80));
    }
}
