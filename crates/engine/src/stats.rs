//! Cardinality and size estimation.
//!
//! The estimator is *deliberately imperfect*, in the specific way the paper
//! describes (§3.5): over big-data workloads SCOPE "often ends up
//! overestimating cardinalities and thus over-partitioning the intermediate
//! outputs". Estimated row counts drive stage partition counts in the
//! cluster simulator, so this over-estimation directly produces the
//! container-count inflation that CloudViews then avoids — when a view is
//! matched, the *actual* observed statistics of the materialized result
//! replace the estimates for the rest of the plan (§2.4 "accurate cost
//! estimates").

use crate::expr::{BinOp, ScalarExpr};
use crate::plan::{JoinKind, LogicalPlan};

/// Estimated (or observed) properties of an operator output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Statistics {
    pub rows: f64,
    pub bytes: f64,
    /// True when the numbers come from an actual past execution (base table
    /// scans, materialized views) rather than heuristics.
    pub accurate: bool,
}

impl Statistics {
    pub fn new(rows: f64, bytes: f64) -> Statistics {
        Statistics { rows: rows.max(0.0), bytes: bytes.max(0.0), accurate: false }
    }

    pub fn accurate(rows: f64, bytes: f64) -> Statistics {
        Statistics { rows: rows.max(0.0), bytes: bytes.max(0.0), accurate: true }
    }

    pub fn row_width(&self) -> f64 {
        if self.rows > 0.0 {
            self.bytes / self.rows
        } else {
            32.0
        }
    }
}

/// Selectivity heuristics per predicate shape — standard textbook constants,
/// wrong in the standard textbook ways.
pub fn predicate_selectivity(pred: &ScalarExpr) -> f64 {
    match pred {
        ScalarExpr::Binary { op: BinOp::And, left, right } => {
            predicate_selectivity(left) * predicate_selectivity(right)
        }
        ScalarExpr::Binary { op: BinOp::Or, left, right } => {
            let l = predicate_selectivity(left);
            let r = predicate_selectivity(right);
            (l + r - l * r).min(1.0)
        }
        ScalarExpr::Binary { op: BinOp::Eq, .. } => 0.08,
        ScalarExpr::Binary { op: BinOp::NotEq, .. } => 0.9,
        ScalarExpr::Binary { op: BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq, .. } => 0.35,
        ScalarExpr::Unary { op: crate::expr::UnOp::IsNull, .. } => 0.05,
        ScalarExpr::Unary { op: crate::expr::UnOp::IsNotNull, .. } => 0.95,
        ScalarExpr::Unary { op: crate::expr::UnOp::Not, expr } => 1.0 - predicate_selectivity(expr),
        _ => 0.25,
    }
}

/// Source of base-table statistics (rows, bytes); `None` for unknown tables.
pub type ScanStats<'a> = &'a dyn Fn(&str) -> Option<(f64, f64)>;

/// How much joins are over-estimated. >1 reproduces the §3.5
/// over-partitioning pathology; an ablation bench sweeps this.
pub const JOIN_OVERESTIMATE: f64 = 1.6;

/// Estimate the output statistics of a logical plan node.
pub fn estimate(plan: &LogicalPlan, scan_stats: ScanStats<'_>) -> Statistics {
    match plan {
        LogicalPlan::Scan { dataset, .. } => match scan_stats(dataset) {
            Some((rows, bytes)) => Statistics::accurate(rows, bytes),
            None => Statistics::new(1_000.0, 100_000.0),
        },
        LogicalPlan::ViewScan { rows, bytes, .. } => {
            Statistics::accurate(*rows as f64, *bytes as f64)
        }
        LogicalPlan::Filter { predicate, input } => {
            let in_stats = estimate(input, scan_stats);
            let sel = predicate_selectivity(predicate);
            Statistics::new(in_stats.rows * sel, in_stats.bytes * sel)
        }
        LogicalPlan::Project { exprs, input } => {
            let in_stats = estimate(input, scan_stats);
            // Width scales with the number of output expressions relative to
            // a nominal 8-column input.
            let width_scale = (exprs.len() as f64 / 8.0).clamp(0.125, 2.0);
            Statistics::new(in_stats.rows, in_stats.bytes * width_scale)
        }
        LogicalPlan::Join { left, right, kind, .. } => {
            let l = estimate(left, scan_stats);
            let r = estimate(right, scan_stats);
            match kind {
                JoinKind::Inner => {
                    // FK-join heuristic with a deliberate over-estimate.
                    let rows = (l.rows * r.rows / l.rows.min(r.rows).max(1.0)) * JOIN_OVERESTIMATE;
                    let width = l.row_width() + r.row_width();
                    Statistics::new(rows, rows * width)
                }
                JoinKind::Left => {
                    let rows = l
                        .rows
                        .max(l.rows * r.rows / l.rows.min(r.rows).max(1.0) * JOIN_OVERESTIMATE);
                    let width = l.row_width() + r.row_width();
                    Statistics::new(rows, rows * width)
                }
                JoinKind::Semi => Statistics::new(l.rows * 0.6, l.bytes * 0.6),
            }
        }
        LogicalPlan::Aggregate { group_by, input, .. } => {
            let in_stats = estimate(input, scan_stats);
            let rows = if group_by.is_empty() {
                1.0
            } else {
                // #groups ≈ rows^0.75 — over-estimates for low-cardinality
                // keys, which is exactly the production failure mode.
                in_stats.rows.powf(0.75).max(1.0)
            };
            Statistics::new(rows, rows * in_stats.row_width())
        }
        LogicalPlan::Union { inputs } => {
            let mut rows = 0.0;
            let mut bytes = 0.0;
            for i in inputs {
                let s = estimate(i, scan_stats);
                rows += s.rows;
                bytes += s.bytes;
            }
            Statistics::new(rows, bytes)
        }
        LogicalPlan::Sort { input, .. } | LogicalPlan::Materialize { input, .. } => {
            let s = estimate(input, scan_stats);
            Statistics::new(s.rows, s.bytes)
        }
        LogicalPlan::Limit { n, input } => {
            let s = estimate(input, scan_stats);
            let rows = s.rows.min(*n as f64);
            Statistics::new(rows, rows * s.row_width())
        }
        LogicalPlan::Udo { input, .. } => {
            let s = estimate(input, scan_stats);
            Statistics::new(s.rows, s.bytes * 1.2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use cv_common::ids::VersionGuid;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::DataType;
    use std::sync::Arc;

    fn scan(name: &str) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            dataset: name.to_string(),
            guid: VersionGuid(1),
            schema: Schema::new(vec![Field::new("k", DataType::Int)]).unwrap().into_ref(),
        })
    }

    fn stats(name: &str) -> Option<(f64, f64)> {
        match name {
            "big" => Some((100_000.0, 10_000_000.0)),
            "small" => Some((1_000.0, 50_000.0)),
            _ => None,
        }
    }

    #[test]
    fn scan_stats_are_accurate() {
        let s = estimate(&scan("big"), &stats);
        assert_eq!(s.rows, 100_000.0);
        assert!(s.accurate);
        let u = estimate(&scan("unknown"), &stats);
        assert!(!u.accurate);
    }

    #[test]
    fn filter_reduces_by_selectivity() {
        let f = LogicalPlan::Filter { predicate: col("k").eq(lit(1)), input: scan("big") };
        let s = estimate(&f, &stats);
        assert!(s.rows < 100_000.0);
        assert!((s.rows - 8_000.0).abs() < 1.0);
        assert!(!s.accurate);
    }

    #[test]
    fn conjunction_multiplies_disjunction_adds() {
        let p_and = col("k").eq(lit(1)).and(col("k").gt(lit(0)));
        let p_or = col("k").eq(lit(1)).or(col("k").gt(lit(0)));
        assert!(predicate_selectivity(&p_and) < predicate_selectivity(&p_or));
        assert!(predicate_selectivity(&p_or) <= 1.0);
    }

    #[test]
    fn join_overestimates() {
        let j = LogicalPlan::Join {
            left: scan("big"),
            right: scan("small"),
            on: vec![("k".into(), "k".into())],
            kind: JoinKind::Inner,
        };
        let s = estimate(&j, &stats);
        // FK estimate would be ~small side scaled; over-estimate factor on top.
        assert!(s.rows > 100_000.0, "expected over-estimate, got {}", s.rows);
        assert!(s.rows < 100_000.0 * 2.0);
    }

    #[test]
    fn aggregate_and_limit() {
        let a = LogicalPlan::Aggregate {
            group_by: vec![(col("k"), "k".to_string())],
            aggs: vec![],
            input: scan("big"),
        };
        let s = estimate(&a, &stats);
        assert!(s.rows < 100_000.0);
        assert!(s.rows > 1.0);

        let global = LogicalPlan::Aggregate {
            group_by: vec![],
            aggs: vec![crate::expr::AggExpr::count_star("n")],
            input: scan("big"),
        };
        assert_eq!(estimate(&global, &stats).rows, 1.0);

        let l = LogicalPlan::Limit { n: 10, input: scan("big") };
        assert_eq!(estimate(&l, &stats).rows, 10.0);
    }

    #[test]
    fn viewscan_is_accurate() {
        let v = LogicalPlan::ViewScan {
            sig: cv_common::Sig128(1),
            schema: Schema::new(vec![Field::new("k", DataType::Int)]).unwrap().into_ref(),
            rows: 42,
            bytes: 420,
        };
        let s = estimate(&v, &stats);
        assert!(s.accurate);
        assert_eq!(s.rows, 42.0);
    }

    #[test]
    fn union_sums() {
        let u = LogicalPlan::Union { inputs: vec![scan("big"), scan("small")] };
        let s = estimate(&u, &stats);
        assert_eq!(s.rows, 101_000.0);
    }
}
