//! Strict and recurring subexpression signatures (paper §2.3, Fig. 5).
//!
//! * The **strict signature** uniquely captures a subexpression *instance*,
//!   including the exact input dataset versions (GUIDs) and parameter
//!   values. Views are stored and matched by strict signature: equality
//!   means "same logical computation over the same inputs", so matching is a
//!   hash lookup instead of a view-containment check (§2.4 "lightweight view
//!   matching").
//! * The **recurring signature** discards time-varying attributes — input
//!   GUIDs and `@param` values — and therefore stays stable across daily
//!   instances of a recurring job. Workload analysis selects views by
//!   recurring signature; the runtime then materializes each day's strict
//!   instance just in time.
//!
//! Signatures refuse to cover non-deterministic UDOs/functions and UDOs with
//! over-deep library chains (§4 "signature correctness"): such
//! subexpressions (and everything above them) return `None` and are simply
//! never reused. The engine runtime version salts every signature, so a
//! runtime upgrade atomically invalidates all existing views (§4 "impact of
//! changed signatures").

use crate::plan::LogicalPlan;
use cv_common::hash::{Sig128, StableHasher};
use std::sync::Arc;

/// Which signature flavour to compute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigMode {
    Strict,
    Recurring,
}

/// Signature computation parameters.
#[derive(Clone, Debug)]
pub struct SignatureConfig {
    /// SCOPE runtime version; part of the hash domain.
    pub runtime_version: String,
    /// Maximum UDO library-chain length the signer will traverse.
    pub max_udo_chain: usize,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig { runtime_version: "scope-v1".to_string(), max_udo_chain: 8 }
    }
}

impl SignatureConfig {
    pub fn with_runtime(version: impl Into<String>) -> SignatureConfig {
        SignatureConfig { runtime_version: version.into(), ..Default::default() }
    }
}

/// Both signatures of one signable subexpression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigPair {
    pub strict: Sig128,
    pub recurring: Sig128,
}

/// One enumerated subexpression of a plan.
#[derive(Clone, Debug)]
pub struct SubexprInfo {
    pub plan: Arc<LogicalPlan>,
    pub strict: Sig128,
    pub recurring: Sig128,
    /// Template signature (see [`template_signature`]): the node's own
    /// operator parameters abstracted away, children pinned by strict
    /// signature. Candidate-discovery key for semantic view matching.
    pub template: Sig128,
    /// Height of the subtree (leaf scan = 1).
    pub height: usize,
    pub node_count: usize,
    /// True for the plan root.
    pub is_root: bool,
    pub kind: &'static str,
}

/// Compute the signature of a whole plan in the given mode.
/// `None` means the plan is unsignable (non-determinism somewhere inside).
pub fn plan_signature(
    plan: &Arc<LogicalPlan>,
    cfg: &SignatureConfig,
    mode: SigMode,
) -> Option<Sig128> {
    sig_walk(plan, cfg, &mut |_, _, _| {}).map(|p| match mode {
        SigMode::Strict => p.strict,
        SigMode::Recurring => p.recurring,
    })
}

/// Compute both signatures at once.
pub fn plan_sig_pair(plan: &Arc<LogicalPlan>, cfg: &SignatureConfig) -> Option<SigPair> {
    sig_walk(plan, cfg, &mut |_, _, _| {})
}

/// Enumerate every *signable* subexpression of the plan, bottom-up.
pub fn enumerate_subexpressions(
    plan: &Arc<LogicalPlan>,
    cfg: &SignatureConfig,
) -> Vec<SubexprInfo> {
    let mut out: Vec<SubexprInfo> = Vec::new();
    let root_ptr = Arc::as_ptr(plan);
    sig_walk(plan, cfg, &mut |node: &Arc<LogicalPlan>, pair: SigPair, height: usize| {
        out.push(SubexprInfo {
            plan: node.clone(),
            strict: pair.strict,
            recurring: pair.recurring,
            template: template_signature(node, cfg).unwrap_or(pair.strict),
            height,
            node_count: node.node_count(),
            is_root: std::ptr::eq(Arc::as_ptr(node), root_ptr),
            kind: node.kind_name(),
        });
    });
    out
}

/// Bottom-up walk computing `(strict, recurring)` pairs, invoking `visit`
/// for each signable node with its pair and height. Returns the root pair.
fn sig_walk(
    plan: &Arc<LogicalPlan>,
    cfg: &SignatureConfig,
    visit: &mut impl FnMut(&Arc<LogicalPlan>, SigPair, usize),
) -> Option<SigPair> {
    fn inner(
        plan: &Arc<LogicalPlan>,
        cfg: &SignatureConfig,
        visit: &mut impl FnMut(&Arc<LogicalPlan>, SigPair, usize),
    ) -> Option<(SigPair, usize)> {
        let mut child_pairs = Vec::new();
        let mut height = 0usize;
        let mut signable = true;
        for c in plan.children() {
            match inner(c, cfg, visit) {
                Some((pair, h)) => {
                    child_pairs.push(pair);
                    height = height.max(h);
                }
                None => signable = false,
            }
        }
        if !signable {
            return None;
        }
        let pair = node_sig(plan, cfg, &child_pairs)?;
        let height = height + 1;
        visit(plan, pair, height);
        Some((pair, height))
    }
    inner(plan, cfg, visit).map(|(p, _)| p)
}

/// Hash one node given its children's signature pairs.
fn node_sig(plan: &LogicalPlan, cfg: &SignatureConfig, children: &[SigPair]) -> Option<SigPair> {
    let mut strict = StableHasher::with_domain(&format!("plan-sig:{}", cfg.runtime_version));
    let mut recurring =
        StableHasher::with_domain(&format!("plan-sig-recurring:{}", cfg.runtime_version));
    for c in children {
        strict.write_sig(c.strict);
        recurring.write_sig(c.recurring);
    }
    let both = |s: &mut StableHasher, r: &mut StableHasher, f: &dyn Fn(&mut StableHasher)| {
        f(s);
        f(r);
    };
    match plan {
        LogicalPlan::Scan { dataset, guid, schema } => {
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(0);
                h.write_str(dataset);
                schema.stable_hash(h);
            });
            // Only the strict flavour pins the input version.
            strict.write_sig(guid.as_sig());
        }
        LogicalPlan::Filter { predicate, .. } => {
            if !predicate.is_deterministic() {
                return None;
            }
            strict.write_u8(1);
            recurring.write_u8(1);
            predicate.stable_hash(&mut strict, true);
            predicate.stable_hash(&mut recurring, false);
        }
        LogicalPlan::Project { exprs, .. } => {
            strict.write_u8(2);
            recurring.write_u8(2);
            for (e, name) in exprs {
                if !e.is_deterministic() {
                    return None;
                }
                e.stable_hash(&mut strict, true);
                strict.write_str(name);
                e.stable_hash(&mut recurring, false);
                recurring.write_str(name);
            }
        }
        LogicalPlan::Join { on, kind, .. } => {
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(3);
                h.write_u8(kind.ordinal());
                h.write_u64(on.len() as u64);
                for (l, r) in on {
                    h.write_str(l);
                    h.write_str(r);
                }
            });
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            strict.write_u8(4);
            recurring.write_u8(4);
            for (e, name) in group_by {
                if !e.is_deterministic() {
                    return None;
                }
                e.stable_hash(&mut strict, true);
                strict.write_str(name);
                e.stable_hash(&mut recurring, false);
                recurring.write_str(name);
            }
            for a in aggs {
                if !a.is_deterministic() {
                    return None;
                }
                a.stable_hash(&mut strict, true);
                a.stable_hash(&mut recurring, false);
            }
        }
        LogicalPlan::Union { inputs } => {
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(5);
                h.write_u64(inputs.len() as u64);
            });
        }
        LogicalPlan::Sort { keys, .. } => {
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(6);
                for (k, asc) in keys {
                    h.write_str(k);
                    h.write_bool(*asc);
                }
            });
        }
        LogicalPlan::Limit { n, .. } => {
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(7);
                h.write_u64(*n as u64);
            });
        }
        LogicalPlan::Udo { spec, .. } => {
            // The §4 policy: skip reuse on non-determinism or over-deep
            // dependency chains rather than risk wrong results or slow
            // compilations.
            if !spec.deterministic || spec.library_chain.len() > cfg.max_udo_chain {
                return None;
            }
            both(&mut strict, &mut recurring, &|h| {
                h.write_u8(8);
                spec.stable_hash(h);
            });
        }
        LogicalPlan::ViewScan { sig, .. } => {
            // A view scan *is* the computation it replaced: reuse the
            // original signature so nested matching keeps working.
            return Some(SigPair { strict: *sig, recurring: *sig });
        }
        LogicalPlan::Materialize { .. } => {
            // Materialize is transparent: it computes exactly its input.
            return children.first().copied();
        }
    }
    Some(SigPair { strict: strict.finish128(), recurring: recurring.finish128() })
}

/// The **template signature**: a one-level relaxation of the strict
/// signature used for semantic view-match candidate discovery (the
/// cheap-to-expensive cascade of GEqO — filter by template, then prove
/// containment, then verify). For `Filter`/`Project`/`Aggregate` nodes the
/// node's own operator parameters (predicate, projection list, group
/// keys/aggregates) are abstracted away; the children stay pinned by their
/// *strict* signatures, so two plans sharing a template compute over
/// byte-identical inputs and differ only in the one operator the
/// containment prover reasons about. Every other node kind templates to
/// its strict signature (no relaxation). `None` iff the node is
/// unsignable — unsignable subexpressions are never reused, semantically
/// or otherwise.
pub fn template_signature(plan: &Arc<LogicalPlan>, cfg: &SignatureConfig) -> Option<Sig128> {
    // The node itself must be signable (determinism policy, §4) before any
    // relaxation is allowed.
    plan_signature(plan, cfg, SigMode::Strict)?;
    let tag = match &**plan {
        LogicalPlan::Filter { .. } => 1u8,
        LogicalPlan::Project { .. } => 2,
        LogicalPlan::Aggregate { .. } => 4,
        _ => return plan_signature(plan, cfg, SigMode::Strict),
    };
    let mut h = StableHasher::with_domain(&format!("plan-template:{}", cfg.runtime_version));
    h.write_u8(tag);
    for c in plan.children() {
        h.write_sig(plan_signature(c, cfg, SigMode::Strict)?);
    }
    Some(h.finish128())
}

/// A deterministic ordering key for plans, used by the normalizer to order
/// commutative join inputs. Falls back to a structural hash when the plan is
/// unsignable.
pub fn order_key(plan: &Arc<LogicalPlan>, cfg: &SignatureConfig) -> Sig128 {
    match plan_signature(plan, cfg, SigMode::Strict) {
        Some(s) => s,
        None => Sig128::of_str(&plan.display_tree()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, param, AggExpr, AggFunc, FuncKind, ScalarExpr};
    use crate::plan::JoinKind;
    use crate::udo::UdoSpec;
    use cv_common::ids::VersionGuid;
    use cv_data::schema::{Field, Schema};
    use cv_data::value::{DataType, Value};

    fn scan(name: &str, guid: u128) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            dataset: name.to_string(),
            guid: VersionGuid(guid),
            schema: Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Float),
                Field::new("seg", DataType::Str),
            ])
            .unwrap()
            .into_ref(),
        })
    }

    fn cfg() -> SignatureConfig {
        SignatureConfig::default()
    }

    fn filter(input: Arc<LogicalPlan>, pred: ScalarExpr) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Filter { predicate: pred, input })
    }

    #[test]
    fn identical_plans_same_signature() {
        let p1 = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let p2 = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        assert_eq!(
            plan_signature(&p1, &cfg(), SigMode::Strict),
            plan_signature(&p2, &cfg(), SigMode::Strict)
        );
    }

    #[test]
    fn strict_differs_across_input_versions_recurring_does_not() {
        let day1 = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let day2 = filter(scan("sales", 2), col("seg").eq(lit("asia")));
        assert_ne!(
            plan_signature(&day1, &cfg(), SigMode::Strict),
            plan_signature(&day2, &cfg(), SigMode::Strict)
        );
        assert_eq!(
            plan_signature(&day1, &cfg(), SigMode::Recurring),
            plan_signature(&day2, &cfg(), SigMode::Recurring)
        );
    }

    #[test]
    fn params_strict_vs_recurring() {
        let d1 = filter(scan("sales", 1), col("k").gt_eq(param("cutoff", Value::Int(10))));
        let d2 = filter(scan("sales", 1), col("k").gt_eq(param("cutoff", Value::Int(20))));
        assert_ne!(
            plan_signature(&d1, &cfg(), SigMode::Strict),
            plan_signature(&d2, &cfg(), SigMode::Strict)
        );
        assert_eq!(
            plan_signature(&d1, &cfg(), SigMode::Recurring),
            plan_signature(&d2, &cfg(), SigMode::Recurring)
        );
    }

    #[test]
    fn different_predicates_different_signatures() {
        let a = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let b = filter(scan("sales", 1), col("seg").eq(lit("emea")));
        assert_ne!(
            plan_signature(&a, &cfg(), SigMode::Strict),
            plan_signature(&b, &cfg(), SigMode::Strict)
        );
    }

    #[test]
    fn runtime_version_salts_everything() {
        let p = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let v1 = plan_signature(&p, &SignatureConfig::with_runtime("scope-v1"), SigMode::Strict);
        let v2 = plan_signature(&p, &SignatureConfig::with_runtime("scope-v2"), SigMode::Strict);
        assert_ne!(v1, v2);
    }

    #[test]
    fn nondeterministic_expr_unsignable() {
        let nd = ScalarExpr::Func { func: FuncKind::RandomNext, args: vec![] };
        let p = filter(scan("sales", 1), col("k").gt(nd));
        assert_eq!(plan_signature(&p, &cfg(), SigMode::Strict), None);
        // And the taint propagates upward…
        let parent = Arc::new(LogicalPlan::Limit { n: 5, input: p });
        assert_eq!(plan_signature(&parent, &cfg(), SigMode::Strict), None);
    }

    #[test]
    fn udo_policies() {
        let schema = scan("sales", 1).schema().unwrap();
        let mk = |spec: UdoSpec| {
            Arc::new(LogicalPlan::Udo { spec, schema: schema.clone(), input: scan("sales", 1) })
        };
        // Deterministic shallow chain: signable.
        assert!(plan_signature(&mk(UdoSpec::new("f")), &cfg(), SigMode::Strict).is_some());
        // Non-deterministic UDO: unsignable.
        assert!(plan_signature(&mk(UdoSpec::new("f").nondeterministic()), &cfg(), SigMode::Strict)
            .is_none());
        // Over-deep chain: unsignable.
        let deep: Vec<String> = (0..20).map(|i| format!("lib{i}")).collect();
        assert!(plan_signature(&mk(UdoSpec::new("f").with_chain(deep)), &cfg(), SigMode::Strict)
            .is_none());
        // Version bump changes the signature.
        let s1 = plan_signature(&mk(UdoSpec::new("f")), &cfg(), SigMode::Strict);
        let s2 = plan_signature(&mk(UdoSpec::new("f").with_version(2)), &cfg(), SigMode::Strict);
        assert_ne!(s1, s2);
    }

    #[test]
    fn enumerate_lists_all_signable_nodes() {
        let join = Arc::new(LogicalPlan::Join {
            left: filter(scan("sales", 1), col("seg").eq(lit("asia"))),
            right: scan("customer", 2),
            on: vec![("k".to_string(), "k".to_string())],
            kind: JoinKind::Inner,
        });
        let agg = Arc::new(LogicalPlan::Aggregate {
            group_by: vec![(col("seg"), "seg".to_string())],
            aggs: vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            input: join,
        });
        // Schema conflict: both scans expose k/v/seg. Use semi join instead.
        // (kept inner: enumerate doesn't validate schemas)
        let subs = enumerate_subexpressions(&agg, &cfg());
        assert_eq!(subs.len(), 5); // scan, filter, scan, join, aggregate
        let root: Vec<_> = subs.iter().filter(|s| s.is_root).collect();
        assert_eq!(root.len(), 1);
        assert_eq!(root[0].kind, "Aggregate");
        // Heights are consistent: root has the max height.
        let max_h = subs.iter().map(|s| s.height).max().unwrap();
        assert_eq!(root[0].height, max_h);
        // All signatures are distinct here.
        let uniq: std::collections::HashSet<_> = subs.iter().map(|s| s.strict).collect();
        assert_eq!(uniq.len(), subs.len());
    }

    #[test]
    fn shared_subexpressions_across_plans_collide() {
        // Two different queries over the same filtered scan share the
        // filter subexpression signature — the core CloudViews observation.
        let shared1 = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let shared2 = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let q1 = Arc::new(LogicalPlan::Limit { n: 10, input: shared1 });
        let q2 = Arc::new(LogicalPlan::Aggregate {
            group_by: vec![],
            aggs: vec![AggExpr::count_star("n")],
            input: shared2,
        });
        let subs1 = enumerate_subexpressions(&q1, &cfg());
        let subs2 = enumerate_subexpressions(&q2, &cfg());
        let sigs1: std::collections::HashSet<_> = subs1.iter().map(|s| s.strict).collect();
        let common: Vec<_> = subs2.iter().filter(|s| sigs1.contains(&s.strict)).collect();
        // scan + filter collide; roots differ.
        assert_eq!(common.len(), 2);
    }

    #[test]
    fn materialize_is_signature_transparent() {
        let base = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let sig = plan_signature(&base, &cfg(), SigMode::Strict).unwrap();
        let mat = Arc::new(LogicalPlan::Materialize { sig, input: base });
        assert_eq!(plan_signature(&mat, &cfg(), SigMode::Strict), Some(sig));
    }

    #[test]
    fn viewscan_carries_replaced_signature() {
        let base = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let sig = plan_signature(&base, &cfg(), SigMode::Strict).unwrap();
        let vs = Arc::new(LogicalPlan::ViewScan {
            sig,
            schema: base.schema().unwrap(),
            rows: 1,
            bytes: 1,
        });
        assert_eq!(plan_signature(&vs, &cfg(), SigMode::Strict), Some(sig));
    }

    #[test]
    fn template_abstracts_operator_params_only() {
        // Different predicates over the same scan → same template,
        // different strict signatures.
        let a = filter(scan("sales", 1), col("seg").eq(lit("asia")));
        let b = filter(scan("sales", 1), col("seg").eq(lit("asia")).and(col("k").gt(lit(5))));
        assert_eq!(template_signature(&a, &cfg()), template_signature(&b, &cfg()));
        assert_ne!(
            plan_signature(&a, &cfg(), SigMode::Strict),
            plan_signature(&b, &cfg(), SigMode::Strict)
        );
        // Different input version → different template (children stay
        // pinned by strict signature).
        let c = filter(scan("sales", 2), col("seg").eq(lit("asia")));
        assert_ne!(template_signature(&a, &cfg()), template_signature(&c, &cfg()));
        // Different node kind over the same input → different template.
        let agg = Arc::new(LogicalPlan::Aggregate {
            group_by: vec![(col("seg"), "seg".to_string())],
            aggs: vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            input: scan("sales", 1),
        });
        assert_ne!(template_signature(&a, &cfg()), template_signature(&agg, &cfg()));
        // Non-relaxable kinds template to their strict signature.
        let lim = Arc::new(LogicalPlan::Limit { n: 5, input: scan("sales", 1) });
        assert_eq!(template_signature(&lim, &cfg()), plan_signature(&lim, &cfg(), SigMode::Strict));
        // Unsignable nodes have no template.
        let nd = ScalarExpr::Func { func: FuncKind::RandomNext, args: vec![] };
        let un = filter(scan("sales", 1), col("k").gt(nd));
        assert_eq!(template_signature(&un, &cfg()), None);
    }

    #[test]
    fn viewscan_is_template_transparent() {
        // A ViewScan standing in for a subexpression templates like the
        // subexpression itself, so view plans whose inputs were themselves
        // replaced by views still discover candidates.
        let base = scan("sales", 1);
        let base_sig = plan_signature(&base, &cfg(), SigMode::Strict).unwrap();
        let vs = Arc::new(LogicalPlan::ViewScan {
            sig: base_sig,
            schema: base.schema().unwrap(),
            rows: 1,
            bytes: 1,
        });
        let direct = filter(base, col("seg").eq(lit("asia")));
        let via_view = filter(vs, col("seg").eq(lit("emea")));
        assert_eq!(template_signature(&direct, &cfg()), template_signature(&via_view, &cfg()));
    }

    #[test]
    fn order_key_total_over_unsignable_plans() {
        let nd = ScalarExpr::Func { func: FuncKind::Now, args: vec![] };
        let p = filter(scan("sales", 1), col("k").gt(nd.cast(DataType::Int)));
        // Unsignable but still orderable.
        let k1 = order_key(&p, &cfg());
        let k2 = order_key(&p, &cfg());
        assert_eq!(k1, k2);
    }
}
