//! Observability hooks for the executor and optimizer.
//!
//! The engine stays dependency-free of any concrete tracing/metrics stack:
//! it emits events through this [`ObsSink`] trait, `None`/no-op by default.
//! Adapters that bridge events onto `cv_obs::{Tracer, Metrics}` live in the
//! driver crate (`cv-workload`), mirroring how plan verification plugs in
//! through `PlanVerifier`.
//!
//! Everything reported here is deterministic for a fixed seed (operator
//! kinds, row/byte counts, matched/built signatures) **except** the `ns`
//! wall-clock argument — sinks must keep timing out of any output that is
//! compared across runs or worker counts.

use cv_common::hash::Sig128;
use std::fmt;

/// Event sink for engine internals. All methods default to no-ops, so a
/// sink implements only what it consumes. Must be `Send + Sync` (the
/// service pool invokes executor hooks from worker threads) and `Debug`
/// (the optimizer embeds the sink and derives `Debug`, like
/// `PlanVerifier`).
pub trait ObsSink: fmt::Debug + Send + Sync {
    /// An executor operator is about to run (preorder, before children).
    fn op_started(&self, kind: &'static str) {
        let _ = kind;
    }

    /// An executor operator finished (postorder, after children), with its
    /// output row/byte counts and elapsed wall-clock nanoseconds.
    fn op_finished(&self, kind: &'static str, rows: u64, bytes: u64, ns: u64) {
        let _ = (kind, rows, bytes, ns);
    }

    /// The optimizer rewrote a subexpression to scan a materialized view.
    fn view_matched(&self, sig: Sig128) {
        let _ = sig;
    }

    /// The optimizer inserted a spool to build a view at this signature.
    fn view_build_inserted(&self, sig: Sig128) {
        let _ = sig;
    }

    /// Semantic view-match cascade: a template-compatible view was found
    /// for a subexpression that missed exact matching, and the containment
    /// prover is about to run.
    fn semantic_considered(&self, sig: Sig128) {
        let _ = sig;
    }

    /// Semantic view-match cascade: containment was proven and the
    /// compensated substitution was accepted.
    fn semantic_proven(&self, sig: Sig128) {
        let _ = sig;
    }

    /// Semantic view-match cascade: the prover refused with the given
    /// diagnostic code (CV06x) and the candidate was vetoed.
    fn semantic_vetoed(&self, sig: Sig128, code: &'static str) {
        let _ = (sig, code);
    }

    /// A pipeline-breaker state (`join_build`, `agg_state`, `sort_run`) was
    /// restored from the operator-state cache instead of rebuilt.
    fn op_state_hit(&self, kind: &'static str, key: Sig128) {
        let _ = (kind, key);
    }

    /// A breaker key was derivable but no state was resident; the build ran
    /// inline.
    fn op_state_miss(&self, kind: &'static str) {
        let _ = kind;
    }

    /// This execution built a breaker state and published it to the cache.
    fn op_state_published(&self, kind: &'static str, bytes: u64) {
        let _ = (kind, bytes);
    }
}

/// A sink that ignores everything — for tests that need a concrete no-op.
#[derive(Debug)]
pub struct NoopSink;

impl ObsSink for NoopSink {}
