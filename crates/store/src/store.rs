//! The disk-backed, crash-recoverable view store.
//!
//! Layout of a store directory:
//!
//! * `pages.dat` — fixed-size pages holding encoded view tables;
//! * `wal.log` — ordered mutation log (view commits, quarantines, purges,
//!   expirations) with per-record CRCs;
//! * `checkpoint.dat` — periodic full-state snapshot, published atomically
//!   via `checkpoint.tmp` + rename, that lets the WAL be truncated.
//!
//! Crash consistency argument (DESIGN.md §13 has the long form):
//!
//! * **Inserts** write pages first, then the WAL commit record, then update
//!   memory. A crash before the commit record leaves only unreferenced
//!   pages, which the free-list rebuild reclaims; a crash inside the commit
//!   record leaves a torn tail that recovery truncates. Either way the view
//!   simply doesn't exist and the caller's retry re-materializes it.
//! * **Operational mutations** (quarantine/purge/expire) append their WAL
//!   record *before* applying in memory. A crash during the append means
//!   nothing was applied; the retry re-appends. Replay is idempotent, so a
//!   record that did land followed by a retried duplicate is harmless.
//! * **Checkpoints** snapshot state to a temp file, rename it over
//!   `checkpoint.dat`, then truncate the WAL under a bumped epoch. The
//!   epoch stored in the checkpoint is the epoch of the *new* log, so a
//!   crash anywhere in the sequence recovers to exactly one of
//!   (old checkpoint + full log) or (new checkpoint + empty log).
//!
//! Simulated crashes ([`FaultPlan::crash_after_bytes`]) fire inside the
//! durable-write helper: the write that crosses the byte budget persists
//! only a prefix, the store poisons itself, and every subsequent operation
//! returns [`CvError::is_crash`] until [`DurableViewStore::recover_in_place`]
//! rebuilds the in-memory state from disk.

use crate::cache::PageCache;
use crate::codec::{decode_table, encode_table, Dec, Enc};
use crate::page::{chunk_payload, frame_page, unframe_page, PageFile, PAGE_SIZE};
use crate::wal::{
    decode_meta, decode_wal_header, encode_meta, encode_record, encode_wal_header, frame_record,
    record_crc, scan_records, DurableViewMeta, WalRecord, REC_HEADER, WAL_HEADER,
};
use cv_common::ids::{VcId, VersionGuid};
use cv_common::{CvError, FaultPlan, FaultPoint, Result, Sig128, SimDuration, SimTime};
use cv_data::store_api::{SharedViewStore, StoreIoStats};
use cv_data::table::Table;
use cv_data::viewstore::{
    table_checksum, MaterializedView, ViewReadFault, ViewSource, ViewStoreStats, ViewTemperature,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

const CKPT_MAGIC: u64 = 0x4356_434b_5054_3031; // "CVCKPT01"

fn sig_key(sig: Sig128) -> [u64; 2] {
    [sig.0 as u64, (sig.0 >> 64) as u64]
}

fn io_err(e: std::io::Error) -> CvError {
    CvError::internal(format!("store io: {e}"))
}

/// Tuning knobs for a [`DurableViewStore`].
#[derive(Clone, Debug)]
pub struct DurableStoreOptions {
    /// Buffer-pool capacity in pages (8 KiB each).
    pub cache_pages: usize,
    /// Publish a checkpoint (and truncate the WAL) after this many records.
    pub checkpoint_every: u64,
}

impl Default for DurableStoreOptions {
    fn default() -> DurableStoreOptions {
        DurableStoreOptions { cache_pages: 256, checkpoint_every: 64 }
    }
}

/// Byte-budget crash trigger: the write that crosses `limit` persists only
/// its prefix. Reset whenever a new fault plan is installed.
#[derive(Debug)]
struct CrashGate {
    written: u64,
    limit: Option<u64>,
}

impl CrashGate {
    fn new(limit: Option<u64>) -> CrashGate {
        CrashGate { written: 0, limit }
    }

    /// How many of `n` bytes may be written before the kill fires.
    fn allow(&mut self, n: usize) -> usize {
        let allowed = match self.limit {
            Some(lim) => lim.saturating_sub(self.written).min(n as u64),
            None => n as u64,
        };
        self.written += allowed;
        allowed as usize
    }
}

/// Write `buf` at `off`, honoring the crash gate: on a simulated kill only
/// the allowed prefix lands and the call returns a crash error.
fn durable_write(
    file: &mut File,
    off: u64,
    buf: &[u8],
    gate: &mut CrashGate,
    io: &mut StoreIoStats,
) -> Result<()> {
    let allowed = gate.allow(buf.len());
    file.seek(SeekFrom::Start(off)).map_err(io_err)?;
    file.write_all(&buf[..allowed]).map_err(io_err)?;
    io.bytes_written_durably += allowed as u64;
    if allowed < buf.len() {
        return Err(CvError::crash(format!(
            "kill after {} durable bytes (write torn {} of {} bytes in)",
            gate.written,
            allowed,
            buf.len()
        )));
    }
    Ok(())
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    ttl: SimDuration,
    opts: DurableStoreOptions,
    wal_file: File,
    /// Current end-of-log offset (file header included).
    wal_len: u64,
    wal_epoch: u64,
    records_since_checkpoint: u64,
    pages: PageFile,
    cache: PageCache,
    index: HashMap<Sig128, DurableViewMeta>,
    quarantined: HashSet<Sig128>,
    storage_by_vc: HashMap<VcId, u64>,
    stats: ViewStoreStats,
    io: StoreIoStats,
    faults: FaultPlan,
    gate: CrashGate,
    poisoned: bool,
}

impl Inner {
    /// Open (or create) the store directory and rebuild in-memory state
    /// from checkpoint + WAL replay. Replay is stats-neutral: logical
    /// counters describe this process's activity, not history.
    fn open(
        dir: &Path,
        ttl: SimDuration,
        opts: DurableStoreOptions,
        faults: FaultPlan,
    ) -> Result<Inner> {
        fs::create_dir_all(dir).map_err(io_err)?;
        // A leftover temp checkpoint is a crashed publish that never renamed;
        // it holds nothing the durable files don't.
        let _ = fs::remove_file(dir.join("checkpoint.tmp"));

        let mut index: HashMap<Sig128, DurableViewMeta> = HashMap::new();
        let mut quarantined: HashSet<Sig128> = HashSet::new();
        let ckpt_path = dir.join("checkpoint.dat");
        let mut ckpt_epoch = 1u64;
        let mut found_checkpoint = false;
        if ckpt_path.exists() {
            let bytes = fs::read(&ckpt_path).map_err(io_err)?;
            let (epoch, metas, quar) = decode_checkpoint(&bytes)
                .ok_or_else(|| CvError::internal("corrupt checkpoint.dat"))?;
            ckpt_epoch = epoch;
            for m in metas {
                index.insert(m.strict_sig, m);
            }
            quarantined.extend(quar);
            found_checkpoint = true;
        }

        let wal_path = dir.join("wal.log");
        let mut wal_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        wal_file.read_to_end(&mut bytes).map_err(io_err)?;
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        let wal_len = match decode_wal_header(&bytes) {
            Some(epoch) if epoch == ckpt_epoch => {
                let scan = scan_records(&bytes[WAL_HEADER..]);
                for rec in &scan.records {
                    apply_record(&mut index, &mut quarantined, rec);
                }
                replayed = scan.records.len() as u64;
                skipped = scan.skipped;
                let len = (WAL_HEADER + scan.valid_len) as u64;
                // Truncate any torn tail so new appends start at a record
                // boundary.
                wal_file.set_len(len).map_err(io_err)?;
                len
            }
            _ => {
                // Torn header, not a WAL, or an epoch from before/after the
                // checkpoint: the checkpoint alone is the state. Reset the
                // log under the checkpoint's epoch.
                wal_file.set_len(0).map_err(io_err)?;
                wal_file.seek(SeekFrom::Start(0)).map_err(io_err)?;
                wal_file.write_all(&encode_wal_header(ckpt_epoch)).map_err(io_err)?;
                WAL_HEADER as u64
            }
        };

        let mut storage_by_vc: HashMap<VcId, u64> = HashMap::new();
        for m in index.values() {
            *storage_by_vc.entry(m.vc).or_insert(0) += m.bytes;
        }

        let pages_path = dir.join("pages.dat");
        let pages_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&pages_path)
            .map_err(io_err)?;
        let pages_len = pages_file.metadata().map_err(io_err)?.len();
        let mut pages = PageFile::new(pages_file, pages_len);
        let referenced: BTreeSet<u64> =
            index.values().flat_map(|m| m.pages.iter().copied()).collect();
        pages.rebuild_free_list(&referenced);

        let found_state = found_checkpoint || replayed > 0 || skipped > 0;
        let io = StoreIoStats {
            wal_records_replayed: replayed,
            wal_records_skipped: skipped,
            recoveries: found_state as u64,
            ..StoreIoStats::default()
        };
        let gate = CrashGate::new(faults.crash_after_bytes);
        Ok(Inner {
            dir: dir.to_path_buf(),
            ttl,
            cache: PageCache::new(opts.cache_pages),
            opts,
            wal_file,
            wal_len,
            wal_epoch: ckpt_epoch,
            records_since_checkpoint: 0,
            pages,
            index,
            quarantined,
            storage_by_vc,
            stats: ViewStoreStats::default(),
            io,
            faults,
            gate,
            poisoned: false,
        })
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            Err(CvError::crash("store is down from a simulated kill; recover before retrying"))
        } else {
            Ok(())
        }
    }

    /// Append one record. `WalTornWrite` only applies to view commits (the
    /// `tearable` flag): the frame lands complete but a payload byte is
    /// flipped *after* the CRC was computed, so the damage is invisible
    /// until replay skips the record.
    fn append_wal(&mut self, rec: &WalRecord, tearable: bool) -> Result<()> {
        let payload = encode_record(rec);
        let mut frame = frame_record(&payload);
        if tearable {
            if let WalRecord::ViewCommit(m) = rec {
                if self.faults.fires(FaultPoint::WalTornWrite, &sig_key(m.strict_sig)) {
                    frame[REC_HEADER + payload.len() / 2] ^= 0xff;
                }
            }
        }
        let res =
            durable_write(&mut self.wal_file, self.wal_len, &frame, &mut self.gate, &mut self.io);
        if let Err(e) = res {
            if e.is_crash() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.wal_len += frame.len() as u64;
        self.io.wal_records_written += 1;
        self.io.wal_fsyncs += 1;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    fn write_page(&mut self, slot: u64, payload: &[u8]) -> Result<()> {
        let buf = frame_page(slot, payload);
        let res = durable_write(
            &mut self.pages.file,
            slot * PAGE_SIZE as u64,
            &buf,
            &mut self.gate,
            &mut self.io,
        );
        if let Err(e) = res {
            if e.is_crash() {
                self.poisoned = true;
            }
            return Err(e);
        }
        Ok(())
    }

    fn insert(&mut self, mut view: MaterializedView) -> Result<()> {
        self.check_poisoned()?;
        if self.index.contains_key(&view.strict_sig) {
            return Ok(()); // idempotent (and how a crashed insert's retry lands)
        }
        if self.quarantined.contains(&view.strict_sig) {
            return Ok(());
        }
        if self.faults.fires(FaultPoint::ViewWrite, &sig_key(view.strict_sig)) {
            self.stats.write_failures += 1;
            return Err(CvError::fault(format!(
                "materialization of view {} failed mid-write",
                view.strict_sig.short()
            )));
        }
        view.expires = view.created + self.ttl;
        view.bytes = view.data.byte_size();
        view.rows = view.data.num_rows();
        view.checksum = table_checksum(&view.data);
        if self.faults.fires(FaultPoint::ViewCorrupt, &sig_key(view.strict_sig)) {
            view.checksum ^= 0xdead_beef_dead_beef;
        }
        let blob = encode_table(&view.data);
        let chunks = chunk_payload(&blob);
        let slots: Vec<u64> = chunks.iter().map(|_| self.pages.alloc()).collect();
        let meta = DurableViewMeta {
            strict_sig: view.strict_sig,
            recurring_sig: view.recurring_sig,
            rows: view.rows as u64,
            bytes: view.bytes,
            created: view.created,
            expires: view.expires,
            creator_job: view.creator_job,
            vc: view.vc,
            input_guids: view.input_guids.clone(),
            observed_work: view.observed_work,
            checksum: view.checksum,
            pages: slots.clone(),
            blob_len: blob.len() as u64,
        };
        let written: Result<()> = (|| {
            for (slot, chunk) in slots.iter().zip(&chunks) {
                self.write_page(*slot, chunk)?;
            }
            self.append_wal(&WalRecord::ViewCommit(meta.clone()), true)
        })();
        if let Err(e) = written {
            // Nothing committed: hand the slots back (after a crash the
            // rebuilt free list reclaims them anyway).
            for s in &slots {
                self.pages.release(*s);
            }
            return Err(e);
        }
        for (slot, chunk) in slots.iter().zip(&chunks) {
            self.cache.insert(*slot, chunk.to_vec());
        }
        *self.storage_by_vc.entry(view.vc).or_insert(0) += view.bytes;
        self.stats.views_created += 1;
        self.stats.bytes_written += view.bytes;
        self.index.insert(view.strict_sig, meta);
        self.maybe_checkpoint()
    }

    /// Execution-time read. Cold reads (any page off disk) *always* verify
    /// the content checksum — a torn or bit-rotted page must be caught even
    /// in fault-free runs; hot reads verify only under an active fault plan
    /// (cost parity with the in-memory store's hot path).
    fn read_for_exec(
        &mut self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<(Table, ViewTemperature)>, ViewReadFault> {
        if self.poisoned || self.quarantined.contains(&sig) {
            self.stats.read_misses += 1;
            return Ok(None);
        }
        let Some(meta) = self.index.get(&sig).cloned() else {
            self.stats.read_misses += 1;
            return Ok(None);
        };
        if now >= meta.expires {
            self.stats.read_misses += 1;
            return Ok(None);
        }
        if self.faults.fires(FaultPoint::ViewRead, &sig_key(sig)) {
            return Err(ViewReadFault::ReadError);
        }
        if self.faults.fires(FaultPoint::ViewExpiryRace, &sig_key(sig)) {
            return Err(ViewReadFault::ExpiryRace);
        }
        let mut blob = Vec::with_capacity(meta.blob_len as usize);
        let mut cold = false;
        for &slot in &meta.pages {
            if let Some(bytes) = self.cache.get(slot) {
                self.io.page_cache_hits += 1;
                blob.extend_from_slice(bytes);
                continue;
            }
            cold = true;
            self.io.page_cache_misses += 1;
            let raw = match self.pages.read_raw(slot) {
                Err(_) => return Err(ViewReadFault::ReadError),
                Ok(None) => return Err(ViewReadFault::Corrupt),
                Ok(Some(raw)) => raw,
            };
            let Some(payload) = unframe_page(slot, &raw) else {
                return Err(ViewReadFault::Corrupt);
            };
            blob.extend_from_slice(&payload);
            self.cache.insert(slot, payload);
        }
        if blob.len() as u64 != meta.blob_len {
            return Err(ViewReadFault::Corrupt);
        }
        let Ok(table) = decode_table(&blob) else {
            return Err(ViewReadFault::Corrupt);
        };
        if (cold || !self.faults.is_empty()) && meta.checksum != table_checksum(&table) {
            return Err(ViewReadFault::Corrupt);
        }
        self.stats.views_reused += 1;
        self.stats.bytes_served += meta.bytes;
        let temp = if cold { ViewTemperature::Cold } else { ViewTemperature::Hot };
        Ok(Some((table, temp)))
    }

    fn remove_view(&mut self, sig: Sig128) -> Option<DurableViewMeta> {
        let m = self.index.remove(&sig)?;
        if let Some(used) = self.storage_by_vc.get_mut(&m.vc) {
            *used = used.saturating_sub(m.bytes);
        }
        for &slot in &m.pages {
            self.pages.release(slot);
            self.cache.invalidate(slot);
        }
        Some(m)
    }

    fn remove_classified(&mut self, sig: Sig128, now: SimTime) {
        if let Some(m) = self.remove_view(sig) {
            if now >= m.expires {
                self.stats.views_expired += 1;
            } else {
                self.stats.views_purged += 1;
            }
        }
    }

    fn quarantine(&mut self, sig: Sig128) -> Result<bool> {
        self.check_poisoned()?;
        if self.quarantined.contains(&sig) {
            return Ok(false);
        }
        self.append_wal(&WalRecord::Quarantine { sig }, false)?;
        self.remove_view(sig);
        self.quarantined.insert(sig);
        self.stats.views_quarantined += 1;
        self.maybe_checkpoint()?;
        Ok(true)
    }

    fn evict_expired(&mut self, now: SimTime) -> Result<usize> {
        self.check_poisoned()?;
        let dead: Vec<Sig128> =
            self.index.values().filter(|m| now >= m.expires).map(|m| m.strict_sig).collect();
        if dead.is_empty() {
            return Ok(0); // no mutation, no WAL record
        }
        self.append_wal(&WalRecord::Expire { now }, false)?;
        for sig in &dead {
            if self.remove_view(*sig).is_some() {
                self.stats.views_expired += 1;
            }
        }
        self.maybe_checkpoint()?;
        Ok(dead.len())
    }

    fn purge_input(&mut self, guid: VersionGuid, now: SimTime) -> Result<usize> {
        self.check_poisoned()?;
        let dead: Vec<Sig128> = self
            .index
            .values()
            .filter(|m| m.input_guids.contains(&guid))
            .map(|m| m.strict_sig)
            .collect();
        if dead.is_empty() {
            return Ok(0);
        }
        self.append_wal(&WalRecord::PurgeInput { guid, now }, false)?;
        for sig in &dead {
            self.remove_classified(*sig, now);
        }
        self.maybe_checkpoint()?;
        Ok(dead.len())
    }

    fn purge_vc(&mut self, vc: VcId, now: SimTime) -> Result<usize> {
        self.check_poisoned()?;
        let dead: Vec<Sig128> =
            self.index.values().filter(|m| m.vc == vc).map(|m| m.strict_sig).collect();
        if dead.is_empty() {
            return Ok(0);
        }
        self.append_wal(&WalRecord::PurgeVc { vc, now }, false)?;
        for sig in &dead {
            self.remove_classified(*sig, now);
        }
        self.maybe_checkpoint()?;
        Ok(dead.len())
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.records_since_checkpoint >= self.opts.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.check_poisoned()?;
        let new_epoch = self.wal_epoch + 1;
        let buf = encode_checkpoint(new_epoch, &self.index, &self.quarantined);
        let tmp = self.dir.join("checkpoint.tmp");
        let mut tf = File::create(&tmp).map_err(io_err)?;
        let res = durable_write(&mut tf, 0, &buf, &mut self.gate, &mut self.io);
        if let Err(e) = res {
            if e.is_crash() {
                self.poisoned = true;
            }
            return Err(e);
        }
        drop(tf);
        fs::rename(&tmp, self.dir.join("checkpoint.dat")).map_err(io_err)?;
        // From here the checkpoint is published; the old log's records are
        // absorbed. Reset the log under the new epoch (small, uncharged
        // writes — a real crash here recovers from the checkpoint alone).
        self.wal_file.set_len(0).map_err(io_err)?;
        self.wal_file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        self.wal_file.write_all(&encode_wal_header(new_epoch)).map_err(io_err)?;
        self.wal_len = WAL_HEADER as u64;
        self.wal_epoch = new_epoch;
        self.records_since_checkpoint = 0;
        self.io.checkpoints += 1;
        self.io.wal_fsyncs += 1;
        Ok(())
    }

    /// I/O counters including the live cache's eviction count
    /// (`io.pages_evicted` holds evictions from pre-recovery incarnations).
    fn io_snapshot(&self) -> StoreIoStats {
        let mut io = self.io.clone();
        io.pages_evicted += self.cache.evictions();
        io
    }
}

fn apply_record(
    index: &mut HashMap<Sig128, DurableViewMeta>,
    quarantined: &mut HashSet<Sig128>,
    rec: &WalRecord,
) {
    match rec {
        WalRecord::ViewCommit(m) => {
            if !quarantined.contains(&m.strict_sig) {
                index.entry(m.strict_sig).or_insert_with(|| m.clone());
            }
        }
        WalRecord::Quarantine { sig } => {
            index.remove(sig);
            quarantined.insert(*sig);
        }
        WalRecord::PurgeInput { guid, .. } => {
            index.retain(|_, m| !m.input_guids.contains(guid));
        }
        WalRecord::PurgeVc { vc, .. } => {
            index.retain(|_, m| m.vc != *vc);
        }
        WalRecord::Expire { now } => {
            index.retain(|_, m| *now < m.expires);
        }
    }
}

fn encode_checkpoint(
    wal_epoch: u64,
    index: &HashMap<Sig128, DurableViewMeta>,
    quarantined: &HashSet<Sig128>,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u64(wal_epoch);
    e.put_u64(index.len() as u64);
    let mut metas: Vec<&DurableViewMeta> = index.values().collect();
    metas.sort_by_key(|m| m.strict_sig); // deterministic bytes
    for m in metas {
        encode_meta(&mut e, m);
    }
    let mut quar: Vec<Sig128> = quarantined.iter().copied().collect();
    quar.sort();
    e.put_u64(quar.len() as u64);
    for sig in quar {
        e.put_u128(sig.0);
    }
    let payload = e.into_bytes();
    let mut f = Enc::new();
    f.put_u64(CKPT_MAGIC);
    f.put_u64(payload.len() as u64);
    f.put_u64(record_crc(&payload));
    f.put_bytes(&payload);
    f.into_bytes()
}

fn decode_checkpoint(buf: &[u8]) -> Option<(u64, Vec<DurableViewMeta>, Vec<Sig128>)> {
    let mut d = Dec::new(buf);
    if d.get_u64().ok()? != CKPT_MAGIC {
        return None;
    }
    let len = d.get_u64().ok()? as usize;
    let crc = d.get_u64().ok()?;
    let payload = d.get_bytes(len).ok()?;
    if !d.is_done() || record_crc(payload) != crc {
        return None;
    }
    let mut p = Dec::new(payload);
    let wal_epoch = p.get_u64().ok()?;
    let n_views = p.get_u64().ok()? as usize;
    let mut metas = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        metas.push(decode_meta(&mut p).ok()?);
    }
    let n_quar = p.get_u64().ok()? as usize;
    let mut quar = Vec::with_capacity(n_quar);
    for _ in 0..n_quar {
        quar.push(Sig128(p.get_u128().ok()?));
    }
    if !p.is_done() {
        return None;
    }
    Some((wal_epoch, metas, quar))
}

/// Disk-backed view store with the same logical semantics as
/// [`cv_data::viewstore::ViewStore`]. Interior locking (one mutex — reads
/// mutate the page cache) makes it shareable behind `&self` like
/// [`cv_data::sharded::ShardedViewStore`].
#[derive(Debug)]
pub struct DurableViewStore {
    dir: PathBuf,
    ttl: SimDuration,
    opts: DurableStoreOptions,
    inner: Mutex<Inner>,
}

impl DurableViewStore {
    /// Open (creating if absent) a store rooted at `dir`, replaying any
    /// WAL + checkpoint found there.
    pub fn open(
        dir: impl Into<PathBuf>,
        ttl: SimDuration,
        opts: DurableStoreOptions,
    ) -> Result<DurableViewStore> {
        let dir = dir.into();
        let inner = Inner::open(&dir, ttl, opts.clone(), FaultPlan::none())?;
        Ok(DurableViewStore { dir, ttl, opts, inner: Mutex::new(inner) })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Crash recovery: rebuild in-memory state from disk, exactly as a
    /// process restart would, and clear the poison. The recovered store
    /// runs under the previous plan with the crash disarmed (a run crashes
    /// at most once); logical stats carry across — the counters describe
    /// the run, not the incarnation.
    pub fn recover_in_place(&self) -> Result<()> {
        let mut g = self.lock();
        let prev_stats = g.stats.clone();
        let mut prev_io = g.io_snapshot();
        let faults = g.faults.without_crash();
        let mut fresh = Inner::open(&self.dir, self.ttl, self.opts.clone(), faults)?;
        fresh.io.recoveries = fresh.io.recoveries.max(1);
        prev_io.merge(&fresh.io);
        fresh.io = prev_io;
        fresh.stats = prev_stats;
        *g = fresh;
        Ok(())
    }

    /// Install a fault plan; re-arms the crash byte budget from zero.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut g = self.lock();
        g.gate = CrashGate::new(plan.crash_after_bytes);
        g.faults = plan;
    }

    pub fn fault_plan(&self) -> FaultPlan {
        self.lock().faults.clone()
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Force a checkpoint now (normally they ride on the record cadence).
    pub fn checkpoint_now(&self) -> Result<()> {
        self.lock().checkpoint()
    }

    pub fn io_stats(&self) -> StoreIoStats {
        self.lock().io_snapshot()
    }

    pub fn stats(&self) -> ViewStoreStats {
        self.lock().stats.clone()
    }

    pub fn insert(&self, view: MaterializedView) -> Result<()> {
        self.lock().insert(view)
    }

    pub fn quarantine(&self, sig: Sig128) -> Result<bool> {
        self.lock().quarantine(sig)
    }

    pub fn evict_expired(&self, now: SimTime) -> Result<usize> {
        self.lock().evict_expired(now)
    }

    pub fn purge_input(&self, guid: VersionGuid, now: SimTime) -> Result<usize> {
        self.lock().purge_input(guid, now)
    }

    pub fn purge_vc(&self, vc: VcId, now: SimTime) -> Result<usize> {
        self.lock().purge_vc(vc, now)
    }

    pub fn contains(&self, sig: Sig128) -> bool {
        self.lock().index.contains_key(&sig)
    }

    pub fn contains_live(&self, sig: Sig128, now: SimTime) -> bool {
        self.lock().index.get(&sig).map(|m| now < m.expires).unwrap_or(false)
    }

    pub fn is_quarantined(&self, sig: Sig128) -> bool {
        self.lock().quarantined.contains(&sig)
    }

    pub fn peek_meta(&self, sig: Sig128, now: SimTime) -> Option<(u64, u64, f64)> {
        let g = self.lock();
        let m = g.index.get(&sig)?;
        if now < m.expires {
            Some((m.rows, m.bytes, m.observed_work))
        } else {
            None
        }
    }

    pub fn observed_work(&self, sig: Sig128) -> Option<f64> {
        self.lock().index.get(&sig).map(|m| m.observed_work)
    }

    pub fn sigs_with_input(&self, guid: VersionGuid) -> Vec<Sig128> {
        let g = self.lock();
        let mut out: Vec<Sig128> = g
            .index
            .values()
            .filter(|m| m.input_guids.contains(&guid))
            .map(|m| m.strict_sig)
            .collect();
        out.sort();
        out
    }

    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn total_storage(&self) -> u64 {
        self.lock().storage_by_vc.values().sum()
    }

    pub fn storage_used(&self, vc: VcId) -> u64 {
        self.lock().storage_by_vc.get(&vc).copied().unwrap_or(0)
    }

    /// Whether every page of this view is currently in the buffer pool
    /// (planning-time cold-read hint; absent views report hot because no
    /// read will happen).
    pub fn is_resident(&self, sig: Sig128) -> bool {
        let g = self.lock();
        match g.index.get(&sig) {
            Some(m) => m.pages.iter().all(|&p| g.cache.contains(p)),
            None => true,
        }
    }
}

impl ViewSource for DurableViewStore {
    fn read_view(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<Table>, ViewReadFault> {
        self.lock().read_for_exec(sig, now).map(|o| o.map(|(t, _)| t))
    }

    fn read_view_traced(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<(Table, ViewTemperature)>, ViewReadFault> {
        self.lock().read_for_exec(sig, now)
    }
}

impl SharedViewStore for DurableViewStore {
    fn insert(&self, view: MaterializedView) -> Result<()> {
        DurableViewStore::insert(self, view)
    }
    fn contains(&self, sig: Sig128) -> bool {
        DurableViewStore::contains(self, sig)
    }
    fn contains_live(&self, sig: Sig128, now: SimTime) -> bool {
        DurableViewStore::contains_live(self, sig, now)
    }
    fn is_quarantined(&self, sig: Sig128) -> bool {
        DurableViewStore::is_quarantined(self, sig)
    }
    fn quarantine(&self, sig: Sig128) -> Result<bool> {
        DurableViewStore::quarantine(self, sig)
    }
    fn peek_meta(&self, sig: Sig128, now: SimTime) -> Option<(u64, u64, f64)> {
        DurableViewStore::peek_meta(self, sig, now)
    }
    fn observed_work(&self, sig: Sig128) -> Option<f64> {
        DurableViewStore::observed_work(self, sig)
    }
    fn evict_expired(&self, now: SimTime) -> Result<usize> {
        DurableViewStore::evict_expired(self, now)
    }
    fn purge_input(&self, guid: VersionGuid, now: SimTime) -> Result<usize> {
        DurableViewStore::purge_input(self, guid, now)
    }
    fn purge_vc(&self, vc: VcId, now: SimTime) -> Result<usize> {
        DurableViewStore::purge_vc(self, vc, now)
    }
    fn sigs_with_input(&self, guid: VersionGuid) -> Vec<Sig128> {
        DurableViewStore::sigs_with_input(self, guid)
    }
    fn stats(&self) -> ViewStoreStats {
        DurableViewStore::stats(self)
    }
    fn len(&self) -> usize {
        DurableViewStore::len(self)
    }
    fn total_storage(&self) -> u64 {
        DurableViewStore::total_storage(self)
    }
    fn storage_used(&self, vc: VcId) -> u64 {
        DurableViewStore::storage_used(self, vc)
    }
    fn n_shards(&self) -> usize {
        1
    }
    fn ttl(&self) -> SimDuration {
        DurableViewStore::ttl(self)
    }
    fn set_fault_plan(&self, plan: FaultPlan) {
        DurableViewStore::set_fault_plan(self, plan)
    }
    fn io_stats(&self) -> Option<StoreIoStats> {
        Some(DurableViewStore::io_stats(self))
    }
    fn is_resident(&self, sig: Sig128) -> bool {
        DurableViewStore::is_resident(self, sig)
    }
}
