//! Zero-dependency little-endian codec for tables and store metadata.
//!
//! Everything durable (pages, WAL records, checkpoints) is encoded through
//! these two cursors. Decoding is *total*: every read is bounds-checked and
//! returns `Err` on truncation or a bad tag, because the bytes may come from
//! a torn write — the read path maps decode failures to corruption, never
//! panics.

use cv_data::bitmap::Bitmap;
use cv_data::column::{Column, ColumnData};
use cv_data::schema::{Field, Schema};
use cv_data::table::Table;
use cv_data::value::DataType;

/// Decode failure: the bytes do not parse as what was expected. Carries a
/// static reason for diagnostics; callers usually map it to "corrupt".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are stored by bit pattern, so NaN payloads and signed zeros
    /// round-trip exactly — required for byte-identical digests.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_u128(&mut self) -> CodecResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn get_i32(&mut self) -> CodecResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_str(&mut self) -> CodecResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError("invalid utf-8"))
    }

    pub fn get_bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }
}

fn dtype_from_ordinal(ord: u8) -> CodecResult<DataType> {
    Ok(match ord {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        _ => return Err(CodecError("unknown dtype ordinal")),
    })
}

fn pack_bools(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bools(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

/// Serialize a table (schema + columns + validity) to bytes.
pub fn encode_table(t: &Table) -> Vec<u8> {
    let mut e = Enc::new();
    let schema = t.schema();
    e.put_u32(schema.len() as u32);
    for f in schema.fields() {
        e.put_str(&f.name);
        e.put_u8(f.dtype.ordinal());
        e.put_u8(f.nullable as u8);
    }
    e.put_u64(t.num_rows() as u64);
    for col in t.columns() {
        match col.validity() {
            Some(v) => {
                e.put_u8(1);
                e.put_bytes(&pack_bools(&v.to_bools()));
            }
            None => e.put_u8(0),
        }
        match col.data() {
            ColumnData::Bool(vs) => e.put_bytes(&pack_bools(vs)),
            ColumnData::Int(vs) => vs.iter().for_each(|&v| e.put_i64(v)),
            ColumnData::Float(vs) => vs.iter().for_each(|&v| e.put_f64(v)),
            ColumnData::Str(vs) => vs.iter().for_each(|v| e.put_str(v)),
            ColumnData::Date(vs) => vs.iter().for_each(|&v| e.put_i32(v)),
        }
    }
    e.into_bytes()
}

/// Inverse of [`encode_table`].
pub fn decode_table(buf: &[u8]) -> CodecResult<Table> {
    let mut d = Dec::new(buf);
    let n_fields = d.get_u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let name = d.get_str()?;
        let dtype = dtype_from_ordinal(d.get_u8()?)?;
        let nullable = match d.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError("bad nullable flag")),
        };
        fields.push(if nullable { Field::new(name, dtype) } else { Field::not_null(name, dtype) });
    }
    let n_rows = d.get_u64()? as usize;
    let bitmap_bytes = n_rows.div_ceil(8);
    let mut columns = Vec::with_capacity(n_fields);
    for field in &fields {
        let validity = match d.get_u8()? {
            0 => None,
            1 => Some(Bitmap::from_bools(&unpack_bools(d.get_bytes(bitmap_bytes)?, n_rows))),
            _ => return Err(CodecError("bad validity flag")),
        };
        let data = match field.dtype {
            DataType::Bool => ColumnData::Bool(unpack_bools(d.get_bytes(bitmap_bytes)?, n_rows)),
            DataType::Int => {
                ColumnData::Int((0..n_rows).map(|_| d.get_i64()).collect::<CodecResult<_>>()?)
            }
            DataType::Float => {
                ColumnData::Float((0..n_rows).map(|_| d.get_f64()).collect::<CodecResult<_>>()?)
            }
            DataType::Str => {
                ColumnData::Str((0..n_rows).map(|_| d.get_str()).collect::<CodecResult<_>>()?)
            }
            DataType::Date => {
                ColumnData::Date((0..n_rows).map(|_| d.get_i32()).collect::<CodecResult<_>>()?)
            }
        };
        columns.push(Column::new(data, validity));
    }
    if !d.is_done() {
        return Err(CodecError("trailing bytes after table"));
    }
    let schema = Schema::new_unchecked(fields).into_ref();
    Table::new(schema, columns).map_err(|_| CodecError("table validation failed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_data::value::Value;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
            Field::new("active", DataType::Bool),
            Field::new("day", DataType::Date),
        ])
        .unwrap()
        .into_ref();
        Table::from_rows(
            schema,
            &[
                vec![
                    Value::Int(1),
                    Value::Str("ada".into()),
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Date(100),
                ],
                vec![
                    Value::Int(-2),
                    Value::Null,
                    Value::Float(f64::NEG_INFINITY),
                    Value::Null,
                    Value::Date(-5),
                ],
                vec![
                    Value::Int(i64::MAX),
                    Value::Str(String::new()),
                    Value::Null,
                    Value::Bool(false),
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table_round_trips_exactly() {
        let t = sample_table();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(t.canonical_rows(), back.canonical_rows());
        assert_eq!(t.num_rows(), back.num_rows());
        assert_eq!(t.schema().fields(), back.schema().fields());
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let t = Table::empty(schema);
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(t.schema().fields(), back.schema().fields());
    }

    #[test]
    fn float_bit_patterns_survive() {
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]).unwrap().into_ref();
        let t = Table::from_rows(
            schema,
            &[vec![Value::Float(-0.0)], vec![Value::Float(f64::MIN_POSITIVE)]],
        )
        .unwrap();
        let back = decode_table(&encode_table(&t)).unwrap();
        let (ColumnData::Float(a), ColumnData::Float(b)) =
            (t.columns()[0].data(), back.columns()[0].data())
        else {
            panic!("not float columns");
        };
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = encode_table(&sample_table());
        for cut in 0..bytes.len() {
            assert!(decode_table(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_table(&extended).is_err());
    }
}
