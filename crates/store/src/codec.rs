//! Zero-dependency little-endian codec for tables and store metadata.
//!
//! Everything durable (pages, WAL records, checkpoints) is encoded through
//! these two cursors. Decoding is *total*: every read is bounds-checked and
//! returns `Err` on truncation or a bad tag, because the bytes may come from
//! a torn write — the read path maps decode failures to corruption, never
//! panics.

use cv_data::bitmap::Bitmap;
use cv_data::column::{Column, ColumnData};
use cv_data::schema::{Field, Schema};
use cv_data::table::Table;
use cv_data::value::DataType;

/// Decode failure: the bytes do not parse as what was expected. Carries a
/// static reason for diagnostics; callers usually map it to "corrupt".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are stored by bit pattern, so NaN payloads and signed zeros
    /// round-trip exactly — required for byte-identical digests.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_u128(&mut self) -> CodecResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn get_i32(&mut self) -> CodecResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_str(&mut self) -> CodecResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError("invalid utf-8"))
    }

    pub fn get_bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }
}

fn dtype_from_ordinal(ord: u8) -> CodecResult<DataType> {
    Ok(match ord {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        _ => return Err(CodecError("unknown dtype ordinal")),
    })
}

fn pack_bools(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bools(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

/// Serialize a table (schema + columns + validity) to bytes, chunk-major
/// at the engine's default chunk size.
///
/// Layout: schema header, total row count, chunk count, then one section
/// per chunk holding its row count followed by every column's validity
/// flag + packed bits and typed values for just those rows. Chunk-major
/// sections line up with the engine's execution chunks, so the page-chain
/// writer streams a view out in the same granularity the producer emitted
/// it and a future partial read needs no column-level seeking.
pub fn encode_table(t: &Table) -> Vec<u8> {
    encode_table_chunked(t, cv_data::chunk::DEFAULT_CHUNK_SIZE)
}

/// [`encode_table`] with an explicit chunk size (tests exercise degenerate
/// sizes; the decoded table is identical for every value).
pub fn encode_table_chunked(t: &Table, chunk_size: usize) -> Vec<u8> {
    let mut e = Enc::new();
    let schema = t.schema();
    e.put_u32(schema.len() as u32);
    for f in schema.fields() {
        e.put_str(&f.name);
        e.put_u8(f.dtype.ordinal());
        e.put_u8(f.nullable as u8);
    }
    e.put_u64(t.num_rows() as u64);
    let ranges = cv_data::chunk::chunk_ranges(t.num_rows(), chunk_size.max(1));
    e.put_u32(ranges.len() as u32);
    // Hoist each column's validity bools once; chunks slice into them.
    let vbools: Vec<Option<Vec<bool>>> =
        t.columns().iter().map(|c| c.validity().map(Bitmap::to_bools)).collect();
    for &(off, len) in &ranges {
        e.put_u64(len as u64);
        for (col, vb) in t.columns().iter().zip(&vbools) {
            match vb {
                Some(bits) => {
                    e.put_u8(1);
                    e.put_bytes(&pack_bools(&bits[off..off + len]));
                }
                None => e.put_u8(0),
            }
            match col.data() {
                ColumnData::Bool(vs) => e.put_bytes(&pack_bools(&vs[off..off + len])),
                ColumnData::Int(vs) => vs[off..off + len].iter().for_each(|&v| e.put_i64(v)),
                ColumnData::Float(vs) => vs[off..off + len].iter().for_each(|&v| e.put_f64(v)),
                ColumnData::Str(vs) => vs[off..off + len].iter().for_each(|v| e.put_str(v)),
                ColumnData::Date(vs) => vs[off..off + len].iter().for_each(|&v| e.put_i32(v)),
            }
        }
    }
    e.into_bytes()
}

/// Inverse of [`encode_table`]: concatenates the chunk sections back into
/// whole columns. A column's validity presence is preserved exactly — if
/// any chunk carries a bitmap the reassembled column does too (flag-0
/// chunks contribute all-valid runs), so the round trip is byte-faithful
/// even for non-canonical all-true bitmaps.
pub fn decode_table(buf: &[u8]) -> CodecResult<Table> {
    let mut d = Dec::new(buf);
    let n_fields = d.get_u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let name = d.get_str()?;
        let dtype = dtype_from_ordinal(d.get_u8()?)?;
        let nullable = match d.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError("bad nullable flag")),
        };
        fields.push(if nullable { Field::new(name, dtype) } else { Field::not_null(name, dtype) });
    }
    let n_rows = d.get_u64()? as usize;
    let n_chunks = d.get_u32()? as usize;
    if n_chunks == 0 {
        return Err(CodecError("zero chunks"));
    }
    let mut vbits: Vec<Vec<bool>> = vec![Vec::with_capacity(n_rows); n_fields];
    let mut any_validity = vec![false; n_fields];
    let mut datas: Vec<ColumnData> = fields
        .iter()
        .map(|f| match f.dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(n_rows)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(n_rows)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(n_rows)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(n_rows)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(n_rows)),
        })
        .collect();
    let mut decoded_rows = 0usize;
    for _ in 0..n_chunks {
        let rows = d.get_u64()? as usize;
        decoded_rows = decoded_rows.checked_add(rows).ok_or(CodecError("chunk rows overflow"))?;
        if decoded_rows > n_rows {
            return Err(CodecError("chunk rows exceed table rows"));
        }
        let bitmap_bytes = rows.div_ceil(8);
        for i in 0..n_fields {
            match d.get_u8()? {
                0 => vbits[i].extend(std::iter::repeat_n(true, rows)),
                1 => {
                    any_validity[i] = true;
                    vbits[i].extend(unpack_bools(d.get_bytes(bitmap_bytes)?, rows));
                }
                _ => return Err(CodecError("bad validity flag")),
            }
            match &mut datas[i] {
                ColumnData::Bool(vs) => vs.extend(unpack_bools(d.get_bytes(bitmap_bytes)?, rows)),
                ColumnData::Int(vs) => {
                    for _ in 0..rows {
                        vs.push(d.get_i64()?);
                    }
                }
                ColumnData::Float(vs) => {
                    for _ in 0..rows {
                        vs.push(d.get_f64()?);
                    }
                }
                ColumnData::Str(vs) => {
                    for _ in 0..rows {
                        vs.push(d.get_str()?);
                    }
                }
                ColumnData::Date(vs) => {
                    for _ in 0..rows {
                        vs.push(d.get_i32()?);
                    }
                }
            }
        }
    }
    if decoded_rows != n_rows {
        return Err(CodecError("chunk rows mismatch"));
    }
    if !d.is_done() {
        return Err(CodecError("trailing bytes after table"));
    }
    let columns: Vec<Column> = datas
        .into_iter()
        .zip(vbits)
        .zip(any_validity)
        .map(|((data, bits), any)| {
            Column::new(data, if any { Some(Bitmap::from_bools(&bits)) } else { None })
        })
        .collect();
    let schema = Schema::new_unchecked(fields).into_ref();
    Table::new(schema, columns).map_err(|_| CodecError("table validation failed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_data::value::Value;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
            Field::new("active", DataType::Bool),
            Field::new("day", DataType::Date),
        ])
        .unwrap()
        .into_ref();
        Table::from_rows(
            schema,
            &[
                vec![
                    Value::Int(1),
                    Value::Str("ada".into()),
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Date(100),
                ],
                vec![
                    Value::Int(-2),
                    Value::Null,
                    Value::Float(f64::NEG_INFINITY),
                    Value::Null,
                    Value::Date(-5),
                ],
                vec![
                    Value::Int(i64::MAX),
                    Value::Str(String::new()),
                    Value::Null,
                    Value::Bool(false),
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table_round_trips_exactly() {
        let t = sample_table();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(t.canonical_rows(), back.canonical_rows());
        assert_eq!(t.num_rows(), back.num_rows());
        assert_eq!(t.schema().fields(), back.schema().fields());
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let t = Table::empty(schema);
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(t.schema().fields(), back.schema().fields());
    }

    #[test]
    fn float_bit_patterns_survive() {
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]).unwrap().into_ref();
        let t = Table::from_rows(
            schema,
            &[vec![Value::Float(-0.0)], vec![Value::Float(f64::MIN_POSITIVE)]],
        )
        .unwrap();
        let back = decode_table(&encode_table(&t)).unwrap();
        let (ColumnData::Float(a), ColumnData::Float(b)) =
            (t.columns()[0].data(), back.columns()[0].data())
        else {
            panic!("not float columns");
        };
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_chunk_encoding_round_trips_exactly() {
        let t = sample_table(); // 3 rows
        let whole = decode_table(&encode_table_chunked(&t, usize::MAX)).unwrap();
        for chunk_size in [1, 2] {
            let bytes = encode_table_chunked(&t, chunk_size);
            let back = decode_table(&bytes).unwrap();
            assert_eq!(back.canonical_rows(), whole.canonical_rows());
            assert_eq!(back.num_rows(), 3);
            // Validity presence survives reassembly per column.
            for (a, b) in whole.columns().iter().zip(back.columns()) {
                assert_eq!(a.validity().is_some(), b.validity().is_some());
            }
        }
    }

    #[test]
    fn non_canonical_all_true_validity_survives_chunking() {
        // A column carrying an explicit all-true bitmap (legal but
        // non-canonical) must come back with the bitmap intact.
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let col =
            Column::new(ColumnData::Int(vec![1, 2, 3, 4, 5]), Some(Bitmap::from_bools(&[true; 5])));
        let t = Table::new(schema, vec![col]).unwrap();
        let back = decode_table(&encode_table_chunked(&t, 2)).unwrap();
        let v = back.columns()[0].validity().expect("all-true bitmap preserved");
        assert_eq!(v.to_bools(), vec![true; 5]);
    }

    #[test]
    fn chunk_row_count_mismatch_is_rejected() {
        let mut bytes = encode_table_chunked(&sample_table(), 2);
        // The total row count sits right after the schema header; bump it
        // so the chunk sections no longer add up.
        let hdr = 4 + (4 + 2 + 2) + (4 + 4 + 2) + (4 + 5 + 2) + (4 + 6 + 2) + (4 + 3 + 2);
        bytes[hdr] = bytes[hdr].wrapping_add(1);
        assert!(decode_table(&bytes).is_err());
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = encode_table(&sample_table());
        for cut in 0..bytes.len() {
            assert!(decode_table(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_table(&extended).is_err());
    }
}
