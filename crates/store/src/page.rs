//! Fixed-size page file with per-page checksums.
//!
//! View payloads are split across 8 KiB pages in a single `pages.dat` file.
//! Each page carries its own header (magic, the slot id it claims to live
//! in, payload length, payload CRC) so a torn or misdirected write is caught
//! on first read. Pages are *not* crash-consistent on their own — a page
//! only becomes reachable once a WAL commit record referencing it lands, so
//! half-written pages are simply unreferenced garbage that the free-list
//! rebuild reclaims on recovery.

use crate::codec::{Dec, Enc};
use cv_common::StableHasher;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Page size in bytes, header included.
pub const PAGE_SIZE: usize = 8192;
/// Bytes of payload a single page can hold.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;
/// magic u32 + page_id u64 + len u32 + crc u64.
pub const PAGE_HEADER: usize = 24;

const PAGE_MAGIC: u32 = 0x4356_5047; // "CVPG"

pub fn page_crc(payload: &[u8]) -> u64 {
    let mut h = StableHasher::with_domain("cv-store-page");
    h.write_bytes(payload);
    h.finish64()
}

/// Frame a payload chunk (≤ [`PAGE_PAYLOAD`] bytes) into a full page buffer.
pub fn frame_page(page_id: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= PAGE_PAYLOAD, "payload exceeds page capacity");
    let mut e = Enc::new();
    e.put_u32(PAGE_MAGIC);
    e.put_u64(page_id);
    e.put_u32(payload.len() as u32);
    e.put_u64(page_crc(payload));
    e.put_bytes(payload);
    let mut buf = e.into_bytes();
    buf.resize(PAGE_SIZE, 0);
    buf
}

/// Validate a raw page buffer and return its payload.
pub fn unframe_page(page_id: u64, buf: &[u8]) -> Option<Vec<u8>> {
    if buf.len() != PAGE_SIZE {
        return None;
    }
    let mut d = Dec::new(buf);
    let magic = d.get_u32().ok()?;
    let id = d.get_u64().ok()?;
    let len = d.get_u32().ok()? as usize;
    let crc = d.get_u64().ok()?;
    if magic != PAGE_MAGIC || id != page_id || len > PAGE_PAYLOAD {
        return None;
    }
    let payload = d.get_bytes(len).ok()?;
    if page_crc(payload) != crc {
        return None;
    }
    Some(payload.to_vec())
}

/// Split a blob into per-page payload chunks.
pub fn chunk_payload(blob: &[u8]) -> Vec<&[u8]> {
    if blob.is_empty() {
        // An empty table still occupies one (empty-payload) page so the
        // commit record always references at least one page.
        return vec![&[]];
    }
    blob.chunks(PAGE_PAYLOAD).collect()
}

/// Slot allocator over `pages.dat`: lowest free slot first (deterministic),
/// growing the file when no freed slot is available.
#[derive(Debug)]
pub struct PageFile {
    pub file: File,
    n_slots: u64,
    free: BTreeSet<u64>,
}

impl PageFile {
    /// Wrap an open `pages.dat`. `n_slots` is derived from the file length,
    /// rounding *down* so a torn trailing page is treated as unallocated.
    pub fn new(file: File, len_bytes: u64) -> PageFile {
        PageFile { file, n_slots: len_bytes / PAGE_SIZE as u64, free: BTreeSet::new() }
    }

    pub fn n_slots(&self) -> u64 {
        self.n_slots
    }

    /// Rebuild the free list: every slot not referenced by a committed view
    /// is reusable (this is how orphan pages from crashed inserts are
    /// reclaimed — no explicit page dealloc log is needed).
    pub fn rebuild_free_list(&mut self, referenced: &BTreeSet<u64>) {
        self.free = (0..self.n_slots).filter(|s| !referenced.contains(s)).collect();
    }

    pub fn alloc(&mut self) -> u64 {
        if let Some(&slot) = self.free.iter().next() {
            self.free.remove(&slot);
            slot
        } else {
            let slot = self.n_slots;
            self.n_slots += 1;
            slot
        }
    }

    pub fn release(&mut self, slot: u64) {
        if slot < self.n_slots {
            self.free.insert(slot);
        }
    }

    /// Read a page's raw bytes; `None` if the slot lies past EOF (torn grow).
    pub fn read_raw(&mut self, slot: u64) -> std::io::Result<Option<Vec<u8>>> {
        let off = slot * PAGE_SIZE as u64;
        let file_len = self.file.metadata()?.len();
        if off + PAGE_SIZE as u64 > file_len {
            return Ok(None);
        }
        self.file.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        Ok(Some(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_frame_round_trips() {
        let payload = vec![7u8; 1000];
        let buf = frame_page(3, &payload);
        assert_eq!(buf.len(), PAGE_SIZE);
        assert_eq!(unframe_page(3, &buf).unwrap(), payload);
        // Wrong slot id (misdirected write) is rejected.
        assert!(unframe_page(4, &buf).is_none());
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf = frame_page(0, &[1, 2, 3, 4]);
        buf[PAGE_HEADER + 2] ^= 0xff;
        assert!(unframe_page(0, &buf).is_none());
        // Corrupting the padding (outside the payload) is harmless.
        let mut buf2 = frame_page(0, &[1, 2, 3, 4]);
        buf2[PAGE_SIZE - 1] ^= 0xff;
        assert!(unframe_page(0, &buf2).is_some());
    }

    #[test]
    fn chunking_covers_blob_and_empty_gets_one_page() {
        let blob = vec![9u8; PAGE_PAYLOAD * 2 + 17];
        let chunks = chunk_payload(&blob);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), blob.len());
        assert_eq!(chunk_payload(&[]).len(), 1);
    }
}
