//! Write-ahead log: record framing, the durable view-metadata codec, and
//! the recovery scanner.
//!
//! Layout of `wal.log`:
//!
//! ```text
//! [WAL_MAGIC u64][epoch u64]            file header (16 bytes)
//! [REC_MAGIC u32][len u32][crc u64][payload ...]   repeated records
//! ```
//!
//! The `epoch` ties the log to the checkpoint that truncated it: a
//! checkpoint stores the epoch of the *new* (post-truncate) log, so replay
//! over a log whose epoch doesn't match the checkpoint is skipped wholesale
//! (the log predates or postdates the snapshot and applying it would
//! double-apply or misapply mutations).
//!
//! Scanner contract (torn-write semantics):
//! * a **complete** frame whose CRC fails is *skipped* — later records stay
//!   readable (this is what [`FaultPoint::WalTornWrite`] exercises);
//! * an **incomplete** frame at the tail (or a bad record magic) ends the
//!   valid prefix — recovery truncates the file there (this is what a crash
//!   mid-append leaves behind).
//!
//! [`FaultPoint::WalTornWrite`]: cv_common::FaultPoint::WalTornWrite

use crate::codec::{CodecError, CodecResult, Dec, Enc};
use cv_common::ids::{JobId, VcId, VersionGuid};
use cv_common::{Sig128, SimTime, StableHasher};

pub const WAL_MAGIC: u64 = 0x4356_5741_4c4f_4731; // "CVWALOG1"
pub const WAL_HEADER: usize = 16;
pub const REC_MAGIC: u32 = 0x4356_5243; // "CVRC"
pub const REC_HEADER: usize = 16;

pub fn record_crc(payload: &[u8]) -> u64 {
    let mut h = StableHasher::with_domain("cv-store-wal");
    h.write_bytes(payload);
    h.finish64()
}

/// Everything the store must remember about a committed view besides its
/// row bytes (which live in pages). Serialized into view-commit WAL records
/// and checkpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct DurableViewMeta {
    pub strict_sig: Sig128,
    pub recurring_sig: Sig128,
    pub rows: u64,
    pub bytes: u64,
    pub created: SimTime,
    pub expires: SimTime,
    pub creator_job: JobId,
    pub vc: VcId,
    pub input_guids: Vec<VersionGuid>,
    pub observed_work: f64,
    /// Content checksum of the table ([`cv_data::viewstore::table_checksum`]).
    pub checksum: u64,
    /// Page slots holding the encoded table, in payload order.
    pub pages: Vec<u64>,
    /// Total encoded-table length (the page payloads concatenate to this).
    pub blob_len: u64,
}

pub fn encode_meta(e: &mut Enc, m: &DurableViewMeta) {
    e.put_u128(m.strict_sig.0);
    e.put_u128(m.recurring_sig.0);
    e.put_u64(m.rows);
    e.put_u64(m.bytes);
    e.put_f64(m.created.0);
    e.put_f64(m.expires.0);
    e.put_u64(m.creator_job.0);
    e.put_u64(m.vc.0);
    e.put_u32(m.input_guids.len() as u32);
    for g in &m.input_guids {
        e.put_u128(g.0);
    }
    e.put_f64(m.observed_work);
    e.put_u64(m.checksum);
    e.put_u32(m.pages.len() as u32);
    for p in &m.pages {
        e.put_u64(*p);
    }
    e.put_u64(m.blob_len);
}

pub fn decode_meta(d: &mut Dec<'_>) -> CodecResult<DurableViewMeta> {
    let strict_sig = Sig128(d.get_u128()?);
    let recurring_sig = Sig128(d.get_u128()?);
    let rows = d.get_u64()?;
    let bytes = d.get_u64()?;
    let created = SimTime(d.get_f64()?);
    let expires = SimTime(d.get_f64()?);
    let creator_job = JobId(d.get_u64()?);
    let vc = VcId(d.get_u64()?);
    let n_guids = d.get_u32()? as usize;
    let mut input_guids = Vec::with_capacity(n_guids);
    for _ in 0..n_guids {
        input_guids.push(VersionGuid(d.get_u128()?));
    }
    let observed_work = d.get_f64()?;
    let checksum = d.get_u64()?;
    let n_pages = d.get_u32()? as usize;
    let mut pages = Vec::with_capacity(n_pages);
    for _ in 0..n_pages {
        pages.push(d.get_u64()?);
    }
    let blob_len = d.get_u64()?;
    Ok(DurableViewMeta {
        strict_sig,
        recurring_sig,
        rows,
        bytes,
        created,
        expires,
        creator_job,
        vc,
        input_guids,
        observed_work,
        checksum,
        pages,
        blob_len,
    })
}

/// One logged mutation. Replay applies these in order to the checkpoint
/// state; every variant is idempotent under re-application.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    ViewCommit(DurableViewMeta),
    Quarantine { sig: Sig128 },
    PurgeInput { guid: VersionGuid, now: SimTime },
    PurgeVc { vc: VcId, now: SimTime },
    Expire { now: SimTime },
}

const TAG_COMMIT: u8 = 1;
const TAG_QUARANTINE: u8 = 2;
const TAG_PURGE_INPUT: u8 = 3;
const TAG_PURGE_VC: u8 = 4;
const TAG_EXPIRE: u8 = 5;

pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    match rec {
        WalRecord::ViewCommit(m) => {
            e.put_u8(TAG_COMMIT);
            encode_meta(&mut e, m);
        }
        WalRecord::Quarantine { sig } => {
            e.put_u8(TAG_QUARANTINE);
            e.put_u128(sig.0);
        }
        WalRecord::PurgeInput { guid, now } => {
            e.put_u8(TAG_PURGE_INPUT);
            e.put_u128(guid.0);
            e.put_f64(now.0);
        }
        WalRecord::PurgeVc { vc, now } => {
            e.put_u8(TAG_PURGE_VC);
            e.put_u64(vc.0);
            e.put_f64(now.0);
        }
        WalRecord::Expire { now } => {
            e.put_u8(TAG_EXPIRE);
            e.put_f64(now.0);
        }
    }
    e.into_bytes()
}

pub fn decode_record(payload: &[u8]) -> CodecResult<WalRecord> {
    let mut d = Dec::new(payload);
    let rec = match d.get_u8()? {
        TAG_COMMIT => WalRecord::ViewCommit(decode_meta(&mut d)?),
        TAG_QUARANTINE => WalRecord::Quarantine { sig: Sig128(d.get_u128()?) },
        TAG_PURGE_INPUT => {
            WalRecord::PurgeInput { guid: VersionGuid(d.get_u128()?), now: SimTime(d.get_f64()?) }
        }
        TAG_PURGE_VC => WalRecord::PurgeVc { vc: VcId(d.get_u64()?), now: SimTime(d.get_f64()?) },
        TAG_EXPIRE => WalRecord::Expire { now: SimTime(d.get_f64()?) },
        _ => return Err(CodecError("unknown wal record tag")),
    };
    if !d.is_done() {
        return Err(CodecError("trailing bytes in wal record"));
    }
    Ok(rec)
}

/// Frame a record payload: `[REC_MAGIC][len][crc][payload]`. The CRC is
/// always computed over the *intended* payload; a torn-write fault corrupts
/// the payload bytes afterwards so the frame stays complete but fails
/// verification at replay.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u32(REC_MAGIC);
    e.put_u32(payload.len() as u32);
    e.put_u64(record_crc(payload));
    e.put_bytes(payload);
    e.into_bytes()
}

pub fn encode_wal_header(epoch: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u64(WAL_MAGIC);
    e.put_u64(epoch);
    e.into_bytes()
}

/// Parse the 16-byte file header; `None` if torn or not a WAL.
pub fn decode_wal_header(buf: &[u8]) -> Option<u64> {
    if buf.len() < WAL_HEADER {
        return None;
    }
    let mut d = Dec::new(&buf[..WAL_HEADER]);
    if d.get_u64().ok()? != WAL_MAGIC {
        return None;
    }
    d.get_u64().ok()
}

/// Result of scanning the record region of a WAL.
#[derive(Debug)]
pub struct WalScan {
    /// Records that framed and decoded cleanly, in log order.
    pub records: Vec<WalRecord>,
    /// Complete frames whose CRC (or decode) failed — torn writes.
    pub skipped: u64,
    /// Length of the structurally valid prefix (relative to the start of
    /// the record region). Recovery truncates the file to
    /// `WAL_HEADER + valid_len`.
    pub valid_len: usize,
}

/// Scan the bytes after the file header. Never fails: damage terminates or
/// skips, it does not error.
pub fn scan_records(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut skipped = 0u64;
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.len() < REC_HEADER {
            break; // torn or absent header at tail
        }
        let mut d = Dec::new(rest);
        let magic = d.get_u32().unwrap_or(0);
        let len = d.get_u32().unwrap_or(0) as usize;
        let crc = d.get_u64().unwrap_or(0);
        if magic != REC_MAGIC || rest.len() < REC_HEADER + len {
            break; // not a record boundary, or payload torn at the tail
        }
        let payload = &rest[REC_HEADER..REC_HEADER + len];
        if record_crc(payload) == crc {
            match decode_record(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => skipped += 1, // good CRC, bad shape: treat as torn
            }
        } else {
            skipped += 1;
        }
        pos += REC_HEADER + len;
    }
    WalScan { records, skipped, valid_len: pos }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(sig: u128) -> DurableViewMeta {
        DurableViewMeta {
            strict_sig: Sig128(sig),
            recurring_sig: Sig128(sig ^ 0xff),
            rows: 10,
            bytes: 80,
            created: SimTime(1.5),
            expires: SimTime(7.5),
            creator_job: JobId(3),
            vc: VcId(4),
            input_guids: vec![VersionGuid(42), VersionGuid(43)],
            observed_work: 12.5,
            checksum: 0xabcd,
            pages: vec![0, 3, 7],
            blob_len: 20000,
        }
    }

    fn all_records() -> Vec<WalRecord> {
        vec![
            WalRecord::ViewCommit(meta(1)),
            WalRecord::Quarantine { sig: Sig128(2) },
            WalRecord::PurgeInput { guid: VersionGuid(9), now: SimTime(3.0) },
            WalRecord::PurgeVc { vc: VcId(1), now: SimTime(4.0) },
            WalRecord::Expire { now: SimTime(5.0) },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in all_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn scan_reads_back_a_clean_log() {
        let mut log = Vec::new();
        for rec in all_records() {
            log.extend(frame_record(&encode_record(&rec)));
        }
        let scan = scan_records(&log);
        assert_eq!(scan.records, all_records());
        assert_eq!(scan.skipped, 0);
        assert_eq!(scan.valid_len, log.len());
    }

    #[test]
    fn corrupt_complete_frame_is_skipped_later_records_survive() {
        let recs = all_records();
        let mut log = Vec::new();
        let mut second_start = 0;
        for (i, rec) in recs.iter().enumerate() {
            if i == 1 {
                second_start = log.len();
            }
            log.extend(frame_record(&encode_record(rec)));
        }
        // Corrupt one payload byte of the second record: its frame is still
        // complete, so every other record must survive the scan.
        log[second_start + REC_HEADER] ^= 0xff;
        let scan = scan_records(&log);
        assert_eq!(scan.skipped, 1);
        assert_eq!(scan.records.len(), recs.len() - 1);
        assert!(!scan.records.contains(&recs[1]));
        assert_eq!(scan.valid_len, log.len());
    }

    #[test]
    fn torn_tail_truncates_at_every_byte_boundary() {
        let recs = all_records();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in &recs {
            log.extend(frame_record(&encode_record(rec)));
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let scan = scan_records(&log[..cut]);
            // The valid prefix is the last record boundary at or before cut.
            let expect_n = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(scan.records.len(), expect_n, "cut at {cut}");
            assert_eq!(scan.records[..], recs[..expect_n], "cut at {cut}");
            assert_eq!(scan.valid_len, boundaries[expect_n], "cut at {cut}");
            assert_eq!(scan.skipped, 0);
        }
    }

    #[test]
    fn header_round_trips_and_rejects_torn() {
        let h = encode_wal_header(7);
        assert_eq!(decode_wal_header(&h), Some(7));
        assert_eq!(decode_wal_header(&h[..10]), None);
        let mut bad = h.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_wal_header(&bad), None);
    }
}
