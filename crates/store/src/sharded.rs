//! Signature-striped collection of [`DurableViewStore`] shards.
//!
//! Mirrors [`cv_data::sharded::ShardedViewStore`]: the same deterministic
//! routing function sends each signature to one shard, so a view lands in
//! the same on-disk subdirectory (`shard-000`, `shard-001`, …) in every
//! run. Each shard is an independent WAL + page file + checkpoint, which
//! keeps commit records small and lets the service layer's workers fan out
//! across shard mutexes instead of serializing on one.

use crate::store::{DurableStoreOptions, DurableViewStore};
use cv_common::ids::{VcId, VersionGuid};
use cv_common::{FaultPlan, Result, Sig128, SimDuration, SimTime};
use cv_data::store_api::{SharedViewStore, StoreIoStats};
use cv_data::table::Table;
use cv_data::viewstore::{
    MaterializedView, ViewReadFault, ViewSource, ViewStoreStats, ViewTemperature,
};
use std::path::{Path, PathBuf};

/// N independently locked durable stores behind one signature-routed front.
#[derive(Debug)]
pub struct ShardedDurableViewStore {
    shards: Vec<DurableViewStore>,
}

impl ShardedDurableViewStore {
    /// Open `n_shards` stores under `dir/shard-XXX`, recovering each.
    pub fn open(
        dir: impl Into<PathBuf>,
        ttl: SimDuration,
        n_shards: usize,
        opts: DurableStoreOptions,
    ) -> Result<ShardedDurableViewStore> {
        let dir = dir.into();
        let n = n_shards.max(1);
        let shards = (0..n)
            .map(|i| DurableViewStore::open(dir.join(format!("shard-{i:03}")), ttl, opts.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedDurableViewStore { shards })
    }

    /// Same routing as the in-memory sharded store.
    fn shard_of(&self, sig: Sig128) -> usize {
        let mixed = (sig.0 as u64) ^ ((sig.0 >> 64) as u64);
        (mixed % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, sig: Sig128) -> &DurableViewStore {
        &self.shards[self.shard_of(sig)]
    }

    pub fn shards(&self) -> &[DurableViewStore] {
        &self.shards
    }

    pub fn dir_of(&self, sig: Sig128) -> &Path {
        self.shard_for(sig).dir()
    }

    pub fn recover_in_place(&self) -> Result<()> {
        for s in &self.shards {
            s.recover_in_place()?;
        }
        Ok(())
    }

    pub fn checkpoint_now(&self) -> Result<()> {
        for s in &self.shards {
            s.checkpoint_now()?;
        }
        Ok(())
    }

    pub fn io_stats(&self) -> StoreIoStats {
        let mut total = StoreIoStats::default();
        for s in &self.shards {
            total.merge(&s.io_stats());
        }
        total
    }
}

impl ViewSource for ShardedDurableViewStore {
    fn read_view(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<Table>, ViewReadFault> {
        self.shard_for(sig).read_view(sig, now)
    }

    fn read_view_traced(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<(Table, ViewTemperature)>, ViewReadFault> {
        self.shard_for(sig).read_view_traced(sig, now)
    }
}

impl SharedViewStore for ShardedDurableViewStore {
    fn insert(&self, view: MaterializedView) -> Result<()> {
        self.shard_for(view.strict_sig).insert(view)
    }
    fn contains(&self, sig: Sig128) -> bool {
        self.shard_for(sig).contains(sig)
    }
    fn contains_live(&self, sig: Sig128, now: SimTime) -> bool {
        self.shard_for(sig).contains_live(sig, now)
    }
    fn is_quarantined(&self, sig: Sig128) -> bool {
        self.shard_for(sig).is_quarantined(sig)
    }
    fn quarantine(&self, sig: Sig128) -> Result<bool> {
        self.shard_for(sig).quarantine(sig)
    }
    fn peek_meta(&self, sig: Sig128, now: SimTime) -> Option<(u64, u64, f64)> {
        self.shard_for(sig).peek_meta(sig, now)
    }
    fn observed_work(&self, sig: Sig128) -> Option<f64> {
        self.shard_for(sig).observed_work(sig)
    }
    fn evict_expired(&self, now: SimTime) -> Result<usize> {
        let mut total = 0;
        for s in &self.shards {
            total += s.evict_expired(now)?;
        }
        Ok(total)
    }
    fn purge_input(&self, guid: VersionGuid, now: SimTime) -> Result<usize> {
        let mut total = 0;
        for s in &self.shards {
            total += s.purge_input(guid, now)?;
        }
        Ok(total)
    }
    fn purge_vc(&self, vc: VcId, now: SimTime) -> Result<usize> {
        let mut total = 0;
        for s in &self.shards {
            total += s.purge_vc(vc, now)?;
        }
        Ok(total)
    }
    fn sigs_with_input(&self, guid: VersionGuid) -> Vec<Sig128> {
        let mut out: Vec<Sig128> =
            self.shards.iter().flat_map(|s| s.sigs_with_input(guid)).collect();
        out.sort();
        out
    }
    fn stats(&self) -> ViewStoreStats {
        let mut total = ViewStoreStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
    fn total_storage(&self) -> u64 {
        self.shards.iter().map(|s| s.total_storage()).sum()
    }
    fn storage_used(&self, vc: VcId) -> u64 {
        self.shards.iter().map(|s| s.storage_used(vc)).sum()
    }
    fn n_shards(&self) -> usize {
        self.shards.len()
    }
    fn ttl(&self) -> SimDuration {
        self.shards[0].ttl()
    }
    fn set_fault_plan(&self, plan: FaultPlan) {
        for s in &self.shards {
            s.set_fault_plan(plan.clone());
        }
    }
    fn io_stats(&self) -> Option<StoreIoStats> {
        Some(ShardedDurableViewStore::io_stats(self))
    }
    fn is_resident(&self, sig: Sig128) -> bool {
        self.shard_for(sig).is_resident(sig)
    }
}
