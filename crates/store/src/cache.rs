//! Buffer-pool page cache with clock (second-chance) eviction.
//!
//! Deterministic by construction: eviction order depends only on the
//! sequence of `get`/`insert` calls, never on time or addresses. Counters
//! (hits, misses are the caller's to count; evictions here) feed cv-obs and
//! the engine's hot/cold read costing.

use std::collections::HashMap;

#[derive(Debug)]
struct Frame {
    page_id: u64,
    bytes: Vec<u8>,
    referenced: bool,
}

/// Fixed-capacity page cache keyed by page id.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    frames: Vec<Frame>,
    slots: HashMap<u64, usize>,
    hand: usize,
    evictions: u64,
}

impl PageCache {
    pub fn new(capacity: usize) -> PageCache {
        PageCache {
            capacity: capacity.max(1),
            frames: Vec::new(),
            slots: HashMap::new(),
            hand: 0,
            evictions: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn contains(&self, page_id: u64) -> bool {
        self.slots.contains_key(&page_id)
    }

    /// Look up a cached page, marking it recently used.
    pub fn get(&mut self, page_id: u64) -> Option<&[u8]> {
        let &slot = self.slots.get(&page_id)?;
        self.frames[slot].referenced = true;
        Some(&self.frames[slot].bytes)
    }

    /// Insert (or refresh) a page. Evicts via the clock hand when full.
    pub fn insert(&mut self, page_id: u64, bytes: Vec<u8>) {
        if let Some(&slot) = self.slots.get(&page_id) {
            self.frames[slot].bytes = bytes;
            self.frames[slot].referenced = true;
            return;
        }
        if self.frames.len() < self.capacity {
            self.slots.insert(page_id, self.frames.len());
            self.frames.push(Frame { page_id, bytes, referenced: true });
            return;
        }
        // Clock sweep: clear reference bits until an unreferenced frame is
        // found; bounded because each pass clears one bit.
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[slot].referenced {
                self.frames[slot].referenced = false;
            } else {
                self.slots.remove(&self.frames[slot].page_id);
                self.evictions += 1;
                self.slots.insert(page_id, slot);
                self.frames[slot] = Frame { page_id, bytes, referenced: true };
                return;
            }
        }
    }

    /// Drop a page (its slot was freed; stale bytes must not be served).
    pub fn invalidate(&mut self, page_id: u64) {
        if let Some(slot) = self.slots.remove(&page_id) {
            self.frames[slot].bytes = Vec::new();
            self.frames[slot].referenced = false;
            self.frames[slot].page_id = u64::MAX; // unreachable id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction() {
        let mut c = PageCache::new(2);
        c.insert(1, vec![1]);
        c.insert(2, vec![2]);
        assert_eq!(c.get(1), Some(&[1u8][..]));
        assert!(c.get(3).is_none());
        c.insert(3, vec![3]); // evicts one of the two
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.contains(3));
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut c = PageCache::new(3);
        c.insert(1, vec![1]);
        c.insert(2, vec![2]);
        c.insert(3, vec![3]);
        // Full sweep clears all bits and evicts page 1 (hand wraps to it).
        c.insert(4, vec![4]);
        assert!(!c.contains(1));
        // Pages 2 and 3 now have clear bits; touching 3 re-arms it, so the
        // next eviction takes the untouched page 2, not page 3.
        c.get(3);
        c.insert(5, vec![5]);
        assert!(c.contains(3), "recently used page was evicted");
        assert!(!c.contains(2));
        assert!(c.contains(5));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = PageCache::new(2);
        c.insert(7, vec![7]);
        c.invalidate(7);
        assert!(c.get(7).is_none());
        // The freed frame is reusable.
        c.insert(8, vec![8]);
        c.insert(9, vec![9]);
        assert!(c.contains(8) && c.contains(9));
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut c = PageCache::new(4);
            for i in 0..32u64 {
                c.insert(i, vec![i as u8]);
                if i % 3 == 0 {
                    c.get(i / 2);
                }
            }
            let mut present: Vec<u64> = (0..32).filter(|&i| c.contains(i)).collect();
            present.sort_unstable();
            (present, c.evictions())
        };
        assert_eq!(run(), run());
    }
}
