//! `cv-store` — disk-backed, crash-recoverable materialized-view storage.
//!
//! CloudViews materializes views to *stable storage* (paper §2.4); this
//! crate is that storage for the reproduction. It keeps the logical
//! semantics of the in-memory [`cv_data::viewstore::ViewStore`] — strict
//! signatures, TTL expiry, quarantine denylist, GDPR purge, content
//! checksums — while adding the durability machinery production reuse
//! systems live on:
//!
//! * [`page`] — fixed 8 KiB pages with per-page CRCs under a clock-evicting
//!   buffer pool ([`cache`]);
//! * [`wal`] — a write-ahead log with record CRCs and idempotent replay;
//! * [`store::DurableViewStore`] — the store itself: WAL-first mutation
//!   ordering, periodic checkpoints, byte-budget crash injection
//!   ([`cv_common::FaultPoint::CrashAt`]) and torn-record injection
//!   ([`cv_common::FaultPoint::WalTornWrite`]), and crash recovery that
//!   replays to a state whose served rows are byte-identical to a
//!   never-crashed run;
//! * [`sharded::ShardedDurableViewStore`] — the lock-striped variant for
//!   the service layer.

pub mod cache;
pub mod codec;
pub mod page;
pub mod sharded;
pub mod store;
pub mod wal;

pub use cache::PageCache;
pub use sharded::ShardedDurableViewStore;
pub use store::{DurableStoreOptions, DurableViewStore};
pub use wal::{DurableViewMeta, WalRecord};

// The durable stores cross worker threads in the service layer; keep them
// provably Send + Sync at compile time, like the cv-data stores.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DurableViewStore>();
    assert_send_sync::<ShardedDurableViewStore>();
};
