//! Crash-recovery integration tests: kill the store at arbitrary durable
//! byte offsets and require the recovered state — and a full reopen — to be
//! indistinguishable (by signature, by row content, and by operational
//! control state) from a run that never crashed.

use cv_common::ids::{JobId, VcId, VersionGuid};
use cv_common::{DetRng, FaultPlan, Result, Sig128, SimDuration, SimTime};
use cv_data::schema::{Field, Schema};
use cv_data::table::Table;
use cv_data::value::{DataType, Value};
use cv_data::viewstore::{MaterializedView, ViewSource};
use cv_store::{DurableStoreOptions, DurableViewStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("cv-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn view(sig: u128, vc: u64, guid: u128, created: SimTime, rows: i64) -> MaterializedView {
    let schema =
        Schema::new(vec![Field::not_null("k", DataType::Int), Field::new("label", DataType::Str)])
            .unwrap()
            .into_ref();
    let data = Table::from_rows(
        schema.clone(),
        &(0..rows)
            .map(|i| vec![Value::Int(i * sig as i64), Value::Str(format!("r{sig}-{i}"))])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    MaterializedView {
        strict_sig: Sig128(sig),
        recurring_sig: Sig128(sig ^ 0xffff),
        schema,
        data,
        rows: 0,
        bytes: 0,
        created,
        expires: created,
        creator_job: JobId(1),
        vc: VcId(vc),
        input_guids: vec![VersionGuid(guid)],
        observed_work: 10.0,
        checksum: 0,
    }
}

fn small_opts() -> DurableStoreOptions {
    DurableStoreOptions { cache_pages: 4, checkpoint_every: 1_000_000 }
}

/// Rows of every given signature (None = not served), plus quarantine flag.
type Snapshot = Vec<(Sig128, Option<Vec<String>>, bool)>;

fn snapshot(store: &DurableViewStore, now: SimTime, sigs: &[u128]) -> Snapshot {
    sigs.iter()
        .map(|&s| {
            let sig = Sig128(s);
            let rows = store
                .read_view(sig, now)
                .expect("fault-free read must not fail")
                .map(|t| t.canonical_rows());
            (sig, rows, store.is_quarantined(sig))
        })
        .collect()
}

/// Run `op`; on a simulated kill, recover and retry exactly once.
fn attempt<T>(
    store: &DurableViewStore,
    recoveries: &mut u32,
    op: impl Fn(&DurableViewStore) -> Result<T>,
) -> T {
    match op(store) {
        Ok(v) => v,
        Err(e) if e.is_crash() => {
            store.recover_in_place().expect("recovery must succeed");
            *recoveries += 1;
            op(store).expect("retry after recovery must succeed")
        }
        Err(e) => panic!("unexpected non-crash error: {e}"),
    }
}

const SCRIPT_SIGS: [u128; 7] = [1, 2, 3, 4, 5, 6, 7];
const SCRIPT_END: SimTime = SimTime(9.0 * 86_400.0);

/// A fixed mutation script covering every WAL record type: inserts,
/// quarantine, GDPR purge, TTL eviction, a checkpoint, and a VC purge.
fn run_script(store: &DurableViewStore, recoveries: &mut u32) {
    let d = |days: f64| SimTime::from_days(days);
    attempt(store, recoveries, |s| s.insert(view(1, 1, 42, d(0.0), 3)));
    attempt(store, recoveries, |s| s.insert(view(2, 1, 42, d(0.0), 4)));
    attempt(store, recoveries, |s| s.insert(view(3, 1, 99, d(0.0), 2)));
    attempt(store, recoveries, |s| s.insert(view(4, 2, 42, d(0.0), 5)));
    attempt(store, recoveries, |s| s.quarantine(Sig128(3)));
    attempt(store, recoveries, |s| s.insert(view(5, 1, 77, d(1.0), 3)));
    attempt(store, recoveries, |s| s.purge_input(VersionGuid(42), d(1.0)));
    attempt(store, recoveries, |s| s.insert(view(6, 2, 77, d(3.0), 2)));
    attempt(store, recoveries, |s| s.evict_expired(d(8.5)));
    attempt(store, recoveries, |s| s.checkpoint_now());
    attempt(store, recoveries, |s| s.insert(view(7, 1, 77, d(8.6), 4)));
    attempt(store, recoveries, |s| s.purge_vc(VcId(2), d(8.7)));
}

fn baseline() -> (Snapshot, u64) {
    let dir = temp_dir("baseline");
    let store = DurableViewStore::open(&dir, SimDuration::from_days(7.0), small_opts()).unwrap();
    let mut recoveries = 0;
    run_script(&store, &mut recoveries);
    assert_eq!(recoveries, 0);
    let snap = snapshot(&store, SCRIPT_END, &SCRIPT_SIGS);
    let bytes = store.io_stats().bytes_written_durably;
    let _ = std::fs::remove_dir_all(&dir);
    (snap, bytes)
}

#[test]
fn baseline_script_reaches_expected_state() {
    let (snap, bytes) = baseline();
    let alive: Vec<u128> =
        snap.iter().filter(|(_, rows, _)| rows.is_some()).map(|(s, _, _)| s.0).collect();
    // 1,2,4 purged by GDPR; 3 quarantined; 5 expired (created day 1, ttl 7,
    // read at day 9); 6 purged by VC; 7 live.
    assert_eq!(alive, vec![7]);
    assert!(snap[2].2, "sig 3 must be quarantined");
    assert!(bytes > 0);
}

#[test]
fn crash_at_swept_byte_offsets_recovers_to_baseline_state() {
    let (want, total_bytes) = baseline();
    // Sweep kill offsets across the whole durable byte range. The step is
    // small enough to land inside WAL records (framed records are tens of
    // bytes) as well as page and checkpoint interiors; the scanner itself
    // is separately tested at *every* byte boundary in cv-store's wal
    // unit tests.
    let step = (total_bytes / 400).max(1) as usize;
    let dir = temp_dir("crash-sweep");
    let mut crashes = 0u32;
    for k in (1..total_bytes).step_by(step) {
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            DurableViewStore::open(&dir, SimDuration::from_days(7.0), small_opts()).unwrap();
        store.set_fault_plan(FaultPlan::seeded(1).with_crash_after_bytes(k));
        let mut recoveries = 0;
        run_script(&store, &mut recoveries);
        assert_eq!(recoveries, 1, "kill at byte {k} did not fire exactly once");
        crashes += 1;
        let got = snapshot(&store, SCRIPT_END, &SCRIPT_SIGS);
        assert_eq!(got, want, "in-place recovery diverged after kill at byte {k}");
        // A full process restart over the same directory must agree too.
        drop(store);
        let reopened =
            DurableViewStore::open(&dir, SimDuration::from_days(7.0), small_opts()).unwrap();
        let got = snapshot(&reopened, SCRIPT_END, &SCRIPT_SIGS);
        assert_eq!(got, want, "reopen diverged after kill at byte {k}");
    }
    assert!(crashes > 100, "sweep too sparse: only {crashes} kills");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: operational controls written before a crash must hold after
/// recovery — no resurrected purged/quarantined/expired views, checked by
/// signature and by row content, across randomized op interleavings.
#[test]
fn operational_controls_survive_restart_property() {
    for seed in 0..12u64 {
        let mut rng = DetRng::seed(0xC0FFEE ^ seed);
        let dir = temp_dir("props");
        let ttl = SimDuration::from_days(7.0);
        let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
        let n_views = rng.range_usize(4, 12);
        let mut now = SimTime::EPOCH;
        let mut quarantined: Vec<u128> = Vec::new();
        let mut purged_sigs: Vec<Sig128> = Vec::new();
        for sig in 1..=n_views as u128 {
            let guid = rng.range_u64(1, 4) as u128; // few guids → purges overlap
            let vc = rng.range_u64(1, 3);
            store.insert(view(sig, vc, guid, now, rng.range_i64(1, 6))).unwrap();
            now += SimDuration::from_hours(rng.range_f64(1.0, 20.0));
            if rng.chance(0.25) {
                store.quarantine(Sig128(sig)).unwrap();
                quarantined.push(sig);
            }
            if rng.chance(0.2) {
                // Purge is point-in-time: record which views it tombstoned
                // (later inserts may legitimately reuse the guid).
                let g = VersionGuid(rng.range_u64(1, 4) as u128);
                purged_sigs.extend(store.sigs_with_input(g));
                store.purge_input(g, now).unwrap();
            }
            if rng.chance(0.15) {
                store.evict_expired(now).unwrap();
            }
            if rng.chance(0.1) {
                store.checkpoint_now().unwrap();
            }
        }
        let sigs: Vec<u128> = (1..=n_views as u128).collect();
        let before = snapshot(&store, now, &sigs);
        drop(store); // "crash": state is only what reached disk

        let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
        let after = snapshot(&reopened, now, &sigs);
        assert_eq!(before, after, "seed {seed}: restart changed visible state");
        for sig in &quarantined {
            assert!(reopened.is_quarantined(Sig128(*sig)), "seed {seed}: lost quarantine {sig}");
            assert!(
                reopened.read_view(Sig128(*sig), now).unwrap().is_none(),
                "seed {seed}: quarantined view {sig} resurrected"
            );
        }
        for sig in &purged_sigs {
            assert!(
                reopened.read_view(*sig, now).unwrap().is_none(),
                "seed {seed}: purged view {sig} resurrected after restart"
            );
            assert!(!reopened.contains(*sig), "seed {seed}: purged view {sig} still indexed");
        }
        // Row-content check: no surviving view may contain rows derived
        // from a view that was purged or quarantined (each view's rows
        // embed its signature, so leakage is detectable in content).
        for (sig, rows, _) in &after {
            if let Some(rows) = rows {
                for row in rows {
                    assert!(
                        row.contains(&format!("r{}-", sig.0)),
                        "seed {seed}: view {sig} serves foreign rows: {row}"
                    );
                }
            }
        }
        // TTL must also hold across restart: far future reads miss.
        let far = now + SimDuration::from_days(8.0);
        for sig in &sigs {
            assert!(
                reopened.read_view(Sig128(*sig), far).unwrap().is_none(),
                "seed {seed}: view {sig} served past its TTL after restart"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_wal_commit_is_lost_but_later_records_survive() {
    let dir = temp_dir("torn");
    let ttl = SimDuration::from_days(7.0);
    let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    // High torn-write rate over many commits: some records land corrupt.
    store.set_fault_plan(FaultPlan::seeded(5).with_rate(cv_common::FaultPoint::WalTornWrite, 0.5));
    for sig in 1..=24u128 {
        store.insert(view(sig, 1, 42, SimTime::EPOCH, 3)).unwrap();
    }
    // Operational records after the (possibly torn) commits must survive.
    store.quarantine(Sig128(24)).unwrap();
    assert_eq!(store.len(), 23, "torn writes are invisible before restart");
    drop(store);

    let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    let io = reopened.io_stats();
    assert!(io.wal_records_skipped > 0, "0.5 torn rate over 24 commits must tear");
    assert!(io.wal_records_replayed > 0);
    assert!(reopened.len() < 23, "torn commits must be lost at restart");
    assert!(!reopened.is_empty(), "not every commit was torn");
    assert!(reopened.is_quarantined(Sig128(24)), "quarantine after torn commits lost");
    // Surviving views serve intact rows (fault plan gone after reopen).
    for sig in 1..=23u128 {
        if let Some(t) = reopened.read_view(Sig128(sig), SimTime::EPOCH).unwrap() {
            assert!(t.canonical_rows().iter().all(|r| r.contains(&format!("r{sig}-"))));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_header_falls_back_to_checkpoint() {
    let dir = temp_dir("torn-header");
    let ttl = SimDuration::from_days(7.0);
    let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    store.insert(view(1, 1, 42, SimTime::EPOCH, 3)).unwrap();
    store.checkpoint_now().unwrap();
    store.insert(view(2, 1, 42, SimTime::EPOCH, 3)).unwrap();
    drop(store);
    // Tear the WAL header: everything after the checkpoint is lost, but the
    // checkpointed view must recover.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..7]).unwrap();
    let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    assert!(reopened.contains(Sig128(1)));
    assert!(!reopened.contains(Sig128(2)));
    assert_eq!(reopened.io_stats().wal_records_replayed, 0);
    // The store keeps working after the reset.
    reopened.insert(view(3, 1, 42, SimTime::EPOCH, 3)).unwrap();
    drop(reopened);
    let again = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    assert!(again.contains(Sig128(3)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_page_on_disk_is_caught_without_a_fault_plan() {
    use cv_data::viewstore::ViewReadFault;
    let dir = temp_dir("bitrot");
    let ttl = SimDuration::from_days(7.0);
    let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    store.insert(view(1, 1, 42, SimTime::EPOCH, 50)).unwrap();
    drop(store);
    // Flip one payload byte in pages.dat — classic bit rot / torn write.
    let pages = dir.join("pages.dat");
    let mut bytes = std::fs::read(&pages).unwrap();
    bytes[100] ^= 0x01;
    std::fs::write(&pages, &bytes).unwrap();
    let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    // Cold read, no fault plan active: the damage must still be caught.
    assert_eq!(
        reopened.read_view(Sig128(1), SimTime::EPOCH).err(),
        Some(ViewReadFault::Corrupt),
        "cold read served corrupt bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn page_cache_serves_hot_reads_and_reports_temperature() {
    use cv_data::viewstore::ViewTemperature;
    let dir = temp_dir("cache");
    let ttl = SimDuration::from_days(7.0);
    let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    store.insert(view(1, 1, 42, SimTime::EPOCH, 3)).unwrap();
    // Freshly inserted pages are warm.
    let (_, temp) = store.read_view_traced(Sig128(1), SimTime::EPOCH).unwrap().unwrap();
    assert_eq!(temp, ViewTemperature::Hot);
    drop(store);
    let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    // First read after a restart is cold, the second hot.
    let (_, t1) = reopened.read_view_traced(Sig128(1), SimTime::EPOCH).unwrap().unwrap();
    let (_, t2) = reopened.read_view_traced(Sig128(1), SimTime::EPOCH).unwrap().unwrap();
    assert_eq!((t1, t2), (ViewTemperature::Cold, ViewTemperature::Hot));
    let io = reopened.io_stats();
    assert!(io.page_cache_misses > 0 && io.page_cache_hits > 0);
    assert!(io.page_cache_hit_rate() > 0.0 && io.page_cache_hit_rate() < 1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Build two generations of a grouped-aggregate view over a mutating fact
/// table using cv-ivm's own delta path: the day-0 bootstrap contents and
/// the day-1 incrementally maintained contents.
fn ivm_generations() -> (Table, Table) {
    use cv_engine::engine::QueryEngine;
    use cv_engine::optimizer::{OptimizerConfig, ReuseContext};
    use cv_engine::sql::Params;
    use cv_ivm::{IvmEngine, Maintain, TrackOutcome};

    let mut rng = DetRng::seed(0x1f2e3d);
    let schema = Schema::new(vec![Field::new("k", DataType::Str), Field::new("v", DataType::Int)])
        .unwrap()
        .into_ref();
    let row = |rng: &mut DetRng| {
        vec![
            if rng.chance(0.15) {
                Value::Null
            } else {
                Value::Str(format!("k{}", rng.range_u64(0, 9)))
            },
            if rng.chance(0.1) { Value::Null } else { Value::Int(rng.range_i64(-40, 90)) },
        ]
    };
    let rows: Vec<Vec<Value>> = (0..200).map(|_| row(&mut rng)).collect();
    let fact0 = Table::from_rows(schema, &rows).unwrap();

    let mut engine = QueryEngine::new();
    let fact_id = engine.catalog.register("fact", fact0, SimTime::EPOCH).unwrap();
    let sql = "SELECT k, COUNT(*) AS cnt, SUM(v) AS total FROM fact GROUP BY k";
    let plan0 = engine.compile_sql(sql, &Params::none()).unwrap();
    let key = cv_engine::signature::template_signature(&plan0, &OptimizerConfig::default().sig)
        .expect("deterministic plan has a template signature");

    let mut ivm = IvmEngine::new(&OptimizerConfig::default());
    match ivm.track(key, &plan0, &engine.catalog).unwrap() {
        TrackOutcome::Tracked { .. } => {}
        TrackOutcome::Refused { codes } => panic!("template unexpectedly refused: {codes:?}"),
    }
    let old_view = engine
        .run_plan(&plan0, &ReuseContext::empty(), JobId(0), cv_common::ids::VcId(0), SimTime::EPOCH)
        .unwrap()
        .table;

    // Day 1: retract a few rows, append a fresh batch, maintain from deltas.
    let mut rows = engine.catalog.get(fact_id).unwrap().data().to_rows();
    for _ in 0..5 {
        let i = rng.range_u64(0, rows.len() as u64) as usize;
        rows.remove(i);
    }
    for _ in 0..40 {
        rows.push(row(&mut rng));
    }
    let fact_schema = engine.catalog.get(fact_id).unwrap().data().schema().clone();
    let fact1 = Table::from_rows(fact_schema, &rows).unwrap();
    engine.catalog.bulk_update_diff(fact_id, fact1, SimTime::from_days(1.0)).unwrap();

    let plan1 = engine.compile_sql(sql, &Params::none()).unwrap();
    let new_view = match ivm.maintain(key, &plan1, &engine.catalog) {
        Maintain::Maintained(mv) => mv.table,
        other => panic!("expected maintenance, got {other:?}"),
    };
    (old_view, new_view)
}

/// Satellite: incremental maintenance flows through the same durable WAL
/// commit path as any other view. A crash at any durable byte offset
/// between the delta apply and the publish commit must recover — in place
/// and across a full reopen — to either the old day's view or the new
/// day's view, never a torn mix.
#[test]
fn ivm_publish_crash_recovers_to_old_or_new_view_never_torn() {
    let (old_view, new_view) = ivm_generations();
    let (old_rows, new_rows) = (old_view.canonical_rows(), new_view.canonical_rows());
    assert_ne!(old_rows, new_rows, "the delta must actually change the view");

    const OLD_SIG: u128 = 0xA0;
    const NEW_SIG: u128 = 0xB1;
    let publish = |sig: u128, t: &Table, day: f64| MaterializedView {
        strict_sig: Sig128(sig),
        // Same recurring signature both days, as the driver republishes
        // a maintained view under each new day's strict signature.
        recurring_sig: Sig128(0x5eed),
        schema: t.schema().clone(),
        data: t.clone(),
        rows: 0,
        bytes: 0,
        created: SimTime::from_days(day),
        expires: SimTime::from_days(day),
        creator_job: JobId(1),
        vc: VcId(1),
        input_guids: vec![VersionGuid(7)],
        observed_work: 10.0,
        checksum: 0,
    };
    let ttl = SimDuration::from_days(7.0);
    let read_at = SimTime::from_days(1.5);

    // Fault-free dry run: learn how many durable bytes the publish and the
    // trailing checkpoint write. The insert lays pages down first and the
    // WAL commit record last, so every kill inside the publish itself loses
    // the new view; the checkpoint extends the sweep past the commit
    // boundary so the "new view survives" outcome is exercised too.
    let dir = temp_dir("ivm-dry");
    let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
    store.insert(publish(OLD_SIG, &old_view, 0.0)).unwrap();
    let before = store.io_stats().bytes_written_durably;
    store.insert(publish(NEW_SIG, &new_view, 1.0)).unwrap();
    let publish_bytes = store.io_stats().bytes_written_durably - before;
    store.checkpoint_now().unwrap();
    let sweep_bytes = store.io_stats().bytes_written_durably - before;
    assert!(publish_bytes > 0 && sweep_bytes > publish_bytes);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    // Old view must read back exactly; the new one is all-or-nothing.
    let check = |store: &DurableViewStore, ctx: &str| -> bool {
        let got_old = store
            .read_view(Sig128(OLD_SIG), read_at)
            .expect("fault-free read must not fail")
            .unwrap_or_else(|| panic!("{ctx}: previous day's view lost"))
            .canonical_rows();
        assert_eq!(got_old, old_rows, "{ctx}: previous day's view torn");
        match store.read_view(Sig128(NEW_SIG), read_at).expect("fault-free read must not fail") {
            None => false,
            Some(t) => {
                assert_eq!(t.canonical_rows(), new_rows, "{ctx}: maintained view torn");
                true
            }
        }
    };

    let step = (sweep_bytes / 80).max(1) as usize;
    let (mut lost, mut kept) = (0u32, 0u32);
    let dir = temp_dir("ivm-crash");
    for k in (1..=sweep_bytes).step_by(step) {
        let _ = std::fs::remove_dir_all(&dir);
        let store = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
        store.insert(publish(OLD_SIG, &old_view, 0.0)).unwrap();
        // Crash inside the maintained view's publish commit, or in the
        // checkpoint that follows it.
        store.set_fault_plan(FaultPlan::seeded(9).with_crash_after_bytes(k));
        let mut crashed = false;
        match store.insert(publish(NEW_SIG, &new_view, 1.0)) {
            Ok(_) => {}
            Err(e) if e.is_crash() => {
                crashed = true;
                store.recover_in_place().expect("recovery must succeed");
            }
            Err(e) => panic!("unexpected non-crash error at byte {k}: {e}"),
        }
        if !crashed {
            match store.checkpoint_now() {
                Ok(_) => {}
                Err(e) if e.is_crash() => store.recover_in_place().expect("recovery must succeed"),
                Err(e) => panic!("unexpected non-crash error at byte {k}: {e}"),
            }
        }
        let ctx = format!("in-place recovery, kill at publish byte {k}");
        let new_alive = check(&store, &ctx);
        drop(store);
        let reopened = DurableViewStore::open(&dir, ttl, small_opts()).unwrap();
        let ctx = format!("reopen, kill at publish byte {k}");
        assert_eq!(check(&reopened, &ctx), new_alive, "{ctx}: reopen disagrees with recovery");
        if new_alive {
            kept += 1;
        } else {
            lost += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    // The sweep must actually exercise both recovery outcomes.
    assert!(lost > 0, "no kill offset lost the publish — sweep too late");
    assert!(kept > 0, "no kill offset kept the publish — sweep too early");
}
