//! cv-service — in-process multi-tenant query service primitives.
//!
//! The paper's CloudViews runs inside a shared cloud service ("serverless"
//! SCOPE clusters, §2.1) where many jobs from many virtual clusters execute
//! concurrently against shared reuse state. This crate provides the
//! concurrency substrate for that setting:
//!
//! * [`pool`] — work-stealing worker pool with per-VC admission control,
//!   bounded queues, and dependency gating;
//! * [`morsel`] — pool-backed [`cv_engine::MorselRunner`] spreading the
//!   chunks of a single job across workers (intra-query parallelism);
//! * [`singleflight`] — the in-flight materialization registry that turns
//!   Fig. 9's concurrent-duplicate *opportunity* into realized savings:
//!   one builder per unsealed signature, everyone else pipelines;
//! * [`source`] — the per-job [`cv_data::viewstore::ViewSource`] that reads
//!   the sharded store and blocks on in-flight builds when promised;
//! * [`opstate`] — the lock-striped, size-budgeted operator-state cache
//!   reusing pipeline-breaker state (hash-join builds, aggregate states,
//!   sort runs) across concurrent and recurring jobs, with its own
//!   single-flight claim/wait and quarantine/GDPR purge coupling;
//! * [`stats`] — lock-free service-wide counters.
//!
//! The concurrent *driver* composing these with the engine, insights, and
//! cluster sim lives in cv-workload (`service_driver`); the `cv-serve` CLI
//! wraps it with a load generator.

pub mod morsel;
pub mod opstate;
pub mod pool;
pub mod singleflight;
pub mod source;
pub mod stats;

pub use morsel::PoolMorselRunner;
pub use opstate::{OpStateCache, OpStateCacheConfig, OpStateCacheStats, TaggedOpStates};
pub use pool::{run_tasks, PoolConfig, PoolReport, TaskSpec};
pub use singleflight::{FlightOutcome, PromisedView, SingleFlight, SingleFlightStats};
pub use source::PipelinedViewSource;
pub use stats::{ServiceStats, ServiceStatsSnapshot};

// Compile-time Send + Sync audit of the shared service state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SingleFlight>();
    assert_send_sync::<OpStateCache>();
    assert_send_sync::<TaggedOpStates>();
    assert_send_sync::<ServiceStats>();
    assert_send_sync::<PipelinedViewSource<'static>>();
    assert_send_sync::<cv_data::ShardedViewStore>();
};
