//! Single-flight materialization registry.
//!
//! The paper's Fig. 9 gap: CloudViews cannot reuse *concurrent* identical
//! subexpressions because the view is not sealed yet. The service closes
//! that gap — when N in-flight jobs hit the same unsealed signature, exactly
//! one (the first to claim at compile time) materializes it; the others are
//! planned against the *promised* view and pipeline from the builder's
//! result once it lands. This registry tracks the in-flight claims:
//!
//! * `claim` — the builder registers a signature with its estimated
//!   statistics (the promise later jobs plan against);
//! * `promise` — a later job's compile pass discovers an in-flight build
//!   and rewires its reuse context to consume it;
//! * `resolve` — the builder reports the materialization published (or
//!   failed, in which case consumers fall back to recompute);
//! * `wait` — execution-time block until resolution, for consumers that
//!   reach the read before the builder sealed (the scheduler's dependency
//!   gating makes this rare; it is the safety net, not the fast path).
//!
//! With chunked execution the registry is also the hand-off buffer: the
//! builder's `Spool` operator publishes each sealed chunk pre-commit (the
//! engine's [`SpoolSink`]), and consumers that were blocked on the flight
//! reassemble the view from those chunks via [`SingleFlight::sealed_chunks`]
//! without a second trip through the store.

use cv_common::ids::JobId;
use cv_common::Sig128;
use cv_data::table::Table;
use cv_engine::SpoolSink;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Terminal state of an in-flight materialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightOutcome {
    /// The view sealed into the store; consumers read it directly.
    Published,
    /// The build failed (exec error or injected write fault); consumers
    /// recompute via their fallback subplan.
    Failed,
}

/// Planning-time statistics promised for an in-flight view (from the
/// builder's spool estimate — the real statistics arrive when it seals).
#[derive(Clone, Copy, Debug, Default)]
pub struct PromisedView {
    pub rows: u64,
    pub bytes: u64,
}

#[derive(Clone, Copy, Debug)]
enum FlightState {
    InFlight { builder: JobId },
    Done(FlightOutcome),
}

#[derive(Clone, Debug)]
struct Flight {
    state: FlightState,
    promise: PromisedView,
    /// Sealed chunks streamed out of the builder's `Spool` operator, in
    /// chunk order. Columns are `Arc`-backed, so buffering shares the
    /// builder's memory rather than copying it.
    chunks: Vec<Table>,
    /// True once the builder published its final chunk (`last == true`).
    chunks_sealed: bool,
}

/// Lifetime counters of one [`SingleFlight`] registry. Everything here is
/// an event count — deterministic for a fixed seed and worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleFlightStats {
    /// Successful build claims (`claim` returning true).
    pub claims: u64,
    /// Execution-time blocking waits that found a flight to wait on.
    pub waits: u64,
    /// First resolutions (sticky; duplicate resolutions not counted).
    pub resolves: u64,
    /// Chunks buffered from builders' `Spool` operators.
    pub chunks_buffered: u64,
}

/// Registry of in-flight materializations, shared by every worker.
#[derive(Debug, Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<Sig128, Flight>>,
    resolved: Condvar,
    claims: AtomicU64,
    waits: AtomicU64,
    resolves: AtomicU64,
    chunks_buffered: AtomicU64,
}

impl SingleFlight {
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<Sig128, Flight>> {
        self.flights.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a build claim. Returns false (and changes nothing) if the
    /// signature already has a flight — the creation lock in the insights
    /// service normally prevents that.
    pub fn claim(&self, sig: Sig128, builder: JobId, promise: PromisedView) -> bool {
        let mut flights = self.lock();
        if flights.contains_key(&sig) {
            return false;
        }
        flights.insert(
            sig,
            Flight {
                state: FlightState::InFlight { builder },
                promise,
                chunks: Vec::new(),
                chunks_sealed: false,
            },
        );
        self.claims.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The sealed chunk stream of a *published* flight, if the builder
    /// streamed one. Chunk order is the builder's emit order, so
    /// [`Table::from_chunks`] over the result reproduces the sealed view
    /// byte-for-byte. Cheap: the tables share the builder's column buffers.
    pub fn sealed_chunks(&self, sig: Sig128) -> Option<Vec<Table>> {
        match self.lock().get(&sig) {
            Some(Flight {
                state: FlightState::Done(FlightOutcome::Published),
                chunks,
                chunks_sealed: true,
                ..
            }) if !chunks.is_empty() => Some(chunks.clone()),
            _ => None,
        }
    }

    /// The builder and promised statistics of an *unresolved* flight, if
    /// one exists for this signature.
    pub fn promise(&self, sig: Sig128) -> Option<(JobId, PromisedView)> {
        let flights = self.lock();
        match flights.get(&sig) {
            Some(Flight { state: FlightState::InFlight { builder }, promise, .. }) => {
                Some((*builder, *promise))
            }
            _ => None,
        }
    }

    /// Non-blocking query of a *resolved* flight's outcome (`None` while
    /// in flight or when no flight exists). The compile pass uses this to
    /// treat views published earlier in the epoch as ordinary reuse.
    pub fn outcome(&self, sig: Sig128) -> Option<FlightOutcome> {
        match self.lock().get(&sig) {
            Some(Flight { state: FlightState::Done(outcome), .. }) => Some(*outcome),
            _ => None,
        }
    }

    /// Resolve a flight. Idempotent: only the first resolution sticks (a
    /// failed-then-retried builder cannot flip a published view to failed).
    pub fn resolve(&self, sig: Sig128, outcome: FlightOutcome) {
        let mut flights = self.lock();
        if let Some(f) = flights.get_mut(&sig) {
            if let FlightState::InFlight { .. } = f.state {
                f.state = FlightState::Done(outcome);
                self.resolves.fetch_add(1, Ordering::Relaxed);
                if outcome == FlightOutcome::Failed {
                    // Chunks from a failed build are never served.
                    f.chunks = Vec::new();
                    f.chunks_sealed = false;
                }
            }
        }
        drop(flights);
        self.resolved.notify_all();
    }

    /// Block until the flight for `sig` resolves; `None` if no flight was
    /// ever claimed for it.
    pub fn wait(&self, sig: Sig128) -> Option<FlightOutcome> {
        let mut flights = self.lock();
        let mut counted = false;
        loop {
            match flights.get(&sig) {
                None => return None,
                Some(Flight { state: FlightState::Done(outcome), .. }) => return Some(*outcome),
                Some(Flight { state: FlightState::InFlight { .. }, .. }) => {
                    // Count each blocking wait once, not per spurious wakeup.
                    if !counted {
                        counted = true;
                        self.waits.fetch_add(1, Ordering::Relaxed);
                    }
                    flights = self.resolved.wait(flights).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Drop all flights (end of a scheduling epoch — views sealed earlier
    /// are now announced through the insights service instead).
    pub fn clear(&self) {
        self.lock().clear();
        self.resolved.notify_all();
    }

    /// Fail every unresolved flight, returning how many were failed. Called
    /// after a store crash/recovery: builders that were mid-materialization
    /// when the store died never sealed, so their consumers must recompute
    /// rather than block on a builder that will not report back. Resolved
    /// flights keep their outcome (resolution stays sticky).
    pub fn fail_inflight(&self) -> usize {
        let mut flights = self.lock();
        let mut failed = 0;
        for f in flights.values_mut() {
            if let FlightState::InFlight { .. } = f.state {
                f.state = FlightState::Done(FlightOutcome::Failed);
                f.chunks = Vec::new();
                f.chunks_sealed = false;
                self.resolves.fetch_add(1, Ordering::Relaxed);
                failed += 1;
            }
        }
        drop(flights);
        self.resolved.notify_all();
        failed
    }

    /// Snapshot of lifetime event counters (survives [`Self::clear`]).
    pub fn stats(&self) -> SingleFlightStats {
        SingleFlightStats {
            claims: self.claims.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            resolves: self.resolves.load(Ordering::Relaxed),
            chunks_buffered: self.chunks_buffered.load(Ordering::Relaxed),
        }
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// The registry is the engine's spool sink: a builder's `Spool` operator
/// streams each sealed chunk here as it is produced, before the view
/// commits to the store. Publications for signatures without an unresolved
/// flight are dropped — only claimed builds buffer.
impl SpoolSink for SingleFlight {
    fn publish_chunk(&self, sig: Sig128, chunk: &Table, last: bool) {
        let mut flights = self.lock();
        let Some(f) = flights.get_mut(&sig) else { return };
        if !matches!(f.state, FlightState::InFlight { .. }) {
            return;
        }
        if f.chunks_sealed {
            // A retried builder restarts the stream from its first chunk.
            f.chunks = Vec::new();
            f.chunks_sealed = false;
        }
        f.chunks.push(chunk.clone());
        f.chunks_sealed = last;
        self.chunks_buffered.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_wins() {
        let sf = SingleFlight::new();
        assert!(sf.claim(Sig128(1), JobId(10), PromisedView { rows: 5, bytes: 50 }));
        assert!(!sf.claim(Sig128(1), JobId(11), PromisedView::default()));
        let (builder, promise) = sf.promise(Sig128(1)).unwrap();
        assert_eq!(builder, JobId(10));
        assert_eq!(promise.rows, 5);
    }

    #[test]
    fn resolution_is_sticky_and_unblocks_waiters() {
        let sf = SingleFlight::new();
        sf.claim(Sig128(2), JobId(1), PromisedView::default());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| sf.wait(Sig128(2)));
            sf.resolve(Sig128(2), FlightOutcome::Published);
            assert_eq!(waiter.join().unwrap(), Some(FlightOutcome::Published));
        });
        // A late duplicate resolution must not flip the outcome.
        sf.resolve(Sig128(2), FlightOutcome::Failed);
        assert_eq!(sf.wait(Sig128(2)), Some(FlightOutcome::Published));
        // Resolved flights no longer advertise a promise.
        assert!(sf.promise(Sig128(2)).is_none());
    }

    #[test]
    fn fail_inflight_fails_open_flights_but_keeps_resolved_outcomes() {
        let sf = SingleFlight::new();
        sf.claim(Sig128(1), JobId(1), PromisedView::default());
        sf.claim(Sig128(2), JobId(2), PromisedView::default());
        sf.resolve(Sig128(2), FlightOutcome::Published);
        assert_eq!(sf.fail_inflight(), 1, "only the unresolved flight fails");
        assert_eq!(sf.wait(Sig128(1)), Some(FlightOutcome::Failed));
        assert_eq!(sf.wait(Sig128(2)), Some(FlightOutcome::Published));
        assert_eq!(sf.fail_inflight(), 0, "idempotent once everything resolved");
        assert_eq!(sf.stats().resolves, 2);
    }

    fn chunk(vals: &[i64]) -> Table {
        use cv_data::schema::{Field, Schema};
        use cv_data::value::{DataType, Value};
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let rows: Vec<Vec<Value>> = vals.iter().map(|v| vec![Value::Int(*v)]).collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn spool_chunks_reassemble_after_publish() {
        let sf = SingleFlight::new();
        sf.claim(Sig128(7), JobId(1), PromisedView::default());
        sf.publish_chunk(Sig128(7), &chunk(&[1, 2]), false);
        sf.publish_chunk(Sig128(7), &chunk(&[3]), true);
        // Not served while the flight is unresolved.
        assert!(sf.sealed_chunks(Sig128(7)).is_none());
        sf.resolve(Sig128(7), FlightOutcome::Published);
        let chunks = sf.sealed_chunks(Sig128(7)).expect("sealed stream");
        assert_eq!(chunks.len(), 2);
        let schema = chunks[0].schema().clone();
        let table = Table::from_chunks(schema, &chunks).unwrap();
        assert_eq!(table.num_rows(), 3);
        assert_eq!(sf.stats().chunks_buffered, 2);
    }

    #[test]
    fn failed_flight_drops_its_chunk_buffer() {
        let sf = SingleFlight::new();
        sf.claim(Sig128(8), JobId(1), PromisedView::default());
        sf.publish_chunk(Sig128(8), &chunk(&[1]), true);
        sf.resolve(Sig128(8), FlightOutcome::Failed);
        assert!(sf.sealed_chunks(Sig128(8)).is_none());
    }

    #[test]
    fn unclaimed_or_unsealed_streams_are_not_served() {
        let sf = SingleFlight::new();
        // No claim: publication dropped.
        sf.publish_chunk(Sig128(9), &chunk(&[1]), true);
        assert_eq!(sf.stats().chunks_buffered, 0);
        // Claimed but the builder never sent `last`: stream incomplete.
        sf.claim(Sig128(10), JobId(1), PromisedView::default());
        sf.publish_chunk(Sig128(10), &chunk(&[1]), false);
        sf.resolve(Sig128(10), FlightOutcome::Published);
        assert!(sf.sealed_chunks(Sig128(10)).is_none());
    }

    #[test]
    fn retried_builder_restarts_the_chunk_stream() {
        let sf = SingleFlight::new();
        sf.claim(Sig128(11), JobId(1), PromisedView::default());
        sf.publish_chunk(Sig128(11), &chunk(&[1]), true);
        // Retry re-streams from scratch; the stale sealed buffer resets.
        sf.publish_chunk(Sig128(11), &chunk(&[5, 6]), false);
        sf.publish_chunk(Sig128(11), &chunk(&[7]), true);
        sf.resolve(Sig128(11), FlightOutcome::Published);
        let chunks = sf.sealed_chunks(Sig128(11)).unwrap();
        assert_eq!(chunks.iter().map(Table::num_rows).sum::<usize>(), 3);
    }

    #[test]
    fn wait_on_unknown_signature_returns_none() {
        let sf = SingleFlight::new();
        assert_eq!(sf.wait(Sig128(99)), None);
        sf.claim(Sig128(3), JobId(1), PromisedView::default());
        sf.clear();
        assert_eq!(sf.wait(Sig128(3)), None);
        assert!(sf.is_empty());
    }
}
