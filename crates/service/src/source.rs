//! Per-job view source that pipelines from in-flight materializations.

use crate::singleflight::{FlightOutcome, SingleFlight};
use crate::stats::ServiceStats;
use cv_common::{Sig128, SimTime};
use cv_data::store_api::SharedViewStore;
use cv_data::table::Table;
use cv_data::viewstore::{ViewReadFault, ViewSource, ViewTemperature};
use std::collections::HashSet;
use std::sync::Mutex;

/// The executor-facing view source of one service job.
///
/// Reads consult the shared sharded store first. On a miss for a signature
/// this job's plan *pipelined* (compiled against a builder's promised
/// statistics), it blocks on the single-flight registry until the builder
/// resolves — `Published` re-reads the now-sealed view, `Failed` degrades to
/// the plan's recompute fallback. Signatures actually served from a promised
/// view are recorded so the driver can attribute realized pipelining
/// savings.
pub struct PipelinedViewSource<'a> {
    store: &'a dyn SharedViewStore,
    flights: &'a SingleFlight,
    stats: &'a ServiceStats,
    /// Strict signatures this job's plan consumes from an in-flight builder.
    promised: HashSet<Sig128>,
    /// Promised signatures actually served (interior mutability: the
    /// executor only hands out `&dyn ViewSource`).
    served: Mutex<Vec<Sig128>>,
}

impl<'a> PipelinedViewSource<'a> {
    pub fn new(
        store: &'a dyn SharedViewStore,
        flights: &'a SingleFlight,
        stats: &'a ServiceStats,
        promised: HashSet<Sig128>,
    ) -> PipelinedViewSource<'a> {
        PipelinedViewSource { store, flights, stats, promised, served: Mutex::new(Vec::new()) }
    }

    /// Promised signatures that were actually served, in read order.
    pub fn into_served(self) -> Vec<Sig128> {
        self.served.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record_served(&self, sig: Sig128) {
        self.stats.pipelined_reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.served.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(sig);
    }
}

impl ViewSource for PipelinedViewSource<'_> {
    fn read_view(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<Table>, ViewReadFault> {
        self.read_view_traced(sig, now).map(|t| t.map(|(table, _)| table))
    }

    fn read_view_traced(
        &self,
        sig: Sig128,
        now: SimTime,
    ) -> std::result::Result<Option<(Table, ViewTemperature)>, ViewReadFault> {
        if let Some(hit) = self.store.read_view_traced(sig, now)? {
            if self.promised.contains(&sig) {
                self.record_served(sig);
            }
            return Ok(Some(hit));
        }
        if !self.promised.contains(&sig) {
            return Ok(None); // plain miss, recompute fallback
        }
        // The builder has not sealed yet (or failed). Dependency gating in
        // the scheduler means we normally never get here; block as the
        // safety net.
        self.stats.flight_waits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match self.flights.wait(sig) {
            Some(FlightOutcome::Published) => {
                // Fast path: reassemble the builder's spool-published chunk
                // stream (shared column buffers, no store round-trip). The
                // chunks were sealed in emit order, so concatenation is the
                // view byte-for-byte.
                if let Some(chunks) = self.flights.sealed_chunks(sig) {
                    let schema = chunks[0].schema().clone();
                    if let Ok(table) = Table::from_chunks(schema, &chunks) {
                        self.stats
                            .chunk_assembled_reads
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        self.record_served(sig);
                        return Ok(Some((table, ViewTemperature::Hot)));
                    }
                }
                match self.store.read_view_traced(sig, now)? {
                    Some(hit) => {
                        self.record_served(sig);
                        Ok(Some(hit))
                    }
                    None => Ok(None), // sealed then purged/quarantined: recompute
                }
            }
            // Build failed or flight vanished: recompute via fallback.
            Some(FlightOutcome::Failed) | None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::singleflight::PromisedView;
    use cv_common::ids::{JobId, VcId, VersionGuid};
    use cv_common::SimDuration;
    use cv_data::schema::{Field, Schema};
    use cv_data::sharded::ShardedViewStore;
    use cv_data::value::{DataType, Value};
    use cv_data::MaterializedView;

    fn view(sig: u128) -> MaterializedView {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let data = Table::from_rows(schema.clone(), &[vec![Value::Int(1)]]).unwrap();
        MaterializedView {
            strict_sig: Sig128(sig),
            recurring_sig: Sig128(sig),
            schema,
            data,
            rows: 0,
            bytes: 0,
            created: SimTime::EPOCH,
            expires: SimTime::EPOCH,
            creator_job: JobId(1),
            vc: VcId(0),
            input_guids: vec![VersionGuid(1)],
            observed_work: 3.0,
            checksum: 0,
        }
    }

    #[test]
    fn promised_read_blocks_until_builder_publishes() {
        let store = ShardedViewStore::new(SimDuration::from_days(7.0), 4);
        let flights = SingleFlight::new();
        let stats = ServiceStats::default();
        flights.claim(Sig128(1), JobId(1), PromisedView::default());
        let src = PipelinedViewSource::new(&store, &flights, &stats, HashSet::from([Sig128(1)]));
        std::thread::scope(|s| {
            let reader = s.spawn(|| src.read_view(Sig128(1), SimTime::EPOCH));
            // Hold the publish until the reader has missed the store and
            // entered the flight wait (the counter is bumped before
            // blocking) — publishing earlier serves the read straight from
            // the store and the wait path under test never runs.
            while stats.snapshot().flight_waits == 0 {
                std::thread::yield_now();
            }
            store.insert(view(1)).unwrap();
            flights.resolve(Sig128(1), FlightOutcome::Published);
            let table = reader.join().unwrap().unwrap();
            assert!(table.is_some(), "published view must be served");
        });
        assert_eq!(stats.snapshot().pipelined_reads, 1);
        assert_eq!(stats.snapshot().flight_waits, 1);
        assert_eq!(src.into_served(), vec![Sig128(1)]);
    }

    #[test]
    fn promised_read_assembles_from_spooled_chunks_without_store() {
        use cv_engine::SpoolSink;
        let store = ShardedViewStore::new(SimDuration::from_days(7.0), 4);
        let flights = SingleFlight::new();
        let stats = ServiceStats::default();
        flights.claim(Sig128(5), JobId(1), PromisedView::default());
        let src = PipelinedViewSource::new(&store, &flights, &stats, HashSet::from([Sig128(5)]));
        std::thread::scope(|s| {
            let reader = s.spawn(|| src.read_view_traced(Sig128(5), SimTime::EPOCH));
            // The builder streams two chunks and resolves, but the view
            // never lands in the store (e.g. purged immediately) — the
            // consumer must still be served from the buffered stream.
            let v = view(5);
            let c0 = v.data.slice(0, 1);
            flights.publish_chunk(Sig128(5), &c0, false);
            flights.publish_chunk(Sig128(5), &c0, true);
            flights.resolve(Sig128(5), FlightOutcome::Published);
            let (table, temp) = reader.join().unwrap().unwrap().expect("chunk-assembled serve");
            assert_eq!(table.num_rows(), 2);
            assert_eq!(temp, ViewTemperature::Hot);
        });
        assert_eq!(stats.snapshot().chunk_assembled_reads, 1);
        assert_eq!(stats.snapshot().pipelined_reads, 1);
        assert_eq!(src.into_served(), vec![Sig128(5)]);
    }

    #[test]
    fn failed_flight_degrades_to_miss() {
        let store = ShardedViewStore::new(SimDuration::from_days(7.0), 4);
        let flights = SingleFlight::new();
        let stats = ServiceStats::default();
        flights.claim(Sig128(2), JobId(1), PromisedView::default());
        flights.resolve(Sig128(2), FlightOutcome::Failed);
        let src = PipelinedViewSource::new(&store, &flights, &stats, HashSet::from([Sig128(2)]));
        assert!(src.read_view(Sig128(2), SimTime::EPOCH).unwrap().is_none());
        assert!(src.into_served().is_empty());
    }

    #[test]
    fn unpromised_miss_does_not_touch_flights() {
        let store = ShardedViewStore::new(SimDuration::from_days(7.0), 4);
        let flights = SingleFlight::new();
        let stats = ServiceStats::default();
        let src = PipelinedViewSource::new(&store, &flights, &stats, HashSet::new());
        assert!(src.read_view(Sig128(3), SimTime::EPOCH).unwrap().is_none());
        assert_eq!(stats.snapshot().flight_waits, 0);
    }
}
