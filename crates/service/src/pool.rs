//! Work-stealing thread pool with per-VC admission control.
//!
//! The service executes one batch ("wave") of pre-compiled jobs at a time.
//! Each worker owns a deque: it pops its own front and steals from the back
//! of other workers' deques when idle. Three admission mechanisms sit in
//! front of the deques, mirroring a multi-tenant cluster front door:
//!
//! * **per-VC inflight limit** — at most `vc_inflight_limit` jobs of one
//!   virtual cluster admitted (queued-on-a-worker or running) at once; the
//!   rest park in a per-VC deferred queue and are promoted as same-VC jobs
//!   complete (token isolation, paper §2.2);
//! * **bounded deferred queues** — each VC's deferred queue holds at most
//!   `queue_cap` jobs; beyond that the submitter blocks (backpressure), the
//!   service never drops work;
//! * **dependency gating** — a task declaring `deps` (single-flight
//!   consumers waiting on their builder) is held un-runnable until every
//!   dep completes. Gating in the scheduler rather than blocking inside a
//!   worker keeps the pool deadlock-free: a blocked *task* never occupies a
//!   worker thread.
//!
//! Workers are plain scoped threads (`std::thread::scope`), so tasks may
//! borrow from the caller's stack — the driver shares its catalog and
//! engine by reference, no `Arc` restructuring required.

use cv_common::ids::{JobId, VcId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One schedulable unit of work.
pub struct TaskSpec<'env> {
    pub job: JobId,
    pub vc: VcId,
    /// Jobs that must complete before this task may start (single-flight
    /// builders this task pipelines from). Deps referencing jobs outside
    /// the batch are ignored.
    pub deps: Vec<JobId>,
    pub run: Box<dyn FnOnce() + Send + 'env>,
}

#[derive(Clone, Debug)]
pub struct PoolConfig {
    pub workers: usize,
    /// Max concurrently admitted jobs per virtual cluster.
    pub vc_inflight_limit: usize,
    /// Bound on each VC's deferred queue; a full queue blocks the submitter.
    pub queue_cap: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig { workers: 4, vc_inflight_limit: 4, queue_cap: 32 }
    }
}

/// What one `run_tasks` call did.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    pub executed: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Same, broken down by the *stealing* worker — the scaling bench
    /// stamps this into BENCH reports so a flat speedup curve is
    /// diagnosable (all-zero tail ⇒ those workers never found work).
    pub steals_by_worker: Vec<u64>,
    /// Tasks that hit the per-VC admission limit and parked.
    pub admission_deferrals: u64,
    /// Admission deferrals broken down by virtual cluster, sorted by VC.
    pub deferrals_by_vc: Vec<(VcId, u64)>,
    /// Peak concurrently admitted tasks.
    pub max_inflight: usize,
    /// Peak total parked tasks across all per-VC deferred queues.
    pub max_queue_depth: usize,
    /// Wall time of the parallel phase proper: from the batch epoch (all
    /// workers spawned and parked on the condvar) to the last task
    /// completion. Excludes worker thread spawn/join — the speedup metric
    /// must compare parallel work, not `std::thread` setup costs.
    pub parallel_wall: Duration,
    /// Wall time from the same batch epoch to worker teardown (threads
    /// joined). `total_wall − parallel_wall` is the pool's own residue —
    /// submission overhead plus join — measured from the ready barrier, so
    /// it can never exceed what the batch actually spent. Callers computing
    /// "pool overhead" must use this, not their own clock around
    /// `run_tasks` (which would double-count thread spawn and barrier wait
    /// and can exceed `parallel_wall` itself).
    pub total_wall: Duration,
    /// Per-worker time spent inside task closures; `parallel_wall − busy`
    /// is that worker's idle (queue-starved or admission-limited) time.
    pub worker_busy: Vec<Duration>,
    /// Per-job wall latency from *scheduled* release to completion, sorted
    /// by job id. The release origin is the batch epoch plus the job's
    /// cumulative release gap — not the instant the submitter got around to
    /// dispatching it — so backpressure on the submitter counts toward the
    /// latency of the jobs it delays (no coordinated omission).
    pub latencies: Vec<(JobId, Duration)>,
}

struct Runnable<'env> {
    job: JobId,
    vc: VcId,
    run: Box<dyn FnOnce() + Send + 'env>,
    released: Instant,
}

struct Pending<'env> {
    task: Runnable<'env>,
    deps: Vec<JobId>,
}

struct State<'env> {
    local: Vec<VecDeque<Runnable<'env>>>,
    waiting: Vec<Pending<'env>>,
    deferred: HashMap<VcId, VecDeque<Runnable<'env>>>,
    deferred_total: usize,
    max_queue_depth: usize,
    inflight: HashMap<VcId, usize>,
    inflight_total: usize,
    max_inflight: usize,
    done: HashSet<JobId>,
    outstanding: usize,
    submitted_all: bool,
    next_worker: usize,
    executed: u64,
    admission_deferrals: u64,
    deferrals_by_vc: HashMap<VcId, u64>,
    latencies: Vec<(JobId, Duration)>,
    /// Workers that have started and parked on the work condvar at least
    /// once; the submitter waits for all of them before stamping the batch
    /// epoch, so `parallel_wall` never includes thread spawn time.
    workers_ready: usize,
    /// Per-worker time spent inside task closures.
    busy: Vec<Duration>,
    /// Completion instant of the most recently finished task.
    last_completion: Option<Instant>,
    panicked: bool,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    /// Workers wait here for runnable tasks.
    work: Condvar,
    /// The submitter waits here for deferred-queue space.
    space: Condvar,
    /// The submitter waits here for batch completion.
    all_done: Condvar,
    /// The submitter waits here for the worker ready-barrier.
    ready: Condvar,
    steals: AtomicU64,
    /// Indexed by the stealing worker.
    steals_by_worker: Vec<AtomicU64>,
    vc_limit: usize,
    queue_cap: usize,
}

impl<'env> Shared<'env> {
    fn lock(&self) -> MutexGuard<'_, State<'env>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Admit a task onto a worker deque, bypassing the admission limit check.
fn admit<'env>(st: &mut State<'env>, task: Runnable<'env>) {
    *st.inflight.entry(task.vc).or_insert(0) += 1;
    st.inflight_total += 1;
    st.max_inflight = st.max_inflight.max(st.inflight_total);
    let n = st.local.len();
    let w = st.next_worker % n;
    st.next_worker = st.next_worker.wrapping_add(1);
    st.local[w].push_back(task);
}

impl<'env> Shared<'env> {
    /// Internal promotion path: admission slot or (unbounded) deferred park.
    fn dispatch_unbounded(&self, st: &mut State<'env>, task: Runnable<'env>) {
        if st.inflight.get(&task.vc).copied().unwrap_or(0) < self.vc_limit {
            admit(st, task);
            self.work.notify_one();
        } else {
            st.admission_deferrals += 1;
            *st.deferrals_by_vc.entry(task.vc).or_insert(0) += 1;
            st.deferred.entry(task.vc).or_default().push_back(task);
            st.deferred_total += 1;
            st.max_queue_depth = st.max_queue_depth.max(st.deferred_total);
        }
    }

    /// External submission path: like `dispatch_unbounded`, but a full
    /// deferred queue refuses the task so the submitter can block.
    fn dispatch_bounded(
        &self,
        st: &mut State<'env>,
        task: Runnable<'env>,
    ) -> Result<(), Runnable<'env>> {
        if st.inflight.get(&task.vc).copied().unwrap_or(0) < self.vc_limit {
            admit(st, task);
            self.work.notify_one();
            return Ok(());
        }
        let q = st.deferred.entry(task.vc).or_default();
        if q.len() >= self.queue_cap {
            return Err(task);
        }
        st.admission_deferrals += 1;
        *st.deferrals_by_vc.entry(task.vc).or_insert(0) += 1;
        q.push_back(task);
        st.deferred_total += 1;
        st.max_queue_depth = st.max_queue_depth.max(st.deferred_total);
        Ok(())
    }

    /// Post-completion bookkeeping: free the VC slot, promote deferred and
    /// dep-gated tasks, wake whoever needs waking.
    fn complete(&self, job: JobId, vc: VcId, released: Instant, me: usize, busy: Duration) {
        let finished = Instant::now();
        let mut st = self.lock();
        st.executed += 1;
        st.outstanding -= 1;
        st.done.insert(job);
        st.latencies.push((job, finished.saturating_duration_since(released)));
        st.busy[me] += busy;
        st.last_completion = Some(finished);
        if let Some(n) = st.inflight.get_mut(&vc) {
            *n = n.saturating_sub(1);
        }
        st.inflight_total = st.inflight_total.saturating_sub(1);
        // The freed slot promotes one parked task of the same VC.
        if let Some(t) = st.deferred.get_mut(&vc).and_then(VecDeque::pop_front) {
            st.deferred_total = st.deferred_total.saturating_sub(1);
            admit(&mut st, t);
            self.work.notify_one();
        }
        // Unblock dependency-gated tasks whose builders are all done.
        let mut ready: Vec<Runnable<'env>> = Vec::new();
        let mut still_waiting: Vec<Pending<'env>> = Vec::new();
        for mut p in st.waiting.drain(..).collect::<Vec<_>>() {
            p.deps.retain(|d| !st.done.contains(d));
            if p.deps.is_empty() {
                ready.push(p.task);
            } else {
                still_waiting.push(p);
            }
        }
        st.waiting = still_waiting;
        for t in ready {
            self.dispatch_unbounded(&mut st, t);
        }
        self.space.notify_all();
        if st.submitted_all && st.outstanding == 0 {
            self.work.notify_all();
            self.all_done.notify_all();
        }
    }

    fn next_task(&self, me: usize, first: bool) -> Option<Runnable<'env>> {
        let mut st = self.lock();
        if first {
            st.workers_ready += 1;
            self.ready.notify_all();
        }
        loop {
            if let Some(t) = st.local[me].pop_front() {
                return Some(t);
            }
            let n = st.local.len();
            for k in 1..n {
                let victim = (me + k) % n;
                let len = st.local[victim].len();
                if len == 0 {
                    continue;
                }
                // Steal half the victim's deque (round up), not one task:
                // a worker that steals a single task from a deep queue goes
                // right back to stealing, serializing on the state lock
                // while the victim drains alone — the starvation pattern
                // where most workers never accumulate local work. The
                // newest (back) half moves; the victim keeps its front.
                let take = len.div_ceil(2);
                let mut stolen = st.local[victim].split_off(len - take);
                self.steals.fetch_add(take as u64, Ordering::Relaxed);
                self.steals_by_worker[me].fetch_add(take as u64, Ordering::Relaxed);
                let t = stolen.pop_front().expect("stole at least one task");
                if !stolen.is_empty() {
                    st.local[me].append(&mut stolen);
                    // The surplus parked on our deque is stealable work for
                    // anyone else waking up.
                    self.work.notify_one();
                }
                return Some(t);
            }
            if st.submitted_all && st.outstanding == 0 {
                return None;
            }
            st = self.work.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn worker_loop(&self, me: usize) {
        let mut first = true;
        while let Some(task) = self.next_task(me, first) {
            first = false;
            let Runnable { job, vc, run, released } = task;
            let started = Instant::now();
            if catch_unwind(AssertUnwindSafe(run)).is_err() {
                self.lock().panicked = true;
            }
            self.complete(job, vc, released, me, started.elapsed());
        }
    }
}

/// Execute a batch of tasks and block until all complete.
///
/// `release_gaps[i]` delays task `i`'s scheduled release by that amount
/// after task `i-1`'s (open-loop load generation); an empty slice releases
/// everything at the batch epoch (closed loop). Latency is measured from
/// the *scheduled* release instant — the batch epoch plus cumulative gaps —
/// not from whenever the submitter actually dispatched the task, so
/// submitter backpressure shows up in the latency of the jobs it delayed.
pub fn run_tasks<'env>(
    cfg: &PoolConfig,
    tasks: Vec<TaskSpec<'env>>,
    release_gaps: &[Duration],
) -> PoolReport {
    let workers = cfg.workers.max(1);
    let batch_jobs: HashSet<JobId> = tasks.iter().map(|t| t.job).collect();
    let shared = Shared {
        state: Mutex::new(State {
            local: (0..workers).map(|_| VecDeque::new()).collect(),
            waiting: Vec::new(),
            deferred: HashMap::new(),
            deferred_total: 0,
            max_queue_depth: 0,
            inflight: HashMap::new(),
            inflight_total: 0,
            max_inflight: 0,
            done: HashSet::new(),
            outstanding: 0,
            submitted_all: false,
            next_worker: 0,
            executed: 0,
            admission_deferrals: 0,
            deferrals_by_vc: HashMap::new(),
            latencies: Vec::new(),
            workers_ready: 0,
            busy: vec![Duration::ZERO; workers],
            last_completion: None,
            panicked: false,
        }),
        work: Condvar::new(),
        space: Condvar::new(),
        all_done: Condvar::new(),
        ready: Condvar::new(),
        steals: AtomicU64::new(0),
        steals_by_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        vc_limit: cfg.vc_inflight_limit.max(1),
        queue_cap: cfg.queue_cap.max(1),
    };

    let mut batch_start = Instant::now();
    std::thread::scope(|s| {
        for me in 0..workers {
            let shared = &shared;
            s.spawn(move || shared.worker_loop(me));
        }

        // Ready barrier: stamp the batch epoch only once every worker is
        // parked on the work condvar, so the parallel-phase wall (and the
        // closed-loop latency origin) excludes thread spawn time.
        {
            let mut st = shared.lock();
            while st.workers_ready < workers {
                st = shared.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        batch_start = Instant::now();

        // Submission loop (this thread is the load generator).
        let mut scheduled = batch_start;
        for (i, spec) in tasks.into_iter().enumerate() {
            if let Some(gap) = release_gaps.get(i) {
                scheduled += *gap;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
            }
            let TaskSpec { job, vc, deps, run } = spec;
            let task = Runnable { job, vc, run, released: scheduled };
            let mut st = shared.lock();
            st.outstanding += 1;
            let open_deps: Vec<JobId> = deps
                .into_iter()
                .filter(|d| batch_jobs.contains(d) && !st.done.contains(d))
                .collect();
            if !open_deps.is_empty() {
                st.waiting.push(Pending { task, deps: open_deps });
                continue;
            }
            let mut task = task;
            loop {
                match shared.dispatch_bounded(&mut st, task) {
                    Ok(()) => break,
                    Err(refused) => {
                        task = refused;
                        st = shared.space.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
        {
            let mut st = shared.lock();
            st.submitted_all = true;
            shared.work.notify_all();
            while st.outstanding > 0 {
                st = shared.all_done.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        shared.work.notify_all();
    });
    // Stamped after the scope joins every worker, from the same epoch as
    // `parallel_wall` — the two are directly comparable.
    let total_wall = batch_start.elapsed();

    let st = shared.state.into_inner().unwrap_or_else(PoisonError::into_inner);
    assert!(!st.panicked, "a pool task panicked");
    assert!(st.waiting.is_empty(), "dependency-gated tasks never became runnable");
    let mut latencies = st.latencies;
    latencies.sort_by_key(|(job, _)| *job);
    let mut deferrals_by_vc: Vec<(VcId, u64)> = st.deferrals_by_vc.into_iter().collect();
    deferrals_by_vc.sort_by_key(|(vc, _)| *vc);
    let parallel_wall = st
        .last_completion
        .map_or(Duration::ZERO, |last| last.saturating_duration_since(batch_start));
    PoolReport {
        executed: st.executed,
        steals: shared.steals.load(Ordering::Relaxed),
        steals_by_worker: shared
            .steals_by_worker
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect(),
        admission_deferrals: st.admission_deferrals,
        deferrals_by_vc,
        max_inflight: st.max_inflight,
        max_queue_depth: st.max_queue_depth,
        parallel_wall,
        total_wall: total_wall.max(parallel_wall),
        worker_busy: st.busy,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn spec<'env>(
        job: u64,
        vc: u64,
        deps: Vec<u64>,
        run: impl FnOnce() + Send + 'env,
    ) -> TaskSpec<'env> {
        TaskSpec {
            job: JobId(job),
            vc: VcId(vc),
            deps: deps.into_iter().map(JobId).collect(),
            run: Box::new(run),
        }
    }

    #[test]
    fn executes_every_task_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<TaskSpec<'_>> = (0..50)
            .map(|i| {
                let counter = &counter;
                spec(i, i % 3, vec![], move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let report = run_tasks(&PoolConfig { workers: 4, ..PoolConfig::default() }, tasks, &[]);
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(report.executed, 50);
        assert_eq!(report.latencies.len(), 50);
    }

    #[test]
    fn per_vc_admission_limit_holds() {
        let limit = 2usize;
        let peak = AtomicUsize::new(0);
        let current = AtomicUsize::new(0);
        let tasks: Vec<TaskSpec<'_>> = (0..40)
            .map(|i| {
                let peak = &peak;
                let current = &current;
                // All tasks share one VC, so the pool may run at most
                // `limit` of them at once regardless of worker count.
                spec(i, 0, vec![], move || {
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    current.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let cfg = PoolConfig { workers: 8, vc_inflight_limit: limit, queue_cap: 4 };
        let report = run_tasks(&cfg, tasks, &[]);
        assert_eq!(report.executed, 40);
        assert!(
            peak.load(Ordering::SeqCst) <= limit,
            "admission limit violated: peak {} > {limit}",
            peak.load(Ordering::SeqCst)
        );
        assert!(report.admission_deferrals > 0, "bounded queue never engaged");
    }

    #[test]
    fn dependency_gating_orders_builder_before_consumers() {
        let order = Mutex::new(Vec::new());
        let mut tasks = Vec::new();
        let builder_done = &order;
        tasks.push(spec(1, 0, vec![], move || {
            std::thread::sleep(Duration::from_millis(5));
            builder_done.lock().unwrap().push(1u64);
        }));
        for consumer in 2..=5u64 {
            let order = &order;
            tasks.push(spec(consumer, 0, vec![1], move || {
                order.lock().unwrap().push(consumer);
            }));
        }
        run_tasks(&PoolConfig { workers: 4, ..PoolConfig::default() }, tasks, &[]);
        let seen = order.lock().unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], 1, "builder must complete before any consumer starts");
    }

    #[test]
    fn deps_outside_batch_are_ignored() {
        let ran = AtomicUsize::new(0);
        let ran_ref = &ran;
        let tasks = vec![spec(7, 0, vec![999], move || {
            ran_ref.fetch_add(1, Ordering::Relaxed);
        })];
        let report = run_tasks(&PoolConfig::default(), tasks, &[]);
        assert_eq!(report.executed, 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_worker_runs_in_submission_order() {
        let order = Mutex::new(Vec::new());
        let tasks: Vec<TaskSpec<'_>> = (0..20)
            .map(|i| {
                let order = &order;
                spec(i, i % 4, vec![], move || order.lock().unwrap().push(i))
            })
            .collect();
        let cfg = PoolConfig { workers: 1, vc_inflight_limit: 64, queue_cap: 64 };
        run_tasks(&cfg, tasks, &[]);
        let seen = order.lock().unwrap();
        assert_eq!(*seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn latency_measured_from_scheduled_release_not_dispatch() {
        // One slow head-of-line task, then fast tasks scheduled a few ms
        // behind it. With vc_inflight_limit 1 + queue_cap 1 the submitter
        // itself blocks on backpressure, so the last tasks are *dispatched*
        // only after the slow task finishes (~80 ms in). Their latency must
        // still be measured from their scheduled release (~a few ms in):
        // the old `Instant::now()`-at-dispatch stamp reported near-zero
        // latency for exactly the jobs the queue delayed the most.
        let tasks: Vec<TaskSpec<'_>> = (0..4)
            .map(|i| {
                spec(i, 0, vec![], move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(80));
                    }
                })
            })
            .collect();
        let cfg = PoolConfig { workers: 1, vc_inflight_limit: 1, queue_cap: 1 };
        let gaps: Vec<Duration> = (0..4).map(|_| Duration::from_millis(1)).collect();
        let report = run_tasks(&cfg, tasks, &gaps);
        assert_eq!(report.executed, 4);
        for (job, latency) in &report.latencies {
            assert!(
                *latency >= Duration::from_millis(40),
                "job {job:?} latency {latency:?} excludes time queued behind the slow task"
            );
        }
        // The parallel wall covers the whole batch (the slow task runs ~80
        // ms) but is measured, not inferred from the caller's clock.
        assert!(report.parallel_wall >= Duration::from_millis(70));
        assert_eq!(report.worker_busy.len(), 1);
        assert!(report.worker_busy[0] >= Duration::from_millis(70));
        assert!(report.max_queue_depth >= 1);
        assert_eq!(report.deferrals_by_vc.len(), 1);
    }

    #[test]
    fn no_worker_starves_at_eight_workers() {
        // Regression for the intra-query parallelism ceiling: with
        // steal-one semantics most workers never accumulated local work and
        // reported zero busy time (BENCH_service.json showed 5 of 8 workers
        // idle). 64 spinning tasks across 8 workers must leave every worker
        // with nonzero busy time — half-stealing spreads queued work as
        // soon as any worker goes idle.
        let mut rng = cv_common::DetRng::seed(42);
        let tasks: Vec<TaskSpec<'_>> = (0..64)
            .map(|i| {
                let spin_us = rng.range_u64(800, 1200);
                spec(i, i % 4, vec![], move || {
                    let start = Instant::now();
                    while start.elapsed() < Duration::from_micros(spin_us) {
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        let cfg = PoolConfig { workers: 8, vc_inflight_limit: 64, queue_cap: 64 };
        let report = run_tasks(&cfg, tasks, &[]);
        assert_eq!(report.executed, 64);
        assert_eq!(report.worker_busy.len(), 8);
        for (w, busy) in report.worker_busy.iter().enumerate() {
            assert!(*busy > Duration::ZERO, "worker {w} starved (zero busy time)");
        }
    }

    #[test]
    fn steals_move_half_the_victim_queue() {
        // Worker count 2, one long head task: the round-robin submitter
        // parks the even tasks behind the long one, so the other worker
        // drains its own queue and must bulk-steal the remainder. The steal
        // counter counts stolen *tasks*; stealing one-at-a-time from a
        // 10-deep queue would also count 10, so additionally require that
        // every task executed and no worker sat idle while work was queued
        // (covered by the starvation test above at higher worker counts).
        let tasks: Vec<TaskSpec<'_>> = (0..21)
            .map(|i| {
                spec(i, 0, vec![], move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(30));
                    }
                })
            })
            .collect();
        let cfg = PoolConfig { workers: 2, vc_inflight_limit: 64, queue_cap: 64 };
        let report = run_tasks(&cfg, tasks, &[]);
        assert_eq!(report.executed, 21);
        assert!(report.steals > 0, "long head-of-line task must force steals");
        // The per-worker breakdown partitions the total.
        assert_eq!(report.steals_by_worker.len(), 2);
        assert_eq!(report.steals_by_worker.iter().sum::<u64>(), report.steals);
    }

    #[test]
    fn total_wall_bounds_parallel_wall() {
        let tasks: Vec<TaskSpec<'_>> = (0..16)
            .map(|i| spec(i, 0, vec![], move || std::thread::sleep(Duration::from_micros(500))))
            .collect();
        let cfg = PoolConfig { workers: 4, vc_inflight_limit: 64, queue_cap: 64 };
        let report = run_tasks(&cfg, tasks, &[]);
        assert!(report.total_wall >= report.parallel_wall);
        // The pool's own residue (submission + join, measured from the
        // ready barrier) must stay below the parallel phase it wraps.
        let overhead = report.total_wall - report.parallel_wall;
        assert!(
            overhead < report.parallel_wall,
            "pool residue {overhead:?} exceeds parallel wall {:?}",
            report.parallel_wall
        );
    }

    #[test]
    fn open_loop_gaps_released_in_order() {
        let order = Mutex::new(Vec::new());
        let tasks: Vec<TaskSpec<'_>> = (0..5)
            .map(|i| {
                let order = &order;
                spec(i, 0, vec![], move || order.lock().unwrap().push(i))
            })
            .collect();
        let gaps = vec![Duration::ZERO; 5];
        let report = run_tasks(&PoolConfig { workers: 2, ..PoolConfig::default() }, tasks, &gaps);
        assert_eq!(report.executed, 5);
    }
}
