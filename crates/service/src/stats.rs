//! Lock-free service-wide counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by every worker; all atomic so the hot path never takes
/// a lock to account. `realized_savings` holds `f64` bits and accumulates
/// via compare-and-swap.
#[derive(Debug, Default)]
pub struct ServiceStats {
    pub jobs_completed: AtomicU64,
    /// Execution-time reads served from a view another in-flight job built
    /// this epoch (the Fig. 9 savings actually realized).
    pub pipelined_reads: AtomicU64,
    /// Consumers that reached a promised view before its builder resolved
    /// and blocked on the flight (scheduler dependency gating makes this 0
    /// in normal operation).
    pub flight_waits: AtomicU64,
    /// Same signature materialized more than once in one epoch — single
    /// flight guarantees this stays 0.
    pub duplicate_materializations: AtomicU64,
    /// Promised reads served by reassembling the builder's spool-published
    /// chunk stream instead of re-reading the store.
    pub chunk_assembled_reads: AtomicU64,
    realized_savings_bits: AtomicU64,
}

impl ServiceStats {
    pub fn add_realized_savings(&self, work: f64) {
        let mut cur = self.realized_savings_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + work).to_bits();
            match self.realized_savings_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Work units of recomputation avoided by pipelining from in-flight
    /// materializations (compare against `pipelining_savings_bound`).
    pub fn realized_savings(&self) -> f64 {
        f64::from_bits(self.realized_savings_bits.load(Ordering::Relaxed))
    }

    pub fn snapshot(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            pipelined_reads: self.pipelined_reads.load(Ordering::Relaxed),
            flight_waits: self.flight_waits.load(Ordering::Relaxed),
            duplicate_materializations: self.duplicate_materializations.load(Ordering::Relaxed),
            chunk_assembled_reads: self.chunk_assembled_reads.load(Ordering::Relaxed),
            realized_savings: self.realized_savings(),
        }
    }
}

/// Plain-value copy of [`ServiceStats`] for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStatsSnapshot {
    pub jobs_completed: u64,
    pub pipelined_reads: u64,
    pub flight_waits: u64,
    pub duplicate_materializations: u64,
    pub chunk_assembled_reads: u64,
    pub realized_savings: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_accumulation_is_exact_for_representable_sums() {
        let stats = ServiceStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stats = &stats;
                s.spawn(move || {
                    for _ in 0..1000 {
                        stats.add_realized_savings(0.5);
                    }
                });
            }
        });
        assert_eq!(stats.realized_savings(), 2000.0);
    }
}
