//! The operator-state cache: lock-striped, size-budgeted, single-flight.
//!
//! CloudViews reuses *final* view results; most of a heavy job's wall time
//! is nevertheless spent rebuilding internal pipeline-breaker state — join
//! hash tables, aggregate group states, sort runs — that is byte-identical
//! across concurrent and recurring jobs (Dursun et al., *Revisiting Reuse
//! in Main Memory Database Systems*). This cache closes that gap for the
//! service: the engine keys each finished breaker by its input
//! subexpression's strict execution signature plus an operator fingerprint
//! (see `cv_engine::exec::opstate`) and publishes it here, so
//!
//! * N concurrent probes of the same build side construct it **once**
//!   (single-flight claim/wait, mirroring [`crate::singleflight`]), and
//! * recurring daily jobs skip rebuilds whose inputs didn't rotate (keys
//!   embed the scanned dataset versions, so rotation derives fresh keys and
//!   stale entries age out through eviction).
//!
//! ## Safety properties
//!
//! * **Bytes never move.** Keys pin exact input versions and operator
//!   parameters; the executor validates scan guids on every hit and the
//!   restored state replays the build's exact output bytes. Digests are
//!   identical with the cache on or off, at any worker count.
//! * **Degraded waits.** A waiter whose builder abandons (build error,
//!   purge) or exceeds [`OpStateCacheConfig::wait_timeout`] falls back to
//!   an inline unclaimed build — never an error, never a stall.
//! * **Purge coupling.** Quarantined view signatures and GDPR-purged
//!   datasets evict matching resident state *and* abandon every in-flight
//!   claim (dependencies are unknown pre-publish, so purging is
//!   conservative). Correctness does not depend on this — a late republish
//!   lands under a key no post-rotation job derives — but hygiene does:
//!   purged bytes must not linger.
//!
//! ## Eviction
//!
//! Cost-weighted LRU in the GDSF family: each resident entry's priority is
//! `last_touch_tick + build_work / bytes`, so cheap-to-rebuild bulky states
//! go first and recently-touched expensive ones stay. Eviction scans for
//! the global minimum across shards while the budget is exceeded — the
//! scan is O(resident) but runs only on publishes past budget.

use cv_common::Sig128;
use cv_engine::{OpStateAcquire, OpStateEntry, OpStateSource};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Tuning knobs for one [`OpStateCache`].
#[derive(Clone, Debug)]
pub struct OpStateCacheConfig {
    /// Resident-bytes budget; eviction runs after any publish that lands
    /// above it. 0 disables caching entirely (every acquire is an
    /// unclaimed build).
    pub budget_bytes: u64,
    /// Lock stripes. More stripes, less contention between unrelated keys.
    pub shards: usize,
    /// How long a waiter blocks on an in-flight build before degrading to
    /// an inline build.
    pub wait_timeout: Duration,
}

impl Default for OpStateCacheConfig {
    fn default() -> Self {
        OpStateCacheConfig {
            budget_bytes: 256 << 20,
            shards: 16,
            wait_timeout: Duration::from_secs(5),
        }
    }
}

/// Outcome of an in-flight build, broadcast to its waiters.
#[derive(Debug)]
enum FlightOutcome {
    Pending,
    /// `(entry, publisher_tag)` — waiters count a (cross-job) hit.
    Published(Arc<OpStateEntry>, u64),
    Abandoned,
}

/// One claimed-but-unpublished build. Waiters block on the condvar.
#[derive(Debug)]
struct Flight {
    slot: Mutex<FlightOutcome>,
    cv: Condvar,
}

/// A published entry resident in the cache.
#[derive(Debug)]
struct Resident {
    entry: Arc<OpStateEntry>,
    /// Tag of the job that built it — a hit from a different tag is a
    /// *cross-job* hit, the currency of the BENCH `op_state` section.
    publisher: u64,
    /// Last-touch logical tick (publish or hit), the LRU term of the
    /// eviction priority.
    tick: u64,
}

#[derive(Debug)]
enum Slot {
    InFlight(Arc<Flight>),
    Ready(Resident),
}

/// Snapshot of one cache's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStateCacheStats {
    /// States restored instead of rebuilt (including single-flight waits
    /// that ended in a publish).
    pub hits: u64,
    /// Hits where the publisher was a *different* job than the consumer.
    pub cross_job_hits: u64,
    /// Derivable keys that were not resident (the acquirer claims or
    /// degrades).
    pub misses: u64,
    pub published: u64,
    /// Residents dropped by the budget sweep.
    pub evicted: u64,
    /// Claims released without a publish (failed builds, purges).
    pub abandoned: u64,
    /// Waiters that timed out or saw their builder abandon and fell back
    /// to an inline build.
    pub degraded_waits: u64,
    /// Residents dropped by quarantine/GDPR purges.
    pub purged: u64,
    /// Current resident payload bytes.
    pub resident_bytes: u64,
}

/// The lock-striped operator-state cache.
pub struct OpStateCache {
    cfg: OpStateCacheConfig,
    shards: Vec<Mutex<HashMap<Sig128, Slot>>>,
    /// Logical clock stamping publishes and hits for the LRU term.
    clock: AtomicU64,
    resident_bytes: AtomicU64,
    hits: AtomicU64,
    cross_job_hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
    evicted: AtomicU64,
    abandoned: AtomicU64,
    degraded_waits: AtomicU64,
    purged: AtomicU64,
}

impl fmt::Debug for OpStateCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpStateCache")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl OpStateCache {
    pub fn new(cfg: OpStateCacheConfig) -> OpStateCache {
        let shards = cfg.shards.max(1);
        OpStateCache {
            cfg,
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cross_job_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            degraded_waits: AtomicU64::new(0),
            purged: AtomicU64::new(0),
        }
    }

    pub fn with_budget(budget_bytes: u64) -> OpStateCache {
        OpStateCache::new(OpStateCacheConfig { budget_bytes, ..OpStateCacheConfig::default() })
    }

    fn shard(&self, key: Sig128) -> MutexGuard<'_, HashMap<Sig128, Slot>> {
        let idx = (key.0 as usize) % self.shards.len();
        self.shards[idx].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Acquire with hit attribution: `tag` identifies the consuming job so
    /// hits against other jobs' publications count as cross-job.
    pub fn acquire_tagged(&self, key: Sig128, tag: u64) -> OpStateAcquire {
        if self.cfg.budget_bytes == 0 {
            return OpStateAcquire::Build { claimed: false };
        }
        let flight = {
            let mut shard = self.shard(key);
            match shard.get_mut(&key) {
                Some(Slot::Ready(r)) => {
                    r.tick = self.tick();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if r.publisher != tag {
                        self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return OpStateAcquire::Hit(r.entry.clone());
                }
                Some(Slot::InFlight(f)) => f.clone(),
                None => {
                    shard.insert(
                        key,
                        Slot::InFlight(Arc::new(Flight {
                            slot: Mutex::new(FlightOutcome::Pending),
                            cv: Condvar::new(),
                        })),
                    );
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return OpStateAcquire::Build { claimed: true };
                }
            }
        };
        // Someone else is building: wait for the publish, bounded.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + self.cfg.wait_timeout;
        let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*slot {
                FlightOutcome::Published(entry, publisher) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if *publisher != tag {
                        self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return OpStateAcquire::Hit(entry.clone());
                }
                FlightOutcome::Abandoned => {
                    self.degraded_waits.fetch_add(1, Ordering::Relaxed);
                    return OpStateAcquire::Build { claimed: false };
                }
                FlightOutcome::Pending => {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        self.degraded_waits.fetch_add(1, Ordering::Relaxed);
                        return OpStateAcquire::Build { claimed: false };
                    }
                    let (guard, _timeout) =
                        flight.cv.wait_timeout(slot, left).unwrap_or_else(PoisonError::into_inner);
                    slot = guard;
                }
            }
        }
    }

    /// Publish a built state under the claiming job's tag and sweep the
    /// budget.
    pub fn publish_tagged(&self, key: Sig128, entry: OpStateEntry, tag: u64) {
        let entry = Arc::new(entry);
        {
            let mut shard = self.shard(key);
            let prior = shard.insert(
                key,
                Slot::Ready(Resident { entry: entry.clone(), publisher: tag, tick: self.tick() }),
            );
            match prior {
                Some(Slot::InFlight(f)) => {
                    let mut slot = f.slot.lock().unwrap_or_else(PoisonError::into_inner);
                    *slot = FlightOutcome::Published(entry.clone(), tag);
                    drop(slot);
                    f.cv.notify_all();
                }
                Some(Slot::Ready(r)) => {
                    // Concurrent unclaimed publish lost a race; rebalance
                    // the byte ledger for the replaced entry.
                    self.resident_bytes.fetch_sub(r.entry.bytes, Ordering::Relaxed);
                }
                None => {}
            }
            self.resident_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget();
    }

    /// Release a claim without publishing; waiters degrade to inline
    /// builds.
    pub fn abandon_key(&self, key: Sig128) {
        let mut shard = self.shard(key);
        if let Some(Slot::InFlight(f)) = shard.get(&key) {
            let f = f.clone();
            shard.remove(&key);
            drop(shard);
            let mut slot = f.slot.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = FlightOutcome::Abandoned;
            drop(slot);
            f.cv.notify_all();
            self.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evict lowest-priority residents until the budget holds. Priority is
    /// `tick + build_work / bytes` — old, cheap, bulky entries go first.
    fn evict_to_budget(&self) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.cfg.budget_bytes {
            let mut victim: Option<(usize, Sig128, f64)> = None;
            for (si, stripe) in self.shards.iter().enumerate() {
                let shard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
                for (k, slot) in shard.iter() {
                    if let Slot::Ready(r) = slot {
                        let prio = r.tick as f64 + r.entry.build_work / r.entry.bytes.max(1) as f64;
                        if victim.is_none_or(|(_, _, best)| prio < best) {
                            victim = Some((si, *k, prio));
                        }
                    }
                }
            }
            let Some((si, key, _)) = victim else { return };
            let mut shard = self.shards[si].lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(Slot::Ready(r)) = shard.get(&key) {
                self.resident_bytes.fetch_sub(r.entry.bytes, Ordering::Relaxed);
                shard.remove(&key);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Quarantine coupling: drop every resident state derived from any of
    /// the given view signatures, and abandon **all** in-flight claims
    /// (their dependencies are unknown until publish). Returns residents
    /// purged.
    pub fn purge_sigs(&self, sigs: &[Sig128]) -> usize {
        self.purge_matching(|e| e.dep_sigs.iter().any(|d| sigs.contains(d)))
    }

    /// GDPR coupling: drop every resident state that scanned the named
    /// dataset (any version), and abandon all in-flight claims.
    pub fn purge_input(&self, dataset: &str) -> usize {
        self.purge_matching(|e| e.scan_deps.iter().any(|(name, _)| name == dataset))
    }

    fn purge_matching(&self, matches: impl Fn(&OpStateEntry) -> bool) -> usize {
        let mut dropped = 0;
        let mut flights: Vec<Arc<Flight>> = Vec::new();
        for stripe in &self.shards {
            let mut shard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            shard.retain(|_, slot| match slot {
                Slot::Ready(r) if matches(&r.entry) => {
                    self.resident_bytes.fetch_sub(r.entry.bytes, Ordering::Relaxed);
                    dropped += 1;
                    false
                }
                Slot::Ready(_) => true,
                Slot::InFlight(f) => {
                    flights.push(f.clone());
                    false
                }
            });
        }
        for f in flights {
            let mut slot = f.slot.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = FlightOutcome::Abandoned;
            drop(slot);
            f.cv.notify_all();
            self.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        self.purged.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Non-claiming warmth probe for the optimizer's plan bias: resident
    /// *or* being built right now.
    pub fn warm(&self, key: Sig128) -> bool {
        self.cfg.budget_bytes > 0 && self.shard(key).contains_key(&key)
    }

    pub fn stats(&self) -> OpStateCacheStats {
        OpStateCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cross_job_hits: self.cross_job_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            degraded_waits: self.degraded_waits.load(Ordering::Relaxed),
            purged: self.purged.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resident entries (not counting in-flight claims).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cache itself is a valid (untagged) engine source — hits against it
/// never count as cross-job.
impl OpStateSource for OpStateCache {
    fn acquire(&self, key: Sig128) -> OpStateAcquire {
        self.acquire_tagged(key, u64::MAX)
    }
    fn publish(&self, key: Sig128, entry: OpStateEntry) {
        self.publish_tagged(key, entry, u64::MAX)
    }
    fn abandon(&self, key: Sig128) {
        self.abandon_key(key)
    }
    fn is_warm(&self, key: Sig128) -> bool {
        self.warm(key)
    }
}

/// Per-job view of a shared cache: every acquire/publish carries the job's
/// tag so the cache can attribute cross-job hits. The drivers hand one to
/// each executing job.
#[derive(Clone, Debug)]
pub struct TaggedOpStates {
    pub cache: Arc<OpStateCache>,
    pub tag: u64,
}

impl TaggedOpStates {
    pub fn new(cache: Arc<OpStateCache>, tag: u64) -> TaggedOpStates {
        TaggedOpStates { cache, tag }
    }
}

impl OpStateSource for TaggedOpStates {
    fn acquire(&self, key: Sig128) -> OpStateAcquire {
        self.cache.acquire_tagged(key, self.tag)
    }
    fn publish(&self, key: Sig128, entry: OpStateEntry) {
        self.cache.publish_tagged(key, entry, self.tag)
    }
    fn abandon(&self, key: Sig128) {
        self.cache.abandon_key(key)
    }
    fn is_warm(&self, key: Sig128) -> bool {
        self.cache.warm(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_common::ids::VersionGuid;
    use cv_common::rng::DetRng;
    use cv_data::schema::{Field, Schema};
    use cv_data::table::Table;
    use cv_data::value::{DataType, Value};
    use cv_engine::OpState;

    fn table(vals: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap().into_ref();
        let rows: Vec<Vec<Value>> = vals.iter().map(|v| vec![Value::Int(*v)]).collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    fn entry(vals: &[i64], bytes: u64, work: f64) -> OpStateEntry {
        OpStateEntry {
            state: Arc::new(OpState::AggOutput(table(vals))),
            bytes,
            build_work: work,
            build_wall: 0.001,
            dep_sigs: vec![],
            scan_deps: vec![],
        }
    }

    fn payload(e: &OpStateEntry) -> Vec<i64> {
        let OpState::AggOutput(t) = &*e.state else { panic!("agg payload") };
        (0..t.num_rows())
            .map(|i| match t.column(0).value(i) {
                Value::Int(v) => v,
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn claim_publish_hit_roundtrip_attributes_cross_job() {
        let cache = OpStateCache::with_budget(1 << 20);
        let key = Sig128(42);
        assert!(matches!(cache.acquire_tagged(key, 1), OpStateAcquire::Build { claimed: true }));
        cache.publish_tagged(key, entry(&[1, 2, 3], 100, 5.0), 1);
        // Same job: hit, not cross-job.
        let OpStateAcquire::Hit(e) = cache.acquire_tagged(key, 1) else { panic!("hit") };
        assert_eq!(payload(&e), vec![1, 2, 3]);
        // Different job: cross-job hit.
        assert!(matches!(cache.acquire_tagged(key, 2), OpStateAcquire::Hit(_)));
        let s = cache.stats();
        assert_eq!((s.hits, s.cross_job_hits, s.misses, s.published), (2, 1, 1, 1));
        assert_eq!(s.resident_bytes, 100);
        assert!(cache.warm(key));
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let cache = OpStateCache::with_budget(0);
        let key = Sig128(1);
        assert!(matches!(cache.acquire_tagged(key, 1), OpStateAcquire::Build { claimed: false }));
        assert!(!cache.warm(key));
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn waiters_pipeline_from_the_single_builder() {
        let cache = Arc::new(OpStateCache::with_budget(1 << 20));
        let key = Sig128(7);
        assert!(matches!(cache.acquire_tagged(key, 0), OpStateAcquire::Build { claimed: true }));
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..=4u64)
                .map(|tag| {
                    let cache = cache.clone();
                    s.spawn(move || cache.acquire_tagged(key, tag))
                })
                .collect();
            // Give waiters a moment to block, then publish.
            std::thread::sleep(Duration::from_millis(20));
            cache.publish_tagged(key, entry(&[9], 10, 1.0), 0);
            for h in handles {
                let OpStateAcquire::Hit(e) = h.join().unwrap() else {
                    panic!("waiter must see the publish")
                };
                assert_eq!(payload(&e), vec![9]);
            }
        });
        let s = cache.stats();
        assert_eq!(s.published, 1, "exactly one build");
        assert_eq!(s.cross_job_hits, 4, "all four waiters hit cross-job");
    }

    #[test]
    fn abandoned_builds_degrade_waiters_to_inline() {
        let cache = Arc::new(OpStateCache::with_budget(1 << 20));
        let key = Sig128(8);
        assert!(matches!(cache.acquire_tagged(key, 0), OpStateAcquire::Build { claimed: true }));
        std::thread::scope(|s| {
            let h = {
                let cache = cache.clone();
                s.spawn(move || cache.acquire_tagged(key, 1))
            };
            std::thread::sleep(Duration::from_millis(20));
            cache.abandon_key(key);
            assert!(
                matches!(h.join().unwrap(), OpStateAcquire::Build { claimed: false }),
                "waiter degrades, never errors"
            );
        });
        let s = cache.stats();
        assert_eq!(s.abandoned, 1);
        assert_eq!(s.degraded_waits, 1);
        // The key is free again: the next acquirer claims.
        assert!(matches!(cache.acquire_tagged(key, 2), OpStateAcquire::Build { claimed: true }));
    }

    #[test]
    fn wait_timeout_degrades_instead_of_stalling() {
        let cache = OpStateCache::new(OpStateCacheConfig {
            budget_bytes: 1 << 20,
            shards: 4,
            wait_timeout: Duration::from_millis(10),
        });
        let key = Sig128(9);
        assert!(matches!(cache.acquire_tagged(key, 0), OpStateAcquire::Build { claimed: true }));
        // The builder never publishes; a waiter must come back anyway.
        let start = std::time::Instant::now();
        assert!(matches!(cache.acquire_tagged(key, 1), OpStateAcquire::Build { claimed: false }));
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(cache.stats().degraded_waits, 1);
    }

    #[test]
    fn eviction_prefers_old_cheap_bulky_entries() {
        // Budget fits two of the three entries.
        let cache = OpStateCache::with_budget(250);
        for (i, (bytes, work)) in [(100u64, 1.0), (100, 500.0), (100, 2.0)].iter().enumerate() {
            let key = Sig128(i as u128);
            assert!(matches!(
                cache.acquire_tagged(key, 0),
                OpStateAcquire::Build { claimed: true }
            ));
            cache.publish_tagged(key, entry(&[i as i64], *bytes, *work), 0);
        }
        let s = cache.stats();
        assert_eq!(s.evicted, 1);
        assert!(s.resident_bytes <= 250);
        // The expensive-to-rebuild entry survived the sweep.
        assert!(cache.warm(Sig128(1)), "high build_work entry must be retained");
        assert!(cache.warm(Sig128(2)), "most recent entry must be retained");
        assert!(!cache.warm(Sig128(0)), "oldest cheap entry is the victim");
    }

    #[test]
    fn purge_sigs_drops_dependents_and_aborts_flights() {
        let cache = OpStateCache::with_budget(1 << 20);
        let dep = Sig128(0xDEAD);
        // Resident entry derived from the quarantined view.
        cache.acquire_tagged(Sig128(1), 0);
        let mut tainted = entry(&[1], 50, 1.0);
        tainted.dep_sigs.push(dep);
        cache.publish_tagged(Sig128(1), tainted, 0);
        // Resident entry with no such dependency.
        cache.acquire_tagged(Sig128(2), 0);
        cache.publish_tagged(Sig128(2), entry(&[2], 50, 1.0), 0);
        // An in-flight claim (dependencies unknown → conservatively aborted).
        cache.acquire_tagged(Sig128(3), 0);

        assert_eq!(cache.purge_sigs(&[dep]), 1);
        assert!(!cache.warm(Sig128(1)), "tainted resident purged");
        assert!(cache.warm(Sig128(2)), "clean resident survives");
        assert!(!cache.warm(Sig128(3)), "in-flight claim aborted");
        let s = cache.stats();
        assert_eq!((s.purged, s.abandoned), (1, 1));
        assert_eq!(s.resident_bytes, 50);
    }

    #[test]
    fn purge_input_drops_states_scanning_the_dataset() {
        let cache = OpStateCache::with_budget(1 << 20);
        cache.acquire_tagged(Sig128(1), 0);
        let mut scans_users = entry(&[1], 10, 1.0);
        scans_users.scan_deps.push(("users".into(), VersionGuid(1)));
        cache.publish_tagged(Sig128(1), scans_users, 0);
        cache.acquire_tagged(Sig128(2), 0);
        let mut scans_sales = entry(&[2], 10, 1.0);
        scans_sales.scan_deps.push(("sales".into(), VersionGuid(2)));
        cache.publish_tagged(Sig128(2), scans_sales, 0);

        assert_eq!(cache.purge_input("users"), 1);
        assert!(!cache.warm(Sig128(1)));
        assert!(cache.warm(Sig128(2)));
    }

    /// Satellite: DetRng property test — evicting/purging a
    /// claimed-but-unpublished state mid-flight always degrades waiters to
    /// inline builds. Whatever interleaving the seed produces: no panic,
    /// no deadlock, and every `Hit` carries the exact payload the key's
    /// builder published (the digest-safety proxy at this layer).
    #[test]
    fn random_mid_flight_eviction_degrades_cleanly() {
        for seed in 0..8u64 {
            let mut rng = DetRng::seed(seed);
            let cache = Arc::new(OpStateCache::new(OpStateCacheConfig {
                // Tiny budget keeps the evictor busy the whole time.
                budget_bytes: rng.range_u64(50, 400),
                shards: rng.range_usize(1, 5),
                wait_timeout: Duration::from_millis(200),
            }));
            let keys: Vec<Sig128> = (0..rng.range_u64(2, 6)).map(|i| Sig128(i as u128)).collect();
            let threads = rng.range_usize(2, 7);
            let plans: Vec<Vec<(usize, u8)>> = (0..threads)
                .map(|t| {
                    let mut r = rng.fork(t as u64);
                    (0..24)
                        .map(|_| (r.range_usize(0, keys.len()), (r.next_u64() % 10) as u8))
                        .collect()
                })
                .collect();
            std::thread::scope(|s| {
                for (t, plan) in plans.into_iter().enumerate() {
                    let cache = cache.clone();
                    let keys = keys.clone();
                    s.spawn(move || {
                        for (ki, action) in plan {
                            let key = keys[ki];
                            match action {
                                // Mostly: acquire and either publish or
                                // abandon the claim.
                                0..=6 => match cache.acquire_tagged(key, t as u64) {
                                    OpStateAcquire::Hit(e) => {
                                        // Payload is keyed: a hit must carry
                                        // this key's canonical bytes.
                                        assert_eq!(payload(&e), vec![key.0 as i64]);
                                    }
                                    OpStateAcquire::Build { claimed: true } => {
                                        if action % 2 == 0 {
                                            cache.publish_tagged(
                                                key,
                                                entry(&[key.0 as i64], 60, 1.0),
                                                t as u64,
                                            );
                                        } else {
                                            cache.abandon_key(key);
                                        }
                                    }
                                    OpStateAcquire::Build { claimed: false } => {
                                        // Inline build: nothing to publish.
                                    }
                                },
                                // Sometimes: purge everything mid-flight.
                                7..=8 => {
                                    cache.purge_matching(|_| true);
                                }
                                // Rarely: abandon someone else's claim (the
                                // purge path does this too).
                                _ => cache.abandon_key(key),
                            }
                        }
                    });
                }
            });
            // The ledger balances: resident bytes equal the sum of what is
            // actually resident, and the budget holds.
            let resident: u64 = cache
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap()
                        .values()
                        .map(|v| match v {
                            Slot::Ready(r) => r.entry.bytes,
                            Slot::InFlight(_) => 0,
                        })
                        .sum::<u64>()
                })
                .sum();
            let s = cache.stats();
            assert_eq!(s.resident_bytes, resident, "seed {seed}: byte ledger drifted");
            assert!(
                s.resident_bytes <= cache.cfg.budget_bytes,
                "seed {seed}: budget violated after quiescence"
            );
        }
    }

    #[test]
    fn tagged_wrapper_threads_its_tag() {
        let cache = Arc::new(OpStateCache::with_budget(1 << 20));
        let a = TaggedOpStates::new(cache.clone(), 1);
        let b = TaggedOpStates::new(cache.clone(), 2);
        let key = Sig128(5);
        assert!(matches!(a.acquire(key), OpStateAcquire::Build { claimed: true }));
        a.publish(key, entry(&[5], 10, 1.0));
        assert!(matches!(a.acquire(key), OpStateAcquire::Hit(_)));
        assert_eq!(cache.stats().cross_job_hits, 0, "same tag is not cross-job");
        assert!(matches!(b.acquire(key), OpStateAcquire::Hit(_)));
        assert_eq!(cache.stats().cross_job_hits, 1);
        assert!(b.is_warm(key));
    }
}
