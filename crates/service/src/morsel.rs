//! Pool-backed [`MorselRunner`]: intra-query parallelism over the service
//! work-stealing pool.
//!
//! The engine's chunked operators fan per-chunk work out through a
//! [`MorselRunner`]; this implementation turns each chunk into one pool
//! task, so the morsels of a single heavy job spread across workers via the
//! same round-robin admission and half-stealing that balance whole jobs.
//! Chunk tasks carry no VC identity of their own (they run *inside* an
//! admitted job), so admission control is disabled — every morsel is
//! immediately runnable.

use crate::pool::{run_tasks, PoolConfig, TaskSpec};
use cv_common::ids::{JobId, VcId};
use cv_engine::MorselRunner;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fans per-chunk operator work across a work-stealing pool.
pub struct PoolMorselRunner {
    cfg: PoolConfig,
    /// Per-worker steal counts accumulated across every `run` call — the
    /// scaling bench reads these to show *which* workers actually
    /// participated (an all-zero tail diagnoses a flat speedup curve).
    steals_by_worker: Vec<AtomicU64>,
}

impl PoolMorselRunner {
    pub fn new(workers: usize) -> PoolMorselRunner {
        let workers = workers.max(1);
        PoolMorselRunner {
            cfg: PoolConfig {
                workers,
                // Morsels are sub-job units: no per-VC throttling.
                vc_inflight_limit: usize::MAX,
                queue_cap: usize::MAX,
            },
            steals_by_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Cumulative steals per worker over this runner's lifetime.
    pub fn steal_counts(&self) -> Vec<u64> {
        self.steals_by_worker.iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }

    /// Zero the per-worker steal counters (e.g. after bench warmup).
    pub fn reset_steal_counts(&self) {
        for s in &self.steals_by_worker {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl MorselRunner for PoolMorselRunner {
    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        // One chunk (or one worker) gains nothing from the pool; run
        // inline and skip the thread scope entirely.
        if tasks <= 1 || self.cfg.workers == 1 {
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        let specs: Vec<TaskSpec<'_>> = (0..tasks)
            .map(|i| TaskSpec {
                job: JobId(i as u64),
                vc: VcId(0),
                deps: Vec::new(),
                run: Box::new(move || task(i)),
            })
            .collect();
        let report = run_tasks(&self.cfg, specs, &[]);
        for (w, n) in report.steals_by_worker.iter().enumerate() {
            self.steals_by_worker[w].fetch_add(*n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_engine::exec::morsel::run_indexed;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runner_executes_every_chunk_exactly_once() {
        let runner = PoolMorselRunner::new(4);
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        runner.run(37, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn pool_runner_collects_results_by_slot() {
        let runner = PoolMorselRunner::new(4);
        let out = run_indexed(&runner, 16, &|i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn steal_counts_accumulate_across_runs() {
        let runner = PoolMorselRunner::new(4);
        // A skewed first chunk forces the other workers to steal.
        for _ in 0..3 {
            runner.run(64, &|i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            });
        }
        let counts = runner.steal_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().sum::<u64>() > 0, "skewed morsels must force steals");
        runner.reset_steal_counts();
        assert_eq!(runner.steal_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn single_worker_degenerates_to_inline() {
        let runner = PoolMorselRunner::new(1);
        let order = std::sync::Mutex::new(Vec::new());
        runner.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
