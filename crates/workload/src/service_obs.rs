//! Observability wiring for the service driver: bridges engine events onto
//! `cv_obs::{Tracer, Metrics}`.
//!
//! The engine emits through the dependency-free [`cv_engine::obs::ObsSink`]
//! trait; the concrete adapters live here, next to the driver that owns the
//! tracer (mirroring how `cv_analyzer::Analyzer` plugs into `PlanVerifier`).
//! Two adapters exist because the two hook sites have different threading:
//!
//! * [`OptimizerSink`] — one shared sink installed on the optimizer for the
//!   whole run. Compilation is sequential on the driver thread, so a single
//!   atomic "current track" set before each `optimize` call routes
//!   view-match / view-build events onto the right job's track.
//! * [`ExecSink`] — one per pool task, carrying its job's track by value,
//!   because operator events arrive concurrently from worker threads.
//!
//! Track assignment: track 0 is the driver control loop, track `job_id + 1`
//! is that job's lifecycle. Tracks are logical, so a job's compile (driver
//! thread), execute (worker thread) and commit (driver thread) spans nest
//! on one timeline regardless of which OS thread emitted them.

use cv_common::hash::Sig128;
use cv_common::ids::JobId;
use cv_engine::obs::ObsSink;
use cv_obs::{Counter, Metrics, Tracer};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The logical track for a job's spans (track 0 is the driver loop).
pub fn job_track(job: JobId) -> u64 {
    job.0 + 1
}

/// Shared observability state for one service run: the span tracer, the
/// metrics registry, and the optimizer-side sink installed on the engine.
pub struct ServiceObs {
    pub tracer: Arc<Tracer>,
    pub metrics: Arc<Metrics>,
    pub(crate) optimizer_sink: Arc<OptimizerSink>,
}

impl ServiceObs {
    pub fn new() -> ServiceObs {
        let tracer = Arc::new(Tracer::new());
        let metrics = Arc::new(Metrics::new());
        let optimizer_sink = Arc::new(OptimizerSink {
            tracer: tracer.clone(),
            metrics: metrics.clone(),
            track: AtomicU64::new(0),
            matched: metrics.counter("optimizer.views_matched"),
            built: metrics.counter("optimizer.view_builds"),
            semantic_considered: metrics.counter("optimizer.semantic_considered"),
            semantic_proven: metrics.counter("optimizer.semantic_proven"),
        });
        ServiceObs { tracer, metrics, optimizer_sink }
    }

    /// Export the run's incremental-maintenance counters into the metrics
    /// registry (`ivm.maintained`, `ivm.rebuilt`, `ivm.refused`, plus
    /// per-code `ivm.veto.CV07x` and per-reason `ivm.rebuild.*`).
    pub fn record_ivm(&self, stats: &cv_ivm::IvmStats) {
        self.metrics.counter("ivm.maintained").add(stats.maintained);
        self.metrics.counter("ivm.rebuilt").add(stats.rebuilt);
        self.metrics.counter("ivm.refused").add(stats.refused);
        for (code, n) in &stats.vetoes {
            self.metrics.counter(&format!("ivm.veto.{code}")).add(*n);
        }
        for (reason, n) in &stats.rebuild_reasons {
            self.metrics.counter(&format!("ivm.rebuild.{reason}")).add(*n);
        }
    }

    /// Build the per-task executor sink for a job's track.
    pub(crate) fn exec_sink(&self, track: u64) -> Arc<ExecSink> {
        Arc::new(ExecSink {
            tracer: self.tracer.clone(),
            track,
            ops: self.metrics.counter("executor.ops"),
            rows: self.metrics.counter("executor.rows"),
            bytes: self.metrics.counter("executor.bytes"),
            op_ns: self.metrics.counter("executor.op_ns"),
            op_state_hits: self.metrics.counter("op_state.hits"),
            op_state_misses: self.metrics.counter("op_state.misses"),
            op_state_published: self.metrics.counter("op_state.published"),
            op_state_bytes_published: self.metrics.counter("op_state.bytes_published"),
        })
    }
}

impl Default for ServiceObs {
    fn default() -> Self {
        ServiceObs::new()
    }
}

/// Optimizer-side sink: counts view matches / build insertions and records
/// them as zero-length child spans under the current job's `optimize` span.
pub(crate) struct OptimizerSink {
    tracer: Arc<Tracer>,
    /// Registry handle, for the lazily-created per-veto-code counters.
    metrics: Arc<Metrics>,
    /// Track of the job currently being compiled (compilation is
    /// sequential, so a single cell suffices).
    track: AtomicU64,
    matched: Counter,
    built: Counter,
    semantic_considered: Counter,
    semantic_proven: Counter,
}

impl OptimizerSink {
    pub(crate) fn set_track(&self, track: u64) {
        self.track.store(track, Ordering::Relaxed);
    }
}

impl fmt::Debug for OptimizerSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptimizerSink").field("track", &self.track.load(Ordering::Relaxed)).finish()
    }
}

impl ObsSink for OptimizerSink {
    fn view_matched(&self, sig: Sig128) {
        self.matched.inc();
        let track = self.track.load(Ordering::Relaxed);
        self.tracer.begin(track, "view-match");
        self.tracer.end_with(track, &[("sig", sig.0 as u64)]);
    }

    fn view_build_inserted(&self, sig: Sig128) {
        self.built.inc();
        let track = self.track.load(Ordering::Relaxed);
        self.tracer.begin(track, "view-build");
        self.tracer.end_with(track, &[("sig", sig.0 as u64)]);
    }

    fn semantic_considered(&self, sig: Sig128) {
        self.semantic_considered.inc();
        let track = self.track.load(Ordering::Relaxed);
        self.tracer.begin(track, "semantic-consider");
        self.tracer.end_with(track, &[("sig", sig.0 as u64)]);
    }

    fn semantic_proven(&self, sig: Sig128) {
        self.semantic_proven.inc();
        let track = self.track.load(Ordering::Relaxed);
        self.tracer.begin(track, "semantic-prove");
        self.tracer.end_with(track, &[("sig", sig.0 as u64)]);
    }

    fn semantic_vetoed(&self, sig: Sig128, code: &'static str) {
        // Per-code veto histogram: one counter per CV06x code actually hit.
        self.metrics.counter(&format!("optimizer.semantic_veto.{code}")).inc();
        let track = self.track.load(Ordering::Relaxed);
        self.tracer.begin(track, "semantic-veto");
        self.tracer.end_with(track, &[("sig", sig.0 as u64)]);
    }
}

/// Executor-side sink for one pool task: operator spans on the job's track
/// plus run-wide operator counters. `op_ns` is wall time and therefore the
/// only non-deterministic counter it touches.
pub(crate) struct ExecSink {
    tracer: Arc<Tracer>,
    track: u64,
    ops: Counter,
    rows: Counter,
    bytes: Counter,
    op_ns: Counter,
    op_state_hits: Counter,
    op_state_misses: Counter,
    op_state_published: Counter,
    op_state_bytes_published: Counter,
}

impl ExecSink {
    /// Open the job's `execute` span (called on the worker thread, so the
    /// operator spans emitted through the `ObsSink` hooks nest under it).
    pub(crate) fn begin_execute(&self) {
        self.tracer.begin(self.track, "execute");
    }

    /// Close the job's `execute` span with deterministic counters.
    pub(crate) fn end_execute(&self, args: &[(&str, u64)]) {
        self.tracer.end_with(self.track, args);
    }
}

impl fmt::Debug for ExecSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecSink").field("track", &self.track).finish()
    }
}

impl ObsSink for ExecSink {
    fn op_started(&self, kind: &'static str) {
        self.tracer.begin(self.track, kind);
    }

    fn op_finished(&self, kind: &'static str, rows: u64, bytes: u64, ns: u64) {
        let _ = kind;
        self.ops.inc();
        self.rows.add(rows);
        self.bytes.add(bytes);
        self.op_ns.add(ns);
        self.tracer.end_with(self.track, &[("rows", rows), ("bytes", bytes)]);
    }

    fn op_state_hit(&self, kind: &'static str, key: Sig128) {
        let _ = kind;
        self.op_state_hits.inc();
        self.tracer.begin(self.track, "op-state-hit");
        self.tracer.end_with(self.track, &[("key", key.0 as u64)]);
    }

    fn op_state_miss(&self, kind: &'static str) {
        let _ = kind;
        self.op_state_misses.inc();
    }

    fn op_state_published(&self, kind: &'static str, bytes: u64) {
        let _ = kind;
        self.op_state_published.inc();
        self.op_state_bytes_published.add(bytes);
        self.tracer.begin(self.track, "op-state-publish");
        self.tracer.end_with(self.track, &[("bytes", bytes)]);
    }
}
