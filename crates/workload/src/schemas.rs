//! Raw dataset schemas and seeded data generators.
//!
//! Two families, matching the paper's narrative:
//!
//! * **telemetry** (the Cosmos ingestion path, §2.1): `page_views`,
//!   `app_events` regenerated daily; slowly-changing dimensions `users`,
//!   `devices`;
//! * **retail** (the Fig. 4 running example): `sales` facts with `customer`
//!   and `part` dimensions.

use cv_common::rng::DetRng;
use cv_common::SimDay;
use cv_data::delta::TableDelta;
use cv_data::schema::{Field, Schema, SchemaRef};
use cv_data::table::Table;
use cv_data::value::{DataType, Value};

/// Fraction of dimension rows whose attributes churn per refresh.
const DIM_CHURN: f64 = 0.03;

/// How a raw dataset behaves over the simulated window.
#[derive(Clone, Debug)]
pub struct RawDatasetSpec {
    pub name: &'static str,
    /// Rows per regeneration at scale 1.0.
    pub base_rows: usize,
    /// Regenerate every N days (1 = daily telemetry; dimensions are slower).
    pub update_every_days: u32,
    pub generator: DataGenerator,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataGenerator {
    PageViews,
    AppEvents,
    Users,
    Devices,
    Sales,
    Customer,
    Part,
}

/// All raw datasets of one simulated cluster.
pub fn raw_specs() -> Vec<RawDatasetSpec> {
    vec![
        RawDatasetSpec {
            name: "page_views",
            base_rows: 2400,
            update_every_days: 1,
            generator: DataGenerator::PageViews,
        },
        RawDatasetSpec {
            name: "app_events",
            base_rows: 1600,
            update_every_days: 1,
            generator: DataGenerator::AppEvents,
        },
        RawDatasetSpec {
            name: "users",
            base_rows: 400,
            update_every_days: 7,
            generator: DataGenerator::Users,
        },
        RawDatasetSpec {
            name: "devices",
            base_rows: 300,
            update_every_days: 7,
            generator: DataGenerator::Devices,
        },
        RawDatasetSpec {
            name: "sales",
            base_rows: 1500,
            update_every_days: 1,
            generator: DataGenerator::Sales,
        },
        RawDatasetSpec {
            name: "customer",
            base_rows: 200,
            update_every_days: 7,
            generator: DataGenerator::Customer,
        },
        RawDatasetSpec {
            name: "part",
            base_rows: 120,
            update_every_days: 7,
            generator: DataGenerator::Part,
        },
    ]
}

const USER_AGENTS: [&str; 5] = [
    "Mozilla/5.0 Chrome/99",
    "Mozilla/5.0 Edge/98",
    "Mozilla/5.0 Firefox/97",
    "Mozilla/5.0 Safari/15",
    "bot/1.0",
];
const APPS: [&str; 6] = ["word", "excel", "teams", "xbox", "bing", "windows"];
const EVENT_KINDS: [&str; 4] = ["click", "view", "error", "crash"];
const SEGMENTS: [&str; 5] = ["asia", "emea", "amer", "oceania", "latam"];
const COUNTRIES: [&str; 8] = ["us", "de", "jp", "in", "br", "uk", "cn", "au"];
const OS_NAMES: [&str; 4] = ["windows", "android", "ios", "linux"];
const PART_TYPES: [&str; 5] = ["type0", "type1", "type2", "type3", "type4"];

impl RawDatasetSpec {
    pub fn schema(&self) -> SchemaRef {
        let fields = match self.generator {
            DataGenerator::PageViews => vec![
                Field::new("pv_user", DataType::Int),
                Field::new("pv_url", DataType::Str),
                Field::new("pv_ms", DataType::Int),
                Field::new("user_agent", DataType::Str),
                Field::new("ip_hash", DataType::Int),
                Field::new("pv_date", DataType::Date),
            ],
            DataGenerator::AppEvents => vec![
                Field::new("ev_user", DataType::Int),
                Field::new("ev_app", DataType::Str),
                Field::new("ev_kind", DataType::Str),
                Field::new("ev_val", DataType::Float),
                Field::new("ev_date", DataType::Date),
            ],
            DataGenerator::Users => vec![
                Field::new("u_id", DataType::Int),
                Field::new("u_country", DataType::Str),
                Field::new("u_segment", DataType::Str),
                Field::new("u_signup", DataType::Date),
            ],
            DataGenerator::Devices => vec![
                Field::new("d_id", DataType::Int),
                Field::new("d_user", DataType::Int),
                Field::new("d_os", DataType::Str),
            ],
            DataGenerator::Sales => vec![
                Field::new("s_cust", DataType::Int),
                Field::new("s_part", DataType::Int),
                Field::new("price", DataType::Float),
                Field::new("quantity", DataType::Int),
                Field::new("discount", DataType::Float),
                Field::new("s_date", DataType::Date),
            ],
            DataGenerator::Customer => vec![
                Field::new("c_id", DataType::Int),
                Field::new("mkt_segment", DataType::Str),
                Field::new("c_country", DataType::Str),
            ],
            DataGenerator::Part => vec![
                Field::new("p_id", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("part_type", DataType::Str),
            ],
        };
        Schema::new(fields).expect("static schemas are valid").into_ref()
    }

    /// Generate one regeneration of this dataset for `day`. Deterministic
    /// given `(seed stream, day)`.
    pub fn generate(&self, rng: &mut DetRng, scale: f64, day: SimDay) -> Table {
        let rows = ((self.base_rows as f64 * scale) as usize).max(8);
        let n_users = ((400.0 * scale) as i64).max(20);
        let n_customers = ((200.0 * scale) as i64).max(10);
        let n_parts = ((120.0 * scale) as i64).max(8);
        let epoch_day = 18_293 + day.index() as i32; // ≈ 2020-02-01 + day
        let mut out: Vec<Vec<Value>> = Vec::with_capacity(rows);
        match self.generator {
            DataGenerator::PageViews => {
                for _ in 0..rows {
                    out.push(vec![
                        Value::Int(rng.zipf(n_users as usize, 1.05) as i64),
                        Value::Str(format!("/page/{}", rng.zipf(60, 1.1))),
                        Value::Int((rng.log_normal(4.5, 0.8)) as i64),
                        Value::Str(rng.choose(&USER_AGENTS).to_string()),
                        Value::Int(rng.range_i64(0, 100_000)),
                        Value::Date(epoch_day),
                    ]);
                }
            }
            DataGenerator::AppEvents => {
                for _ in 0..rows {
                    out.push(vec![
                        Value::Int(rng.zipf(n_users as usize, 1.05) as i64),
                        Value::Str(rng.choose(&APPS).to_string()),
                        Value::Str(EVENT_KINDS[rng.weighted(&[0.5, 0.35, 0.1, 0.05])].to_string()),
                        Value::Float((rng.range_f64(0.0, 100.0) * 100.0).round() / 100.0),
                        Value::Date(epoch_day),
                    ]);
                }
            }
            DataGenerator::Users => {
                for i in 0..rows {
                    out.push(vec![
                        Value::Int(i as i64),
                        Value::Str(rng.choose(&COUNTRIES).to_string()),
                        Value::Str(rng.choose(&SEGMENTS).to_string()),
                        Value::Date(epoch_day - rng.range_i64(0, 1000) as i32),
                    ]);
                }
            }
            DataGenerator::Devices => {
                for i in 0..rows {
                    out.push(vec![
                        Value::Int(i as i64),
                        Value::Int(rng.range_i64(0, n_users)),
                        Value::Str(rng.choose(&OS_NAMES).to_string()),
                    ]);
                }
            }
            DataGenerator::Sales => {
                for _ in 0..rows {
                    out.push(vec![
                        Value::Int(rng.zipf(n_customers as usize, 0.9) as i64),
                        Value::Int(rng.zipf(n_parts as usize, 1.0) as i64),
                        Value::Float((rng.log_normal(3.0, 0.7) * 100.0).round() / 100.0),
                        Value::Int(rng.range_i64(1, 10)),
                        Value::Float((rng.range_f64(0.0, 0.4) * 100.0).round() / 100.0),
                        Value::Date(epoch_day),
                    ]);
                }
            }
            DataGenerator::Customer => {
                for i in 0..rows {
                    out.push(vec![
                        Value::Int(i as i64),
                        Value::Str(rng.choose(&SEGMENTS).to_string()),
                        Value::Str(rng.choose(&COUNTRIES).to_string()),
                    ]);
                }
            }
            DataGenerator::Part => {
                for i in 0..rows {
                    out.push(vec![
                        Value::Int(i as i64),
                        Value::Str(format!("brand{}", rng.range_i64(0, 8))),
                        Value::Str(rng.choose(&PART_TYPES).to_string()),
                    ]);
                }
            }
        }
        Table::from_rows(self.schema(), &out).expect("generated rows match schema")
    }

    /// Fact tables are append-mostly daily logs; everything else is a
    /// slowly-changing dimension.
    pub fn is_fact(&self) -> bool {
        matches!(
            self.generator,
            DataGenerator::PageViews | DataGenerator::AppEvents | DataGenerator::Sales
        )
    }

    /// Generate this dataset's next generation *as a delta over `prev`*:
    /// facts append the day's fresh rows (pure-insert delta); dimensions
    /// keep their identity rows and churn ~3% of them in place
    /// (delete + insert pairs). Returns `(new contents, delta)` satisfying
    /// `prev ⊎ inserts ∖ deletes = new`. Deterministic given
    /// `(seed stream, day, prev)`.
    pub fn generate_delta(
        &self,
        rng: &mut DetRng,
        scale: f64,
        day: SimDay,
        prev: &Table,
    ) -> (Table, TableDelta) {
        let fresh = self.generate(rng, scale, day);
        if self.is_fact() {
            let new = prev.concat(&fresh).expect("fact schema is stable across days");
            return (new, TableDelta::append(fresh));
        }
        let mut new_rows = prev.to_rows();
        let mut ins: Vec<Vec<Value>> = Vec::new();
        let mut del: Vec<Vec<Value>> = Vec::new();
        let common = new_rows.len().min(fresh.num_rows());
        for (i, row) in new_rows.iter_mut().enumerate().take(common) {
            if rng.range_f64(0.0, 1.0) >= DIM_CHURN {
                continue;
            }
            let replacement = fresh.row(i);
            if replacement != *row {
                del.push(row.clone());
                ins.push(replacement.clone());
                *row = replacement;
            }
        }
        // Scale drift: a grown dimension appends, a shrunken one truncates.
        for i in common..fresh.num_rows() {
            let row = fresh.row(i);
            ins.push(row.clone());
            new_rows.push(row);
        }
        if new_rows.len() > fresh.num_rows() {
            del.extend(new_rows.drain(fresh.num_rows()..));
        }
        let schema = self.schema();
        let new = Table::from_rows(schema.clone(), &new_rows).expect("churned rows match schema");
        let delta = TableDelta {
            inserts: Table::from_rows(schema.clone(), &ins).expect("insert rows match schema"),
            deletes: Table::from_rows(schema, &del).expect("delete rows match schema"),
        };
        (new, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_generate_valid_tables() {
        for spec in raw_specs() {
            let mut rng = DetRng::seed(1);
            let t = spec.generate(&mut rng, 0.1, SimDay(0));
            assert!(t.num_rows() >= 8, "{}", spec.name);
            assert_eq!(t.schema().len(), spec.schema().len());
            assert!(t.byte_size() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in raw_specs() {
            let a = spec.generate(&mut DetRng::seed(7), 0.2, SimDay(3));
            let b = spec.generate(&mut DetRng::seed(7), 0.2, SimDay(3));
            assert_eq!(a.canonical_rows(), b.canonical_rows(), "{}", spec.name);
        }
    }

    #[test]
    fn different_days_produce_different_facts() {
        let spec = &raw_specs()[0]; // page_views
        let mut rng = DetRng::seed(7);
        let a = spec.generate(&mut rng, 0.2, SimDay(0));
        let b = spec.generate(&mut rng, 0.2, SimDay(1));
        assert_ne!(a.canonical_rows(), b.canonical_rows());
        // Dates reflect the day.
        let d_idx = a.schema().index_of("pv_date").unwrap();
        assert_eq!(a.column(d_idx).value(0), Value::Date(18_293));
        assert_eq!(b.column(d_idx).value(0), Value::Date(18_294));
    }

    #[test]
    fn scale_controls_row_counts() {
        let spec = &raw_specs()[0];
        let small = spec.generate(&mut DetRng::seed(1), 0.05, SimDay(0));
        let large = spec.generate(&mut DetRng::seed(1), 0.5, SimDay(0));
        assert!(large.num_rows() > small.num_rows() * 5);
    }

    #[test]
    fn fact_deltas_are_pure_appends() {
        let spec = &raw_specs()[0]; // page_views
        let mut rng = DetRng::seed(11);
        let day0 = spec.generate(&mut rng, 0.1, SimDay(0));
        let (day1, delta) = spec.generate_delta(&mut rng, 0.1, SimDay(1), &day0);
        assert_eq!(delta.deletes.num_rows(), 0);
        assert!(delta.inserts.num_rows() > 0);
        assert_eq!(day1.num_rows(), day0.num_rows() + delta.inserts.num_rows());
    }

    #[test]
    fn dimension_deltas_are_small_churn() {
        let spec = raw_specs().into_iter().find(|s| s.name == "users").unwrap();
        let mut rng = DetRng::seed(11);
        let day0 = spec.generate(&mut rng, 0.3, SimDay(0));
        let (day7, delta) = spec.generate_delta(&mut rng, 0.3, SimDay(7), &day0);
        assert_eq!(day7.num_rows(), day0.num_rows(), "identity rows persist");
        assert_eq!(delta.inserts.num_rows(), delta.deletes.num_rows());
        assert!(
            delta.rows_touched() < day0.num_rows() / 4,
            "churn {} of {} rows is not small",
            delta.rows_touched(),
            day0.num_rows()
        );
        // Keys stay dense after churn.
        for i in 0..day7.num_rows() {
            assert_eq!(day7.column(0).value(i), Value::Int(i as i64));
        }
    }

    #[test]
    fn generated_delta_is_exact() {
        use cv_data::delta::diff_tables;
        for spec in raw_specs() {
            let mut rng = DetRng::seed(3);
            let day0 = spec.generate(&mut rng, 0.1, SimDay(0));
            let (new, delta) =
                spec.generate_delta(&mut rng, 0.1, SimDay(spec.update_every_days), &day0);
            // prev ⊎ inserts ∖ deletes = new, as a multiset identity.
            let with_ins = day0.concat(&delta.inserts).unwrap();
            let residue = diff_tables(&with_ins, &new).unwrap();
            assert_eq!(residue.inserts.num_rows(), 0, "{}", spec.name);
            assert_eq!(residue.deletes.num_rows(), delta.deletes.num_rows(), "{}", spec.name);
        }
    }

    #[test]
    fn dimension_keys_are_dense() {
        let users = raw_specs().into_iter().find(|s| s.name == "users").unwrap();
        let t = users.generate(&mut DetRng::seed(1), 0.1, SimDay(0));
        let ids = t.column(0);
        for i in 0..t.num_rows() {
            assert_eq!(ids.value(i), Value::Int(i as i64));
        }
    }
}
