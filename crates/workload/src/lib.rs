//! Synthetic Cosmos workloads.
//!
//! The paper's evaluation runs over proprietary production pipelines; this
//! crate generates their published *structural properties* instead
//! (DESIGN.md documents the substitution):
//!
//! * **Data cooking** (paper §2.1, Fig. 1): raw telemetry is ingested
//!   daily, then cooking jobs extract/transform/correlate it into *shared
//!   datasets* consumed by downstream analytics.
//! * **Recurring jobs**: ~80% of templates recur daily over fresh inputs.
//! * **Heavy sharing**: consumer counts per shared dataset follow a Zipf
//!   law (Fig. 2) and >75% of subexpressions repeat (Fig. 3), arranged by
//!   drawing template fragments (filters, joins, aggregations) from small
//!   popularity-weighted pools.
//! * **Concurrent submission bursts**: some pipelines fire all jobs at the
//!   period start (the §4 schedule-awareness hazard), others stagger.
//!
//! [`driver`] replays a configurable number of days end to end: bulk
//! ingestion → cooking → analytics with the CloudViews feedback loop →
//! cluster simulation, producing the ledgers the benches report on.

pub mod driver;
pub mod generator;
pub mod morsel_bench;
pub mod schemas;
pub mod service_driver;
pub mod service_obs;
pub mod templates;

pub use cv_ivm::IvmStats;
pub use driver::{
    ivm_stats_json, run_workload, DriverConfig, DriverOutcome, DurableStoreConfig, IvmMode,
    SelectionKnobs, SelectorKind, StoreBackend,
};
pub use generator::{generate_workload, Workload, WorkloadConfig};
pub use morsel_bench::{run_morsel_scaling, MorselScalingPoint, MorselScalingReport};
pub use service_driver::{
    merge_completions, run_workload_service, run_workload_service_obs,
    run_workload_service_with_store, ServiceConfig, ServiceOutcome, ServiceReport,
};
pub use service_obs::ServiceObs;
pub use templates::{JobTemplate, TemplateKind};
