//! Recurring job templates.
//!
//! A template is "a similar job ... executed periodically at regular
//! intervals over new data sets and parameters" (paper §2). Each simulated
//! day, due templates are instantiated with that day's parameter values and
//! compiled against the *current* dataset versions — which is exactly what
//! makes their strict signatures fresh and their recurring signatures
//! stable.

use cv_common::ids::{PipelineId, TemplateId, UserId, VcId};
use cv_common::{Result, SimDay, SimDuration, SimTime};
use cv_data::value::Value;
use cv_engine::engine::QueryEngine;
use cv_engine::expr::col;
use cv_engine::plan::{LogicalPlan, PlanBuilder};
use cv_engine::sql::Params;
use cv_engine::udo::UdoSpec;
use std::sync::Arc;

/// What a template produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateKind {
    /// Data-cooking job: its result is bulk-written into a shared dataset.
    Cooking { output: String },
    /// Downstream analytics job: its result leaves the cluster (reports).
    Analytics,
}

/// How the plan is expressed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateBody {
    /// Plain SCOPE-SQL with optional `@run_date` / `@window_start` markers.
    Sql(String),
    /// The page-view cooking pipeline, which needs UDOs (not expressible in
    /// the SQL surface): parse_user_agent → geo_enrich → project.
    CookPageViews,
}

/// A recurring job template.
#[derive(Clone, Debug)]
pub struct JobTemplate {
    pub id: TemplateId,
    pub pipeline: PipelineId,
    pub vc: VcId,
    pub user: UserId,
    pub kind: TemplateKind,
    pub body: TemplateBody,
    /// Submission time within the day.
    pub submit_offset: SimDuration,
    /// Run every N days.
    pub period_days: u32,
    /// For sliding-window templates: `@window_start = run_date - N days`.
    pub sliding_window_days: Option<i64>,
}

impl JobTemplate {
    pub fn due_on(&self, day: SimDay) -> bool {
        self.period_days > 0 && day.index().is_multiple_of(self.period_days)
    }

    pub fn submit_time(&self, day: SimDay) -> SimTime {
        day.start() + self.submit_offset
    }

    /// Per-instance parameter values. Day 0 of the simulation corresponds
    /// to 2020-02-01 (epoch day 18293), matching the paper's window.
    pub fn params_for(&self, day: SimDay) -> Params {
        let run_date = 18_293 + day.index() as i32;
        let mut params = Params::none();
        params.insert("run_date", Value::Date(run_date));
        if let Some(w) = self.sliding_window_days {
            params.insert("window_start", Value::Date(run_date - w as i32));
        }
        params
    }

    /// Instantiate this template's plan for a given day against the
    /// engine's current catalog state.
    pub fn build_plan(&self, engine: &QueryEngine, day: SimDay) -> Result<Arc<LogicalPlan>> {
        match &self.body {
            TemplateBody::Sql(sql) => engine.compile_sql(sql, &self.params_for(day)),
            TemplateBody::CookPageViews => {
                let plan = PlanBuilder::scan(&engine.catalog, "page_views")?
                    .udo(UdoSpec::new("parse_user_agent"), &engine.udos)?
                    .udo(UdoSpec::new("geo_enrich"), &engine.udos)?
                    .project(vec![
                        (col("pv_user"), "pv_user"),
                        (col("pv_url"), "pv_url"),
                        (col("pv_ms"), "pv_ms"),
                        (col("browser"), "browser"),
                        (col("region"), "region"),
                        (col("pv_date"), "pv_date"),
                    ])?
                    .build();
                Ok(plan)
            }
        }
    }

    /// Name of the dataset this template writes, if it is a cooking job.
    pub fn output_dataset(&self) -> Option<&str> {
        match &self.kind {
            TemplateKind::Cooking { output } => Some(output),
            TemplateKind::Analytics => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::schemas::raw_specs;
    use cv_common::rng::DetRng;
    use cv_common::SimTime;

    pub(crate) fn engine_with_raw_data() -> QueryEngine {
        let mut e = QueryEngine::new();
        let mut rng = DetRng::seed(1);
        for spec in raw_specs() {
            let t = spec.generate(&mut rng, 0.1, SimDay(0));
            e.catalog.register(spec.name, t, SimTime::EPOCH).unwrap();
        }
        e
    }

    fn sql_template(sql: &str, window: Option<i64>) -> JobTemplate {
        JobTemplate {
            id: TemplateId(1),
            pipeline: PipelineId(1),
            vc: VcId(0),
            user: UserId(0),
            kind: TemplateKind::Analytics,
            body: TemplateBody::Sql(sql.to_string()),
            submit_offset: SimDuration::from_hours(1.0),
            period_days: 1,
            sliding_window_days: window,
        }
    }

    #[test]
    fn due_and_submit_times() {
        let mut t = sql_template("SELECT * FROM sales", None);
        t.period_days = 2;
        assert!(t.due_on(SimDay(0)));
        assert!(!t.due_on(SimDay(1)));
        assert!(t.due_on(SimDay(2)));
        assert!((t.submit_time(SimDay(1)).seconds() - (86_400.0 + 3_600.0)).abs() < 1e-9);
    }

    #[test]
    fn params_track_day() {
        let t = sql_template("SELECT * FROM sales WHERE s_date >= @window_start", Some(7));
        let p0 = t.params_for(SimDay(0));
        assert_eq!(p0.get("run_date"), Some(&Value::Date(18_293)));
        assert_eq!(p0.get("window_start"), Some(&Value::Date(18_286)));
        let p5 = t.params_for(SimDay(5));
        assert_eq!(p5.get("run_date"), Some(&Value::Date(18_298)));
    }

    #[test]
    fn sql_body_builds_plan() {
        let e = engine_with_raw_data();
        let t = sql_template(
            "SELECT mkt_segment, COUNT(*) AS n FROM sales JOIN customer ON s_cust = c_id \
             WHERE s_date >= @window_start GROUP BY mkt_segment",
            Some(7),
        );
        let plan = t.build_plan(&e, SimDay(0)).unwrap();
        assert_eq!(plan.schema().unwrap().names(), vec!["mkt_segment", "n"]);
    }

    #[test]
    fn cooking_body_builds_udo_pipeline() {
        let e = engine_with_raw_data();
        let t = JobTemplate {
            id: TemplateId(0),
            pipeline: PipelineId(0),
            vc: VcId(0),
            user: UserId(0),
            kind: TemplateKind::Cooking { output: "cooked_pv".into() },
            body: TemplateBody::CookPageViews,
            submit_offset: SimDuration::from_minutes(5.0),
            period_days: 1,
            sliding_window_days: None,
        };
        let plan = t.build_plan(&e, SimDay(0)).unwrap();
        let names =
            plan.schema().unwrap().names().iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(names.contains(&"browser".to_string()));
        assert!(names.contains(&"region".to_string()));
        assert_eq!(t.output_dataset(), Some("cooked_pv"));
    }
}
