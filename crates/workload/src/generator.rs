//! Workload generation with controlled redundancy.
//!
//! Templates are assembled from small popularity-weighted fragment pools
//! (target dataset, filter, join, aggregation). Skewed fragment choice is
//! what makes many templates share scan→filter→join *prefixes* — the
//! mechanism behind the paper's ">75% of subexpressions repeated" (Fig. 3)
//! without copy-pasting identical queries.

use crate::templates::{JobTemplate, TemplateBody, TemplateKind};
use cv_common::ids::{PipelineId, TemplateId, UserId, VcId};
use cv_common::rng::DetRng;
use cv_common::SimDuration;

/// Workload generation knobs.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    pub seed: u64,
    /// Data volume multiplier for raw dataset generation.
    pub scale: f64,
    pub n_vcs: usize,
    pub n_users: usize,
    /// Number of downstream analytics templates (cooking adds 4 more).
    pub n_analytics: usize,
    /// Fraction of pipelines that fire all jobs at the period start (the §4
    /// schedule-awareness hazard).
    pub burst_fraction: f64,
    /// Fraction of analytics templates poisoned with a non-deterministic
    /// function (exercising the §4 signature-safety skip path).
    pub nondeterministic_fraction: f64,
    /// Fraction using sliding-window `@window_start` parameters.
    pub sliding_window_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            scale: 0.6,
            n_vcs: 6,
            n_users: 12,
            n_analytics: 48,
            burst_fraction: 0.5,
            nondeterministic_fraction: 0.05,
            sliding_window_fraction: 0.15,
        }
    }
}

/// A generated workload: cooking templates first, then analytics.
#[derive(Clone, Debug)]
pub struct Workload {
    pub config: WorkloadConfig,
    pub templates: Vec<JobTemplate>,
}

impl Workload {
    pub fn cooking_templates(&self) -> impl Iterator<Item = &JobTemplate> {
        self.templates.iter().filter(|t| matches!(t.kind, TemplateKind::Cooking { .. }))
    }

    pub fn analytics_templates(&self) -> impl Iterator<Item = &JobTemplate> {
        self.templates.iter().filter(|t| t.kind == TemplateKind::Analytics)
    }

    pub fn pipelines(&self) -> usize {
        let mut ids: Vec<PipelineId> = self.templates.iter().map(|t| t.pipeline).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }
}

/// One analytics fragment pool: everything needed to compose a query over a
/// target (cooked) dataset.
struct DatasetPool {
    dataset: &'static str,
    filters: &'static [&'static str],
    /// (join clause, columns unlocked by the join)
    join: Option<(&'static str, &'static [&'static str])>,
    group_bys: &'static [&'static str],
    aggs: &'static [&'static str],
    date_column: &'static str,
}

const POOLS: [DatasetPool; 4] = [
    DatasetPool {
        dataset: "cooked_pv",
        filters: &[
            "region = 'asia'",
            "region = 'emea'",
            "browser = 'chrome'",
            "region = 'asia' AND browser = 'chrome'",
            "pv_ms > 500",
            "region = 'amer'",
        ],
        join: Some(("JOIN users ON pv_user = u_id", &["u_country", "u_segment"])),
        group_bys: &["browser", "region", "pv_url"],
        aggs: &[
            "COUNT(*) AS cnt",
            "AVG(pv_ms) AS avg_ms",
            "SUM(pv_ms) AS total_ms",
            "COUNT(DISTINCT pv_user) AS uniques",
        ],
        date_column: "pv_date",
    },
    DatasetPool {
        dataset: "enriched_sales",
        filters: &[
            "mkt_segment = 'asia'",
            "mkt_segment = 'emea'",
            "quantity > 5",
            "mkt_segment = 'asia' AND discount < 0.2",
            "price > 20.0",
        ],
        join: Some(("JOIN part ON s_part = p_id", &["brand", "part_type"])),
        group_bys: &["mkt_segment", "c_country"],
        aggs: &[
            "AVG(price * quantity) AS avg_rev",
            "SUM(quantity) AS total_qty",
            "AVG(discount) AS avg_disc",
            "COUNT(*) AS cnt",
        ],
        date_column: "s_date",
    },
    DatasetPool {
        dataset: "error_events",
        filters: &["ev_app = 'xbox'", "ev_app = 'teams'", "ev_val > 50.0"],
        join: Some(("JOIN users ON ev_user = u_id", &["u_country"])),
        group_bys: &["ev_app"],
        aggs: &["COUNT(*) AS cnt", "AVG(ev_val) AS avg_val"],
        date_column: "ev_date",
    },
    DatasetPool {
        dataset: "user_activity",
        filters: &["ua_segment = 'asia'", "ua_segment = 'emea'", "ua_ms > 200"],
        join: None,
        group_bys: &["ua_country", "ua_segment"],
        aggs: &["AVG(ua_ms) AS avg_ms", "COUNT(*) AS cnt"],
        date_column: "ua_date",
    },
];

/// The four fixed cooking templates (paper Fig. 1's "extract, transform,
/// correlate" stage). Their outputs are the shared datasets above.
fn cooking_templates(cfg: &WorkloadConfig) -> Vec<JobTemplate> {
    let mk = |id: u64, body: TemplateBody, output: &str, offset_min: f64| JobTemplate {
        id: TemplateId(id),
        pipeline: PipelineId(0),
        vc: VcId(0),
        user: UserId(0),
        kind: TemplateKind::Cooking { output: output.to_string() },
        body,
        submit_offset: SimDuration::from_minutes(offset_min),
        period_days: 1,
        sliding_window_days: None,
    };
    let _ = cfg;
    vec![
        mk(0, TemplateBody::CookPageViews, "cooked_pv", 10.0),
        mk(
            1,
            TemplateBody::Sql(
                "SELECT pv_user AS ua_user, u_country AS ua_country, \
                 u_segment AS ua_segment, pv_ms AS ua_ms, pv_date AS ua_date \
                 FROM page_views JOIN users ON pv_user = u_id \
                 WHERE pv_ms > 0"
                    .into(),
            ),
            "user_activity",
            18.0,
        ),
        mk(
            2,
            TemplateBody::Sql(
                "SELECT s_cust, s_part, price, quantity, discount, s_date, \
                 mkt_segment, c_country \
                 FROM sales JOIN customer ON s_cust = c_id \
                 WHERE quantity > 0"
                    .into(),
            ),
            "enriched_sales",
            26.0,
        ),
        mk(
            3,
            TemplateBody::Sql(
                "SELECT ev_user, ev_app, ev_val, ev_date \
                 FROM app_events WHERE ev_kind = 'error'"
                    .into(),
            ),
            "error_events",
            34.0,
        ),
    ]
}

/// Generate the full workload.
pub fn generate_workload(config: WorkloadConfig) -> Workload {
    let mut rng = DetRng::seed(config.seed);
    let mut templates = cooking_templates(&config);

    let n_pipelines = (config.n_analytics / 4).max(1);
    // Which pipelines burst-submit everything at once (at the start of the
    // analytics window, before any view can seal — the §4 hazard), and
    // where each staggered pipeline's dense afternoon run sits.
    let burst: Vec<bool> = (0..n_pipelines).map(|_| rng.chance(config.burst_fraction)).collect();

    for i in 0..config.n_analytics {
        let id = TemplateId(templates.len() as u64);
        let pipeline = 1 + (i % n_pipelines) as u64;
        let vc = VcId(1 + (pipeline % config.n_vcs.max(1) as u64));
        let user = UserId(rng.range_u64(0, config.n_users.max(1) as u64));

        // Popularity-weighted fragment choice: Zipf over datasets (the
        // Asimov-style skew toward one hot dataset, Fig. 2) and over the
        // filter pool (this is what creates shared prefixes).
        let pool = &POOLS[rng.zipf(POOLS.len(), 1.1)];
        let filter = pool.filters[rng.zipf(pool.filters.len(), 1.6)];
        let with_join = pool.join.is_some() && rng.chance(0.35);
        let (join_sql, join_cols) = match (&pool.join, with_join) {
            (Some((sql, cols)), true) => (*sql, *cols),
            _ => ("", &[] as &[&str]),
        };
        // Group-by column: from the base pool, or a join-unlocked column.
        let group_by = if with_join && rng.chance(0.5) {
            rng.choose(join_cols)
        } else {
            rng.choose(pool.group_bys)
        };
        let agg = rng.choose(pool.aggs);

        let sliding = rng.chance(config.sliding_window_fraction);
        let window_days = if sliding { Some(rng.range_i64(3, 14)) } else { None };
        let window_sql = if sliding {
            format!(" AND {} >= @window_start", pool.date_column)
        } else {
            String::new()
        };
        let nondet = rng.chance(config.nondeterministic_fraction);
        let nondet_sql = if nondet { " AND RANDOM_NEXT() >= 0" } else { "" };

        let order = if rng.chance(0.3) {
            // ORDER BY the aggregate's alias, which is the token after "AS".
            let alias = agg.rsplit(' ').next().expect("agg has alias");
            format!(" ORDER BY {alias} DESC LIMIT 10")
        } else {
            String::new()
        };

        let sql = format!(
            "SELECT {group_by}, {agg} FROM {dataset} {join_sql} \
             WHERE {filter}{window_sql}{nondet_sql} GROUP BY {group_by}{order}",
            dataset = pool.dataset,
        );

        // Workflow tools enqueue a pipeline's jobs in order. Burst
        // pipelines fire at the very start of the analytics window, minutes
        // apart (no view can seal that early for the leading members — the
        // §4 hazard); other pipelines stagger across the day.
        let submit_offset = if burst[(pipeline as usize - 1) % n_pipelines] {
            let member = (i / n_pipelines) as f64;
            SimDuration::from_hours(2.0) + SimDuration::from_secs(member * 360.0)
        } else {
            SimDuration::from_hours(2.0 + rng.range_f64(0.0, 8.0))
        };

        // ~80% of jobs recur daily (paper §2); the rest weekly.
        let period_days = if rng.chance(0.8) { 1 } else { 7 };

        templates.push(JobTemplate {
            id,
            pipeline: PipelineId(pipeline),
            vc,
            user,
            kind: TemplateKind::Analytics,
            body: TemplateBody::Sql(sql),
            submit_offset,
            period_days,
            sliding_window_days: window_days,
        });
    }

    Workload { config, templates }
}

/// Catalog-scale sharing distribution for paper Fig. 2: consumer counts per
/// shared dataset for one cluster, sampled from a Pareto tail. `cluster` 0
/// plays "Cluster1" (the Asimov feedback platform) with a heavier tail: 10%
/// of its inputs have ≥16 consumers; other clusters sit around ≥7.
pub fn sharing_distribution(cluster: usize, n_datasets: usize, rng: &mut DetRng) -> Vec<u32> {
    let (xm, alpha) = if cluster == 0 { (1.0, 0.62) } else { (0.8, 0.85) };
    let mut counts = Vec::with_capacity(n_datasets);
    for _ in 0..n_datasets {
        let u = 1.0 - rng.next_f64();
        let x = xm / u.powf(1.0 / alpha);
        counts.push((x.round() as u32).clamp(1, 20_000));
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::tests::engine_with_raw_data;
    use cv_common::SimDay;

    #[test]
    fn workload_shape() {
        let w = generate_workload(WorkloadConfig::default());
        assert_eq!(w.cooking_templates().count(), 4);
        assert_eq!(w.analytics_templates().count(), 48);
        assert!(w.pipelines() >= 2);
        // Deterministic for a given seed.
        let w2 = generate_workload(WorkloadConfig::default());
        for (a, b) in w.templates.iter().zip(&w2.templates) {
            assert_eq!(a.body, b.body);
            assert_eq!(a.vc, b.vc);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_workload(WorkloadConfig::default());
        let b = generate_workload(WorkloadConfig { seed: 7, ..WorkloadConfig::default() });
        let same = a.templates.iter().zip(&b.templates).filter(|(x, y)| x.body == y.body).count();
        assert!(same < a.templates.len(), "seeds should change the workload");
    }

    #[test]
    fn all_analytics_sql_compiles_against_cooked_schemas() {
        // Build an engine with raw + cooked datasets (cooked produced by
        // actually running the cooking templates).
        let mut e = engine_with_raw_data();
        let w = generate_workload(WorkloadConfig::default());
        for cook in w.cooking_templates() {
            let plan = cook.build_plan(&e, SimDay(0)).unwrap();
            let out = e
                .run_plan(
                    &plan,
                    &cv_engine::optimizer::ReuseContext::empty(),
                    cv_common::ids::JobId(0),
                    cv_common::ids::VcId(0),
                    cv_common::SimTime::EPOCH,
                )
                .unwrap();
            e.catalog
                .register(cook.output_dataset().unwrap(), out.table, cv_common::SimTime::EPOCH)
                .unwrap();
        }
        for t in w.analytics_templates() {
            let plan = t.build_plan(&e, SimDay(0));
            assert!(plan.is_ok(), "template {:?} failed: {:?}\n{:?}", t.id, plan.err(), t.body);
        }
    }

    #[test]
    fn fragment_skew_creates_shared_filters() {
        let w = generate_workload(WorkloadConfig { n_analytics: 40, ..WorkloadConfig::default() });
        // Count how many analytics templates use the most popular
        // (dataset, filter) combination — skew should make it ≥ 4.
        let mut counts = std::collections::HashMap::new();
        for t in w.analytics_templates() {
            if let TemplateBody::Sql(sql) = &t.body {
                let key = sql
                    .split("WHERE")
                    .nth(1)
                    .unwrap_or("")
                    .split("GROUP BY")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                let dataset = sql.split("FROM ").nth(1).unwrap().split(' ').next().unwrap();
                *counts.entry(format!("{dataset}|{key}")).or_insert(0) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max >= 4, "expected heavy fragment sharing, max was {max}");
    }

    #[test]
    fn sharing_distribution_shapes() {
        let mut rng = DetRng::seed(3);
        let c1 = sharing_distribution(0, 2000, &mut rng);
        let c2 = sharing_distribution(1, 2000, &mut rng);
        let p90 = |xs: &[u32]| {
            let mut v = xs.to_vec();
            v.sort_unstable();
            v[(v.len() as f64 * 0.9) as usize]
        };
        // Cluster 1 (index 0) has the heavier tail (paper: 10% of inputs
        // reused by >16 consumers vs ≥7 for other clusters).
        assert!(p90(&c1) >= 14, "cluster1 p90 = {}", p90(&c1));
        assert!(p90(&c2) >= 5, "cluster2 p90 = {}", p90(&c2));
        assert!(p90(&c1) > p90(&c2));
        // More than half of datasets have multiple consumers.
        let multi = c1.iter().filter(|&&c| c >= 2).count();
        assert!(multi * 2 > c1.len());
        // A few datasets reach thousands of consumers.
        assert!(c1.iter().any(|&c| c >= 1000));
    }
}
