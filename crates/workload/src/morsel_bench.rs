//! Morsel-scaling benchmark: the chunks of **one** heavy query fanned
//! across the service work-stealing pool at increasing worker counts.
//!
//! This is the intra-query half of the parallelism story (the service
//! driver's worker scaling is the inter-job half): a single
//! filter→join→aggregate pipeline over a synthetic fact table is executed
//! with a [`PoolMorselRunner`] at each requested worker count, and the
//! per-job digest is checked against a monolithic (single-chunk, serial)
//! reference. The digests must be identical at every point — the curve is
//! allowed to move wall time only.

use crate::driver::digest_table;
use cv_common::json::{json, Json};
use cv_common::rng::DetRng;
use cv_common::{Result, Sig128, SimTime};
use cv_data::catalog::DatasetCatalog;
use cv_data::schema::{Field, Schema};
use cv_data::table::Table;
use cv_data::value::{DataType, Value};
use cv_data::viewstore::ViewStore;
use cv_engine::cost::CostModel;
use cv_engine::exec::{execute, ExecContext};
use cv_engine::expr::{col, lit, AggExpr, AggFunc};
use cv_engine::optimizer::{AlwaysGrant, Optimizer, OptimizerConfig, ReuseContext};
use cv_engine::physical::PhysicalPlan;
use cv_engine::plan::JoinKind;
use cv_engine::plan::PlanBuilder;
use cv_engine::udo::UdoRegistry;
use cv_engine::MorselRunner;
use cv_service::PoolMorselRunner;
use std::sync::Arc;
use std::time::Instant;

/// One point on the scaling curve.
#[derive(Clone, Debug)]
pub struct MorselScalingPoint {
    pub workers: usize,
    /// Best-of-N wall seconds for one execution of the query.
    pub wall_seconds: f64,
    pub digest: Sig128,
    /// Chunks each worker stole over the timed runs (warmup excluded). An
    /// all-zero tail means those workers never found work — the diagnostic
    /// for a flat speedup curve (too few chunks to go around).
    pub steals_by_worker: Vec<u64>,
}

/// The full curve plus the monolithic reference it is held to.
#[derive(Clone, Debug)]
pub struct MorselScalingReport {
    pub rows: usize,
    pub chunk_size: usize,
    /// Chunks the probe/stream stages fan out (`ceil(rows / chunk_size)`).
    pub chunks: usize,
    /// Digest of the single-chunk serial execution — the reference every
    /// point must match.
    pub serial_digest: Sig128,
    pub points: Vec<MorselScalingPoint>,
}

impl MorselScalingReport {
    pub fn digests_agree(&self) -> bool {
        self.points.iter().all(|p| p.digest == self.serial_digest)
    }

    /// Speedup of the fastest point at `workers >= min_workers` over the
    /// 1-worker point (`None` when either end of the ratio is missing).
    pub fn speedup_at(&self, min_workers: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.workers == 1)?.wall_seconds;
        let best = self
            .points
            .iter()
            .filter(|p| p.workers >= min_workers)
            .map(|p| p.wall_seconds)
            .fold(f64::INFINITY, f64::min);
        (base > 0.0 && best.is_finite()).then(|| base / best)
    }

    pub fn to_json(&self) -> Json {
        json!({
            "rows": self.rows as u64,
            "chunk_size": self.chunk_size as u64,
            "chunks": self.chunks as u64,
            "digests_agree": self.digests_agree(),
            "points": Json::Arr(
                self.points
                    .iter()
                    .map(|p| {
                        json!({
                            "workers": p.workers as u64,
                            "wall_seconds": p.wall_seconds,
                            "digest_matches_serial": p.digest == self.serial_digest,
                            "steals_by_worker": Json::Arr(
                                p.steals_by_worker.iter().map(|s| Json::from(*s)).collect()
                            ),
                        })
                    })
                    .collect()
            ),
        })
    }
}

const SEGS: [&str; 8] = ["asia", "emea", "amer", "apac", "latam", "anz", "mea", "nordics"];

/// Synthetic fact table: key INT, qty INT (3% null), val FLOAT, seg STR.
fn fact_table(n: usize, dim_n: usize, rng: &mut DetRng) -> Table {
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("qty", DataType::Int),
        Field::new("val", DataType::Float),
        Field::new("seg", DataType::Str),
    ])
    .unwrap()
    .into_ref();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let qty =
                if rng.next_f64() < 0.03 { Value::Null } else { Value::Int(rng.range_i64(0, 100)) };
            vec![
                Value::Int((i % dim_n) as i64),
                qty,
                Value::Float(rng.range_f64(0.0, 1000.0)),
                Value::Str(SEGS[rng.range_usize(0, SEGS.len())].into()),
            ]
        })
        .collect();
    Table::from_rows(schema, &rows).unwrap()
}

fn dim_table(n: usize) -> Table {
    let schema =
        Schema::new(vec![Field::new("d_key", DataType::Int), Field::new("label", DataType::Str)])
            .unwrap()
            .into_ref();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Str(SEGS[i % SEGS.len()].into())])
        .collect();
    Table::from_rows(schema, &rows).unwrap()
}

fn force_hash_joins(p: &mut PhysicalPlan) {
    if let PhysicalPlan::Join { algo, .. } = p {
        *algo = cv_engine::physical::JoinAlgo::Hash;
    }
    for c in p.children_mut() {
        force_hash_joins(c);
    }
}

/// Run the scaling benchmark: `rows`-row fact table, one heavy pipeline,
/// one execution per (worker count), best of `iters` timed runs each.
pub fn run_morsel_scaling(
    seed: u64,
    rows: usize,
    chunk_size: usize,
    worker_counts: &[usize],
    iters: usize,
) -> Result<MorselScalingReport> {
    let chunk_size = chunk_size.max(1);
    let dim_n = (rows / 64).max(8);
    let mut rng = DetRng::seed(seed);
    let mut catalog = DatasetCatalog::new();
    catalog.register("morsel_fact", fact_table(rows, dim_n, &mut rng), SimTime::EPOCH)?;
    catalog.register("morsel_dim", dim_table(dim_n), SimTime::EPOCH)?;
    let views = ViewStore::with_default_ttl();
    let udos = UdoRegistry::with_builtins();
    let model = CostModel::default();

    // Filter → hash-join probe → projection → aggregate: every stage
    // between the join build and the final merge streams chunk-at-a-time.
    let logical = PlanBuilder::scan(&catalog, "morsel_fact")?
        .filter(col("qty").gt(lit(5)))?
        .join(PlanBuilder::scan(&catalog, "morsel_dim")?, &[("key", "d_key")], JoinKind::Inner)?
        .project(vec![
            (col("val").mul(col("qty").cast(DataType::Float)), "x"),
            (col("label"), "label"),
        ])?
        .aggregate(
            vec![(col("label"), "label")],
            vec![AggExpr::new(AggFunc::Sum, col("x"), "sx"), AggExpr::count_star("n")],
        )?
        .build();
    let opt = Optimizer::new(OptimizerConfig::default());
    let stats =
        |name: &str| catalog.get_by_name(name).ok().map(|d| (d.rows() as f64, d.bytes() as f64));
    let mut physical =
        opt.optimize(&logical, &ReuseContext::empty(), &stats, &mut AlwaysGrant)?.physical;
    force_hash_joins(&mut physical);

    let run = |chunk: usize, runner: Arc<dyn MorselRunner>| -> Result<(Table, f64)> {
        let started = Instant::now();
        let mut ctx =
            ExecContext::new(&catalog, &views, &udos, SimTime::EPOCH).with_chunking(chunk, runner);
        let out = execute(&physical, &mut ctx, &model)?;
        Ok((out.table, started.elapsed().as_secs_f64()))
    };

    let (serial_table, _) = run(usize::MAX, Arc::new(cv_engine::SerialRunner))?;
    let serial_digest = digest_table(&serial_table);

    let mut points = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        let pool = Arc::new(PoolMorselRunner::new(workers));
        let runner: Arc<dyn MorselRunner> = pool.clone();
        let mut best = f64::INFINITY;
        let mut digest = serial_digest;
        // Warmup once, then keep the fastest of `iters` timed runs. Steal
        // attribution covers only the timed runs.
        let _ = run(chunk_size, runner.clone())?;
        pool.reset_steal_counts();
        for _ in 0..iters.max(1) {
            let (table, wall) = run(chunk_size, runner.clone())?;
            digest = digest_table(&table);
            best = best.min(wall);
        }
        points.push(MorselScalingPoint {
            workers,
            wall_seconds: best,
            digest,
            steals_by_worker: pool.steal_counts(),
        });
    }

    Ok(MorselScalingReport {
        rows,
        chunk_size,
        chunks: rows.div_ceil(chunk_size),
        serial_digest,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_worker_count_matches_the_serial_digest() {
        let report = run_morsel_scaling(42, 4_000, 256, &[1, 2, 4], 1).unwrap();
        assert!(report.digests_agree(), "morsel scheduling changed results");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.chunks, 16);
        assert!(report.speedup_at(2).is_some());
        for p in &report.points {
            assert_eq!(p.steals_by_worker.len(), p.workers, "one steal counter per worker");
        }
        let j = report.to_json();
        assert_eq!(j.get("digests_agree").and_then(Json::as_bool), Some(true));
        let first = j.get("points").and_then(Json::as_arr).and_then(|a| a.first()).unwrap();
        assert!(first.get("steals_by_worker").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn tiny_chunks_and_huge_chunks_agree() {
        let a = run_morsel_scaling(7, 1_000, 3, &[2], 1).unwrap();
        let b = run_morsel_scaling(7, 1_000, usize::MAX, &[2], 1).unwrap();
        assert_eq!(a.serial_digest, b.serial_digest);
        assert!(a.digests_agree() && b.digests_agree());
        assert_eq!(b.chunks, 1);
    }
}
