//! The multi-day workload driver: replays the paper's deployment window.
//!
//! Each simulated day:
//!
//! 1. **Ingestion** — raw datasets due for regeneration are bulk-updated
//!    (fresh GUIDs; strict signatures of yesterday's views go stale).
//! 2. **Jobs** — due templates are processed in submission order. For each:
//!    the cluster simulator is advanced to the submission instant (sealing
//!    any views whose producing stages completed — *early sealing*), expired
//!    views are evicted, the job is compiled with the insights-service
//!    annotations, optimized (view match + build under the creation lock),
//!    executed, logged into the workload repository, and handed to the
//!    simulator as a stage DAG.
//! 3. **Analysis** — on the configured cadence the trailing repository
//!    window is analyzed, view selection runs (optionally schedule-aware
//!    and/or per-VC) and the new selection is published to the insights
//!    service — the paper's feedback loop.
//! 4. Optional **GDPR** forget-requests rotate an input GUID and purge every
//!    view derived from it (§4).
//!
//! A baseline run (`cloudviews: None`) executes the identical workload with
//! annotations disabled — the pre-production methodology behind Table 1.

use crate::generator::Workload;
use crate::schemas::raw_specs;
use crate::templates::JobTemplate;
use cv_cluster::metrics::{DataPlane, JobRecord, MetricsLedger, RobustnessStats};
use cv_cluster::sim::{ClusterConfig, ClusterSim, JobSpec, SimEvent};
use cv_cluster::stage::build_stages;
use cv_common::hash::{Sig128, StableHasher};
use cv_common::ids::{JobId, VcId};
use cv_common::json::{Json, ToJson};
use cv_common::rng::DetRng;
use cv_common::{json, FaultPlan, Result, SimDay, SimDuration, SimTime};
use cv_core::controls::Controls;
use cv_core::insights::{InsightsService, UsageEvent, ViewInfo};
use cv_core::repository::{JobMeta, SubexpressionRepo};
use cv_core::selection::{
    apply_schedule_awareness, select_per_vc, ExactSelector, GreedySelector,
    LabelPropagationSelector, SelectionConstraints, ViewSelector,
};
use cv_data::store_api::StoreIoStats;
use cv_data::value::Value;
use cv_data::viewstore::{MaterializedView, ViewStore, ViewStoreStats};
use cv_engine::engine::QueryEngine;
use cv_engine::exec::PendingView;
use cv_engine::optimizer::{AlwaysGrant, OptimizerConfig, ReuseContext};
use cv_engine::plan::LogicalPlan;
use cv_engine::signature::{plan_signature, template_signature, SigMode};
use cv_ivm::{IvmEngine, IvmStats, Maintain};
use cv_service::{OpStateCache, TaggedOpStates};
use cv_store::{DurableStoreOptions, DurableViewStore};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Which selection algorithm the feedback loop runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectorKind {
    LabelPropagation,
    Greedy,
    Exact,
}

/// CloudViews configuration for an enabled run.
#[derive(Clone, Debug)]
pub struct SelectionKnobs {
    pub selector: SelectorKind,
    pub storage_budget_bytes: u64,
    pub max_views: Option<usize>,
    pub min_frequency: u64,
    pub schedule_aware: bool,
    pub per_vc: bool,
    /// Re-run workload analysis every N days.
    pub analysis_every_days: u32,
    /// Trailing window the analysis looks at.
    pub analysis_window_days: u32,
}

impl Default for SelectionKnobs {
    fn default() -> Self {
        SelectionKnobs {
            selector: SelectorKind::LabelPropagation,
            storage_budget_bytes: 256 * 1024 * 1024,
            max_views: None,
            min_frequency: 2,
            schedule_aware: true,
            per_vc: false,
            analysis_every_days: 1,
            analysis_window_days: 7,
        }
    }
}

/// Where materialized views live for the run.
#[derive(Clone, Debug, Default)]
pub enum StoreBackend {
    /// The in-memory [`ViewStore`] owned by the engine (the default; no
    /// durability, no page cache, no crash surface).
    #[default]
    Memory,
    /// The disk-backed [`DurableViewStore`]: WAL + pages + checkpoints
    /// under the given directory. Survives (simulated and real) restarts.
    Durable(DurableStoreConfig),
}

/// Configuration of the durable backend.
#[derive(Clone, Debug)]
pub struct DurableStoreConfig {
    /// Store directory. Reopening an existing directory recovers the views
    /// a previous run left behind (restart-and-resume).
    pub dir: std::path::PathBuf,
    /// Buffer-pool capacity in 8 KiB pages.
    pub cache_pages: usize,
    /// Checkpoint after this many WAL records.
    pub checkpoint_every: u64,
}

impl DurableStoreConfig {
    pub fn new(dir: impl Into<std::path::PathBuf>) -> DurableStoreConfig {
        let defaults = DurableStoreOptions::default();
        DurableStoreConfig {
            dir: dir.into(),
            cache_pages: defaults.cache_pages,
            checkpoint_every: defaults.checkpoint_every,
        }
    }

    fn options(&self) -> DurableStoreOptions {
        DurableStoreOptions {
            cache_pages: self.cache_pages,
            checkpoint_every: self.checkpoint_every,
        }
    }
}

/// How the driver treats daily regeneration and recurring views.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IvmMode {
    /// Plain bulk regeneration: no change feeds, no maintenance (the
    /// paper's deployment — every view dies with its input GUIDs).
    #[default]
    Off,
    /// Delta-producing ingestion (append-mostly facts, churned dimensions,
    /// diffed cooked outputs) but every job still executes in full — the
    /// control leg for digest-parity comparisons against `Maintain`.
    Ingest,
    /// Delta ingestion plus incremental maintenance: certified recurring
    /// aggregate views are advanced from yesterday's state and re-published
    /// under today's strict signature instead of being rebuilt.
    Maintain,
}

/// Full driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    pub days: u32,
    /// `Some(..)` enables the CloudViews feedback loop.
    pub cloudviews: Option<SelectionKnobs>,
    pub cluster: ClusterConfig,
    pub controls: Controls,
    pub view_ttl: SimDuration,
    pub optimizer: OptimizerConfig,
    /// Issue a GDPR forget-request every N days (None = never).
    pub gdpr_every_days: Option<u32>,
    /// Deterministic fault-injection plan (default: no faults — a pure
    /// overlay that leaves every run bit-identical).
    pub faults: FaultPlan,
    /// View-store backend (in-memory by default).
    pub store: StoreBackend,
    /// Incremental view maintenance mode (off by default).
    pub ivm: IvmMode,
    /// Rows per execution chunk (morsel). Results are byte-identical at
    /// every value; this only moves the streaming granularity.
    pub chunk_size: usize,
    /// Resident-bytes budget for the operator-state cache (hash-join
    /// builds, aggregate states, sort runs keyed by input signature — keys
    /// embed the scanned GUIDs, so rotated inputs self-invalidate). 0
    /// disables it. Results are byte-identical at every budget.
    pub op_state_budget_bytes: u64,
}

impl DriverConfig {
    pub fn baseline(days: u32) -> DriverConfig {
        DriverConfig {
            days,
            cloudviews: None,
            cluster: ClusterConfig::default(),
            controls: Controls::opt_out(),
            view_ttl: SimDuration::from_days(7.0),
            optimizer: OptimizerConfig::default(),
            gdpr_every_days: None,
            faults: FaultPlan::none(),
            store: StoreBackend::Memory,
            ivm: IvmMode::Off,
            chunk_size: cv_data::chunk::DEFAULT_CHUNK_SIZE,
            op_state_budget_bytes: 0,
        }
    }

    pub fn enabled(days: u32) -> DriverConfig {
        DriverConfig { cloudviews: Some(SelectionKnobs::default()), ..DriverConfig::baseline(days) }
    }
}

/// Everything a driver run produces.
#[derive(Debug)]
pub struct DriverOutcome {
    pub ledger: MetricsLedger,
    pub repo: SubexpressionRepo,
    pub usage: Vec<UsageEvent>,
    pub view_store_stats: ViewStoreStats,
    /// Order-insensitive digest of each job's result, for cross-run
    /// correctness checks (reuse must never change results).
    pub result_digests: BTreeMap<JobId, Sig128>,
    /// Jobs that failed to compile/execute (should be zero).
    pub failed_jobs: u64,
    /// (analysis day, #views selected) per analysis run.
    pub selection_history: Vec<(SimDay, usize)>,
    /// Views purged by GDPR input rotations.
    pub gdpr_purged_views: u64,
    /// Fault-layer roll-up: every degradation the run absorbed.
    pub robustness: RobustnessStats,
    /// Durable-store IO counters (`None` for in-memory runs).
    pub store_io: Option<StoreIoStats>,
    /// Incremental-maintenance counters (`None` unless `ivm: Maintain`).
    pub ivm: Option<IvmStats>,
    /// Operator-state cache counters (`None` when the cache is disabled).
    pub op_state: Option<cv_service::OpStateCacheStats>,
}

impl DriverOutcome {
    /// The run's JSON report (the shape `BENCH_*.json` trajectories track):
    /// headline totals plus the robustness counters.
    pub fn report_json(&self) -> Json {
        let totals = self.ledger.totals();
        json!({
            "jobs": totals.jobs,
            "failed_jobs": self.failed_jobs,
            "latency_seconds": totals.latency_seconds,
            "processing_seconds": totals.processing_seconds,
            "bonus_seconds": totals.bonus_seconds,
            "containers": totals.containers,
            "input_bytes": totals.input_bytes,
            "views_built": totals.views_built,
            "views_reused": totals.views_reused,
            "views_reused_exact": totals.views_reused - totals.views_reused_semantic,
            "views_reused_semantic": totals.views_reused_semantic,
            "robustness": self.robustness.to_json(),
            "store": match &self.store_io {
                Some(io) => json!({
                    "page_cache_hits": io.page_cache_hits,
                    "page_cache_misses": io.page_cache_misses,
                    "page_cache_hit_rate": io.page_cache_hit_rate(),
                    "pages_evicted": io.pages_evicted,
                    "wal_fsyncs": io.wal_fsyncs,
                    "wal_records_written": io.wal_records_written,
                    "wal_records_replayed": io.wal_records_replayed,
                    "wal_records_skipped": io.wal_records_skipped,
                    "recoveries": io.recoveries,
                    "checkpoints": io.checkpoints,
                    "bytes_written_durably": io.bytes_written_durably,
                }),
                None => Json::Null,
            },
            "ivm": match &self.ivm {
                Some(s) => ivm_stats_json(s),
                None => Json::Null,
            },
        })
    }
}

/// JSON shape for the IVM counters (shared by the driver report and the
/// `cv-analyze --ivm` harness).
pub fn ivm_stats_json(s: &IvmStats) -> Json {
    let mut vetoes = cv_common::json::JsonMap::new();
    for (code, n) in &s.vetoes {
        vetoes.insert(*code, *n);
    }
    let mut reasons = cv_common::json::JsonMap::new();
    for (label, n) in &s.rebuild_reasons {
        reasons.insert(*label, *n);
    }
    json!({
        "maintained": s.maintained,
        "rebuilt": s.rebuilt,
        "refused": s.refused,
        "vetoes_by_code": Json::Obj(vetoes),
        "rebuild_reasons": Json::Obj(reasons),
        "rows_maintained": s.rows_maintained,
        "rows_bootstrap": s.rows_bootstrap,
        "rows_rebuild_baseline": s.rows_rebuild_baseline,
    })
}

struct PendingSeal {
    view: PendingView,
    job: JobId,
    vc: VcId,
    /// The view's defining (normalized, view-free) logical plan, captured
    /// at build time so the sealed view can be served for semantic
    /// matching, not just exact-signature lookup.
    plan: Option<std::sync::Arc<cv_engine::plan::LogicalPlan>>,
}

/// Run a workload under the given configuration.
pub fn run_workload(workload: &Workload, cfg: &DriverConfig) -> Result<DriverOutcome> {
    let enabled = cfg.cloudviews.is_some();
    let mut engine = QueryEngine::with_config(cfg.optimizer.clone());
    engine.chunk_size = cfg.chunk_size.max(1);
    let analyzer = std::sync::Arc::new(cv_analyzer::Analyzer::new(&cfg.optimizer));
    // The analyzer is always the containment prover: semantic (widened)
    // view matches only happen when it certifies them.
    engine.optimizer.set_prover(analyzer.clone());
    if cfg.optimizer.verify_plans {
        // Audit every optimized plan; a corrupted rewrite fails the job
        // with a CV0xx diagnostic instead of sealing bad results.
        engine.optimizer.set_verifier(analyzer);
    }
    engine.views = ViewStore::new(cfg.view_ttl);
    engine.views.set_fault_plan(cfg.faults.clone());
    // Durable backend: views live on disk behind a WAL + page cache; the
    // engine's own store stays empty. Reopening an existing directory
    // recovers whatever a previous run (or a crashed run) left behind.
    let durable: Option<DurableViewStore> = match &cfg.store {
        StoreBackend::Memory => None,
        StoreBackend::Durable(d) => {
            let store = DurableViewStore::open(&d.dir, cfg.view_ttl, d.options())?;
            store.set_fault_plan(cfg.faults.clone());
            Some(store)
        }
    };
    let mut insights = InsightsService::new(cfg.controls.clone());
    let mut sim = ClusterSim::new(cfg.cluster.clone());
    sim.set_fault_plan(cfg.faults.clone());
    let mut repo = SubexpressionRepo::new();
    let mut data_plane: HashMap<JobId, DataPlane> = HashMap::new();
    let mut pending_seals: HashMap<Sig128, PendingSeal> = HashMap::new();
    let mut result_digests = BTreeMap::new();
    let mut selection_history = Vec::new();
    let mut failed_jobs = 0u64;
    let mut gdpr_purged_views = 0u64;
    let mut next_job = 0u64;
    let mut robustness = RobustnessStats::default();
    let ivm_ingest = cfg.ivm != IvmMode::Off;
    let mut ivm: Option<IvmEngine> =
        (cfg.ivm == IvmMode::Maintain).then(|| IvmEngine::new(&cfg.optimizer));
    // Operator-state cache: recurring jobs on later days skip rebuilding
    // breaker state whose inputs didn't rotate.
    let op_states: Option<Arc<OpStateCache>> = (cfg.op_state_budget_bytes > 0)
        .then(|| Arc::new(OpStateCache::with_budget(cfg.op_state_budget_bytes)));
    if let Some(cache) = &op_states {
        engine.optimizer.set_warm_states(cache.clone());
    }

    let specs = raw_specs();

    for day_idx in 0..cfg.days {
        let day = SimDay(day_idx);
        let day_start = day.start();
        process_sim_events(
            &mut sim,
            day_start,
            &mut pending_seals,
            &mut engine,
            &mut insights,
            cfg.view_ttl,
            durable.as_ref(),
            &mut robustness,
        )?;

        // 1. Ingestion: bulk-regenerate due raw datasets.
        for spec in &specs {
            if day_idx % spec.update_every_days != 0 {
                continue;
            }
            let mut rng = data_rng(workload.config.seed, spec.name, day);
            match engine.catalog.id_of(spec.name) {
                Some(id) if ivm_ingest => {
                    // Delta-producing regeneration: facts append the day's
                    // rows, dimensions churn in place, and the catalog
                    // records the signed change feed for maintenance.
                    let prev = engine.catalog.get(id)?.data().clone();
                    let (table, delta) =
                        spec.generate_delta(&mut rng, workload.config.scale, day, &prev);
                    engine.catalog.bulk_update_delta(id, table, delta, day_start)?;
                }
                Some(id) => {
                    let table = spec.generate(&mut rng, workload.config.scale, day);
                    engine.catalog.bulk_update(id, table, day_start)?;
                }
                None => {
                    let table = spec.generate(&mut rng, workload.config.scale, day);
                    engine.catalog.register(spec.name, table, day_start)?;
                }
            }
        }

        // Optional GDPR forget-request (rotates the `users` GUID).
        if let Some(every) = cfg.gdpr_every_days {
            if day_idx > 0 && day_idx % every == 0 {
                gdpr_purged_views += apply_gdpr(
                    &mut engine,
                    &mut insights,
                    op_states.as_deref(),
                    workload.config.seed,
                    day,
                    durable.as_ref(),
                    &mut robustness,
                )? as u64;
            }
        }

        // 2. Jobs, in submission order.
        let mut due: Vec<&JobTemplate> =
            workload.templates.iter().filter(|t| t.due_on(day)).collect();
        due.sort_by(|a, b| {
            a.submit_time(day)
                .seconds()
                .total_cmp(&b.submit_time(day).seconds())
                .then(a.id.cmp(&b.id))
        });

        for template in due {
            let submit = template.submit_time(day);
            process_sim_events(
                &mut sim,
                submit,
                &mut pending_seals,
                &mut engine,
                &mut insights,
                cfg.view_ttl,
                durable.as_ref(),
                &mut robustness,
            )?;
            match &durable {
                Some(s) => {
                    with_crash_retry(s, &mut robustness, |s| s.evict_expired(submit))?;
                }
                None => {
                    engine.views.evict_expired(submit);
                }
            }
            insights.expire(submit);

            let job = JobId(next_job);
            next_job += 1;
            let meta = JobMeta {
                job,
                template: template.id,
                pipeline: template.pipeline,
                vc: template.vc,
                user: template.user,
                submit,
            };

            // Incremental maintenance: a tracked recurring template whose
            // inputs changed only through intact delta chains is advanced
            // from yesterday's state instead of re-executed. Fallbacks
            // (broken chain, plan drift, costed out) drop through to the
            // normal execution path below and re-track afterwards.
            if let Some(iv) = ivm.as_mut() {
                match try_ivm_maintain(
                    iv,
                    &mut engine,
                    &mut insights,
                    template,
                    day,
                    job,
                    enabled,
                    cfg.view_ttl,
                    durable.as_ref(),
                    &mut robustness,
                ) {
                    Ok(Some(digest)) => {
                        result_digests.insert(job, digest);
                        continue;
                    }
                    Ok(None) => {}
                    Err(_) => {
                        failed_jobs += 1;
                        continue;
                    }
                }
            }

            // Metadata repository outage: the annotation service is
            // unreachable, so the optimizer degrades to a baseline
            // no-reuse plan for this job (graceful degradation — the job
            // must still run, just without CloudViews).
            let metadata_down = enabled && cfg.faults.metadata_down(submit);
            if metadata_down {
                robustness.metadata_outage_jobs += 1;
            }

            // Per-job tag on the shared cache so hits against another
            // job's published state count as cross-job reuse.
            if let Some(cache) = &op_states {
                engine.op_states = Some(Arc::new(TaggedOpStates::new(cache.clone(), job.0)));
            }
            let run = run_one_job(
                &mut engine,
                &mut insights,
                template,
                day,
                meta,
                enabled && !metadata_down,
                durable.as_ref(),
                ivm_ingest,
            );
            match run {
                Ok(one) => {
                    repo.log_job(meta, &one.subexprs, Some(&one.profiles));
                    result_digests.insert(job, one.digest);
                    // Start (or resume) maintaining this template's view:
                    // the CV07x gate refuses non-maintainable plans and the
                    // refusal is counted, exactly like CV06x vetoes.
                    if let Some(iv) = ivm.as_mut() {
                        ivm_track(iv, &engine, template, day);
                    }
                    // Any read-side fault quarantines the signature in both
                    // the store and the serving index for the rest of the
                    // run: the engine recomputes instead of retrying a bad
                    // artifact.
                    for sig in &one.quarantined_sigs {
                        match &durable {
                            Some(s) => {
                                with_crash_retry(s, &mut robustness, |s| s.quarantine(*sig))?;
                            }
                            None => {
                                engine.views.quarantine(*sig);
                            }
                        }
                        insights.quarantine(*sig);
                    }
                    // Quarantine coupling: cached breaker states derived
                    // from a quarantined view are dropped too.
                    if let Some(cache) = &op_states {
                        if !one.quarantined_sigs.is_empty() {
                            cache.purge_sigs(&one.quarantined_sigs);
                        }
                    }
                    robustness.fallbacks_recompute += one.data_plane.fallbacks_recompute;
                    robustness.view_read_failures += one.view_read_failures;
                    robustness.view_corruptions += one.view_corruptions;
                    robustness.view_expiry_races += one.view_expiry_races;
                    data_plane.insert(job, one.data_plane);
                    let mut built_plans: HashMap<_, _> = one.built_plans.into_iter().collect();
                    for pv in one.pending_views {
                        let plan = built_plans.remove(&pv.sig);
                        pending_seals
                            .insert(pv.sig, PendingSeal { view: pv, job, vc: template.vc, plan });
                    }
                    sim.submit(JobSpec {
                        job,
                        vc: template.vc,
                        template: template.id,
                        submit,
                        stages: one.stages,
                    })?;
                }
                Err(_) => {
                    failed_jobs += 1;
                }
            }
        }

        // 3. Workload analysis + selection publish.
        if let Some(knobs) = &cfg.cloudviews {
            if (day_idx + 1) % knobs.analysis_every_days == 0 {
                let n = run_analysis(&repo, &mut insights, knobs, day, &cfg.cluster);
                selection_history.push((day, n));
            }
        }
    }

    // Drain the simulator.
    let final_events = sim.run_to_completion();
    apply_seal_events(
        &final_events,
        &mut pending_seals,
        &mut engine,
        &mut insights,
        cfg.view_ttl,
        durable.as_ref(),
        &mut robustness,
    )?;

    // Assemble the ledger.
    let mut ledger = MetricsLedger::new();
    for result in sim.results() {
        robustness.stage_retries += result.stage_retries as u64;
        robustness.preemptions += result.preemptions as u64;
        robustness.backoff_seconds += result.backoff_seconds;
        robustness.job_restarts += result.restarts as u64;
        let data = data_plane.remove(&result.job).unwrap_or_default();
        ledger.add(JobRecord { result: result.clone(), data });
    }
    // Final checkpoint: a later run reopening the directory recovers from
    // the checkpoint instead of a long WAL replay.
    let store_io = match &durable {
        Some(s) => {
            with_crash_retry(s, &mut robustness, |s| s.checkpoint_now())?;
            let io = s.io_stats();
            robustness.store_recoveries += io.recoveries;
            robustness.wal_records_replayed += io.wal_records_replayed;
            robustness.wal_records_skipped += io.wal_records_skipped;
            Some(io)
        }
        None => None,
    };
    let store_stats = match &durable {
        Some(s) => s.stats(),
        None => engine.views.stats(),
    };
    robustness.view_write_failures = store_stats.write_failures;
    robustness.views_quarantined = store_stats.views_quarantined;

    Ok(DriverOutcome {
        ledger,
        repo,
        usage: insights.usage_log().to_vec(),
        view_store_stats: store_stats,
        result_digests,
        failed_jobs,
        selection_history,
        gdpr_purged_views,
        robustness,
        store_io,
        ivm: ivm.map(|iv| iv.stats),
        op_state: op_states.map(|c| c.stats()),
    })
}

/// Attempt to maintain a tracked view for `template`. Returns the result
/// digest when the view was maintained (the job is done without
/// executing); `None` falls through to normal execution.
#[allow(clippy::too_many_arguments)]
fn try_ivm_maintain(
    ivm: &mut IvmEngine,
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    template: &JobTemplate,
    day: SimDay,
    job: JobId,
    enabled: bool,
    view_ttl: SimDuration,
    durable: Option<&DurableViewStore>,
    robustness: &mut RobustnessStats,
) -> Result<Option<Sig128>> {
    let Ok(plan) = template.build_plan(engine, day) else {
        return Ok(None);
    };
    let Some(tsig) = plan_signature(&plan, &engine.optimizer.cfg.sig, SigMode::Recurring) else {
        return Ok(None);
    };
    if !ivm.is_tracked(tsig) {
        return Ok(None);
    }
    let mv = match ivm.maintain(tsig, &plan, &engine.catalog) {
        Maintain::Maintained(mv) => mv,
        Maintain::NotTracked | Maintain::Rebuild { .. } => return Ok(None),
    };
    let submit = template.submit_time(day);
    // A maintained cooking job still publishes its output dataset — as a
    // diffed delta update, so downstream chains stay intact.
    if let Some(output) = template.output_dataset() {
        match engine.catalog.id_of(output) {
            Some(id) => {
                engine.catalog.bulk_update_diff(id, mv.table.clone(), submit)?;
            }
            None => {
                engine.catalog.register(output, mv.table.clone(), submit)?;
            }
        }
    }
    // Re-publish under today's strict signature so exact and containment
    // matching serve the maintained view exactly like a rebuilt one.
    if enabled {
        publish_maintained(
            engine,
            insights,
            &mv,
            job,
            template.vc,
            submit,
            view_ttl,
            durable,
            robustness,
        )?;
    }
    Ok(Some(digest_table(&mv.table)))
}

/// Track (or re-track after a fallback) the template's view. Refusals are
/// recorded in the engine's veto counters; failures to bootstrap are
/// silently skipped — the template simply stays untracked.
fn ivm_track(ivm: &mut IvmEngine, engine: &QueryEngine, template: &JobTemplate, day: SimDay) {
    let Ok(plan) = template.build_plan(engine, day) else { return };
    let Some(tsig) = plan_signature(&plan, &engine.optimizer.cfg.sig, SigMode::Recurring) else {
        return;
    };
    if ivm.is_tracked(tsig) {
        return;
    }
    let _ = ivm.track(tsig, &plan, &engine.catalog);
}

/// Seal a maintained view into the active store and advertise it to the
/// insights service, mirroring the sealed-view path of an executed job.
#[allow(clippy::too_many_arguments)]
fn publish_maintained(
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    mv: &cv_ivm::MaintainedView,
    job: JobId,
    vc: VcId,
    submit: SimTime,
    view_ttl: SimDuration,
    durable: Option<&DurableViewStore>,
    robustness: &mut RobustnessStats,
) -> Result<()> {
    let sig_cfg = engine.optimizer.cfg.sig.clone();
    let (Some(strict), Some(recurring)) = (
        plan_signature(&mv.plan, &sig_cfg, SigMode::Strict),
        plan_signature(&mv.plan, &sig_cfg, SigMode::Recurring),
    ) else {
        return Ok(());
    };
    let pv = PendingView {
        sig: strict,
        recurring_sig: recurring,
        input_guids: scan_guids(&mv.plan),
        schema: mv.table.schema().clone(),
        data: mv.table.clone(),
        production_work: mv.rows_touched as f64,
        write_work: 0.0,
    };
    let sealed = match durable {
        Some(store) => {
            seal_views_durable(store, std::slice::from_ref(&pv), job, vc, submit, robustness)?
        }
        None => engine.seal_views(std::slice::from_ref(&pv), job, vc, submit)?,
    };
    if sealed > 0 {
        insights.report_sealed(
            ViewInfo {
                strict,
                recurring,
                rows: mv.table.num_rows() as u64,
                bytes: mv.table.byte_size(),
                sealed_at: submit,
                expires: submit + view_ttl,
                vc,
                template: template_signature(&mv.plan, &sig_cfg),
                plan: Some(mv.plan.clone()),
            },
            job,
        );
    }
    Ok(())
}

fn scan_guids(plan: &std::sync::Arc<LogicalPlan>) -> Vec<cv_common::ids::VersionGuid> {
    fn go(p: &std::sync::Arc<LogicalPlan>, out: &mut Vec<cv_common::ids::VersionGuid>) {
        if let LogicalPlan::Scan { guid, .. } = &**p {
            out.push(*guid);
        }
        for c in p.children() {
            go(c, out);
        }
    }
    let mut v = Vec::new();
    go(plan, &mut v);
    v
}

/// Run a durable-store mutation, absorbing one simulated crash: on
/// [`CvError::Crash`] the store is recovered in place (WAL + checkpoint
/// replay) and the operation retried once. Replay is idempotent, so a
/// retried mutation that already committed before the crash is a no-op.
fn with_crash_retry<T>(
    store: &DurableViewStore,
    robustness: &mut RobustnessStats,
    op: impl Fn(&DurableViewStore) -> Result<T>,
) -> Result<T> {
    match op(store) {
        Err(e) if e.is_crash() => {
            robustness.store_crashes += 1;
            store.recover_in_place()?;
            op(store)
        }
        other => other,
    }
}

/// Seal pending views into the durable store — the disk-backed counterpart
/// of [`QueryEngine::seal_views`], with the same absorb-write-faults
/// contract plus crash-recovery retry.
fn seal_views_durable(
    store: &DurableViewStore,
    pending: &[PendingView],
    job: JobId,
    vc: VcId,
    now: SimTime,
    robustness: &mut RobustnessStats,
) -> Result<usize> {
    let mut sealed = 0;
    for pv in pending {
        let insert = with_crash_retry(store, robustness, |s| {
            s.insert(MaterializedView {
                strict_sig: pv.sig,
                recurring_sig: pv.recurring_sig,
                schema: pv.schema.clone(),
                data: pv.data.clone(),
                rows: 0,
                bytes: 0,
                created: now,
                expires: now, // recomputed by the store from its TTL
                creator_job: job,
                vc,
                input_guids: pv.input_guids.clone(),
                observed_work: pv.production_work,
                checksum: 0, // recomputed by the store
            })
        });
        match insert {
            // The store silently drops quarantined signatures; only count
            // views that actually landed.
            Ok(()) if store.contains(pv.sig) => sealed += 1,
            Ok(()) => {}
            Err(e) if e.is_fault() => {}
            Err(e) => return Err(e),
        }
    }
    Ok(sealed)
}

/// Deterministic per-(dataset, day) data stream, independent of everything
/// else — baseline and enabled runs see byte-identical inputs.
pub(crate) fn data_rng(seed: u64, dataset: &str, day: SimDay) -> DetRng {
    let mut h = StableHasher::with_domain("workload-data");
    h.write_u64(seed);
    h.write_str(dataset);
    h.write_u64(day.index() as u64);
    DetRng::seed(h.finish64())
}

struct OneJob {
    subexprs: Vec<cv_engine::signature::SubexprInfo>,
    profiles: Vec<cv_engine::exec::OpProfile>,
    pending_views: Vec<PendingView>,
    built_plans: Vec<(Sig128, std::sync::Arc<cv_engine::plan::LogicalPlan>)>,
    stages: cv_cluster::stage::StageGraph,
    data_plane: DataPlane,
    digest: Sig128,
    quarantined_sigs: Vec<Sig128>,
    view_read_failures: u64,
    view_corruptions: u64,
    view_expiry_races: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_one_job(
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    template: &JobTemplate,
    day: SimDay,
    meta: JobMeta,
    enabled: bool,
    durable: Option<&DurableViewStore>,
    ivm_ingest: bool,
) -> Result<OneJob> {
    let plan = template.build_plan(engine, day)?;
    let subexprs = engine.subexpressions(&plan)?;
    let mut reuse = if enabled {
        insights.annotate(meta.vc, meta.job, &subexprs, meta.submit).0
    } else {
        ReuseContext::empty()
    };
    // Residency-aware costing: views whose pages are not in the buffer
    // pool pay the cold-read multiplier in the optimizer's reuse-vs-
    // recompute comparison.
    if let Some(store) = durable {
        for (sig, meta) in reuse.available.iter_mut() {
            meta.cold = !store.is_resident(*sig);
        }
    }

    let compiled = if enabled {
        let mut locker = insights.locker();
        engine.optimize(&plan, &reuse, &mut locker)?
    } else {
        engine.optimize(&plan, &reuse, &mut AlwaysGrant)?
    };

    let exec_result = match durable {
        Some(store) => engine.execute_with(&compiled.outcome.physical, store, meta.submit),
        None => engine.execute(&compiled.outcome.physical, meta.submit),
    };
    let exec = match exec_result {
        Ok(e) => e,
        Err(e) => {
            // Release any creation locks this job acquired before bailing.
            for sig in &compiled.outcome.built_views {
                insights.release_lock(*sig);
            }
            return Err(e);
        }
    };

    if enabled && !compiled.outcome.matched_views.is_empty() {
        insights.record_reuse(&compiled.outcome.matched_views, meta.job, meta.submit);
    }

    // Cooking jobs publish their output as a shared dataset. Under delta
    // ingestion the update is diffed so views over cooked outputs keep an
    // intact delta chain.
    if let Some(output) = template.output_dataset() {
        match engine.catalog.id_of(output) {
            Some(id) if ivm_ingest => {
                engine.catalog.bulk_update_diff(id, exec.table.clone(), meta.submit)?;
            }
            Some(id) => {
                engine.catalog.bulk_update(id, exec.table.clone(), meta.submit)?;
            }
            None => {
                engine.catalog.register(output, exec.table.clone(), meta.submit)?;
            }
        }
    }

    let stages = build_stages(&compiled.outcome.physical, &exec.metrics.op_profiles)?;
    let data_plane = DataPlane::from_exec(
        &exec.metrics,
        compiled.outcome.matched_views.len(),
        compiled.outcome.compensated_views.len(),
        compiled.outcome.built_views.len(),
    );
    let digest = digest_table(&exec.table);

    Ok(OneJob {
        subexprs,
        profiles: exec.metrics.op_profiles.clone(),
        pending_views: exec.pending_views,
        built_plans: compiled.outcome.built_plans,
        stages,
        data_plane,
        digest,
        quarantined_sigs: exec.metrics.quarantined_sigs.clone(),
        view_read_failures: exec.metrics.view_read_failures,
        view_corruptions: exec.metrics.view_corruptions,
        view_expiry_races: exec.metrics.view_expiry_races,
    })
}

pub(crate) fn digest_table(t: &cv_data::table::Table) -> Sig128 {
    let mut h = StableHasher::with_domain("result-digest");
    for row in t.canonical_rows() {
        h.write_str(&row);
    }
    h.finish128()
}

#[allow(clippy::too_many_arguments)]
fn process_sim_events(
    sim: &mut ClusterSim,
    until: SimTime,
    pending: &mut HashMap<Sig128, PendingSeal>,
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    ttl: SimDuration,
    durable: Option<&DurableViewStore>,
    robustness: &mut RobustnessStats,
) -> Result<()> {
    let events = sim.run_until(until);
    apply_seal_events(&events, pending, engine, insights, ttl, durable, robustness)
}

#[allow(clippy::too_many_arguments)]
fn apply_seal_events(
    events: &[SimEvent],
    pending: &mut HashMap<Sig128, PendingSeal>,
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    ttl: SimDuration,
    durable: Option<&DurableViewStore>,
    robustness: &mut RobustnessStats,
) -> Result<()> {
    for ev in events {
        if let SimEvent::ViewSealed { sig, at, .. } = ev {
            let Some(seal) = pending.remove(sig) else { continue };
            let sealed = match durable {
                Some(store) => seal_views_durable(
                    store,
                    std::slice::from_ref(&seal.view),
                    seal.job,
                    seal.vc,
                    *at,
                    robustness,
                )?,
                None => {
                    engine.seal_views(std::slice::from_ref(&seal.view), seal.job, seal.vc, *at)?
                }
            };
            if sealed == 0 {
                // Injected write failure: the half-materialized view was
                // discarded and must never be advertised — release the
                // creation lock so a later job can rebuild it.
                insights.release_lock(seal.view.sig);
                continue;
            }
            let template = seal.plan.as_ref().and_then(|p| {
                cv_engine::signature::template_signature(p, &engine.optimizer.cfg.sig)
            });
            insights.report_sealed(
                ViewInfo {
                    strict: seal.view.sig,
                    recurring: seal.view.recurring_sig,
                    rows: seal.view.data.num_rows() as u64,
                    bytes: seal.view.data.byte_size(),
                    sealed_at: *at,
                    expires: *at + ttl,
                    vc: seal.vc,
                    template,
                    plan: seal.plan.clone(),
                },
                seal.job,
            );
        }
    }
    Ok(())
}

pub(crate) fn run_analysis(
    repo: &SubexpressionRepo,
    insights: &mut InsightsService,
    knobs: &SelectionKnobs,
    day: SimDay,
    cluster: &ClusterConfig,
) -> usize {
    let from = SimDay(day.index().saturating_sub(knobs.analysis_window_days - 1));
    let window = repo.window(from, SimDay(day.index() + 1));
    let mut problem = cv_core::build_problem(&window, knobs.min_frequency);
    if knobs.schedule_aware {
        problem = apply_schedule_awareness(
            &problem,
            cluster.default_vc_guaranteed as f64 * cluster.container_speed,
            SimDuration::from_secs(60.0),
        );
    }
    let constraints = SelectionConstraints {
        storage_budget_bytes: knobs.storage_budget_bytes,
        max_views: knobs.max_views,
        min_utility: 0.0,
    };
    let selector: Box<dyn ViewSelector> = match knobs.selector {
        SelectorKind::LabelPropagation => Box::new(LabelPropagationSelector::default()),
        SelectorKind::Greedy => Box::new(GreedySelector),
        SelectorKind::Exact => Box::new(ExactSelector { max_candidates: 24 }),
    };
    insights.reset_selection();
    if knobs.per_vc {
        let (_, per_vc) = select_per_vc(selector.as_ref(), &problem, &HashMap::new(), &constraints);
        let mut total = 0;
        for (vc, sel) in per_vc {
            total += sel.len();
            insights.publish_selection(Some(vc), sel.chosen);
        }
        total
    } else {
        let selection = selector.select(&problem, &constraints);
        let n = selection.len();
        insights.publish_selection(None, selection.chosen);
        n
    }
}

/// Apply one GDPR forget-request: pick a deterministic user id, delete it
/// from `users`, rotate the GUID, purge derived views (§4).
#[allow(clippy::too_many_arguments)]
fn apply_gdpr(
    engine: &mut QueryEngine,
    insights: &mut InsightsService,
    op_states: Option<&OpStateCache>,
    seed: u64,
    day: SimDay,
    durable: Option<&DurableViewStore>,
    robustness: &mut RobustnessStats,
) -> Result<usize> {
    let Some(id) = engine.catalog.id_of("users") else {
        return Ok(0);
    };
    let mut rng = data_rng(seed, "gdpr", day);
    let victim = rng.range_i64(0, 40);
    let outcome = engine.catalog.gdpr_forget(id, "u_id", &Value::Int(victim), day.start())?;
    // Purge every view derived from the retired version.
    let (stale, purged): (Vec<Sig128>, usize) = match durable {
        Some(store) => {
            let stale = store.sigs_with_input(outcome.old_guid);
            let purged = with_crash_retry(store, robustness, |s| {
                s.purge_input(outcome.old_guid, day.start())
            })?;
            (stale, purged)
        }
        None => {
            let stale: Vec<Sig128> = engine
                .views
                .iter()
                .filter(|v| v.input_guids.contains(&outcome.old_guid))
                .map(|v| v.strict_sig)
                .collect();
            (stale, engine.views.purge_input(outcome.old_guid, day.start()))
        }
    };
    insights.purge_sigs(&stale);
    // Operator-state coupling: rotated guids already invalidate the keys;
    // eager purge drops any cached bytes derived from the forgotten rows.
    if let Some(cache) = op_states {
        cache.purge_input("users");
        cache.purge_sigs(&stale);
    }
    Ok(purged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_workload, WorkloadConfig};

    fn small_workload() -> Workload {
        generate_workload(WorkloadConfig {
            scale: 0.05,
            n_analytics: 12,
            ..WorkloadConfig::default()
        })
    }

    fn quick_cluster() -> ClusterConfig {
        ClusterConfig { total_containers: 200, ..ClusterConfig::default() }
    }

    /// Workload big enough that dimension tables clear the nested-loop
    /// threshold: joins against `users`/`part` lower to *hash* joins, whose
    /// build states are what the operator-state cache keys on. At
    /// `small_workload` scale every dim is ~20 rows, every join is a loop
    /// join, and no build state would ever be published.
    fn join_heavy_workload() -> Workload {
        generate_workload(WorkloadConfig {
            scale: 0.25,
            n_analytics: 12,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn baseline_run_completes_all_jobs() {
        let w = small_workload();
        let mut cfg = DriverConfig::baseline(3);
        cfg.cluster = quick_cluster();
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(out.failed_jobs, 0);
        // 4 cooking + ~12 analytics daily-ish over 3 days.
        assert!(out.ledger.len() >= 30, "{} jobs", out.ledger.len());
        assert!(out.repo.len() > 100);
        assert!(out.usage.is_empty(), "baseline must not touch insights");
        assert_eq!(out.view_store_stats.views_created, 0);
    }

    #[test]
    fn enabled_run_builds_and_reuses_views() {
        let w = small_workload();
        let mut cfg = DriverConfig::enabled(4);
        cfg.cluster = quick_cluster();
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(out.failed_jobs, 0);
        assert!(
            out.view_store_stats.views_created > 0,
            "no views materialized: {:?}",
            out.selection_history
        );
        let reused =
            out.usage.iter().filter(|u| u.kind == cv_core::insights::UsageKind::Reused).count();
        assert!(reused > 0, "views never reused (created {})", out.view_store_stats.views_created);
        // Reuse also shows up in the per-job data plane.
        let matched: usize = out.ledger.records().iter().map(|r| r.data.views_matched).sum();
        assert_eq!(matched, reused);
        assert!(!out.selection_history.is_empty());
    }

    #[test]
    fn reuse_never_changes_results() {
        let w = small_workload();
        let mut base_cfg = DriverConfig::baseline(4);
        base_cfg.cluster = quick_cluster();
        let mut on_cfg = DriverConfig::enabled(4);
        on_cfg.cluster = quick_cluster();
        let base = run_workload(&w, &base_cfg).unwrap();
        let on = run_workload(&w, &on_cfg).unwrap();
        assert_eq!(base.result_digests.len(), on.result_digests.len());
        for (job, digest) in &base.result_digests {
            assert_eq!(
                on.result_digests.get(job),
                Some(digest),
                "job {job} result changed under reuse"
            );
        }
    }

    #[test]
    fn enabled_run_saves_processing_time() {
        let w = small_workload();
        let mut base_cfg = DriverConfig::baseline(5);
        base_cfg.cluster = quick_cluster();
        let mut on_cfg = DriverConfig::enabled(5);
        on_cfg.cluster = quick_cluster();
        let base = run_workload(&w, &base_cfg).unwrap();
        let on = run_workload(&w, &on_cfg).unwrap();
        let base_total = base.ledger.totals();
        let on_total = on.ledger.totals();
        assert!(
            on_total.processing_seconds < base_total.processing_seconds,
            "processing with reuse {} !< baseline {}",
            on_total.processing_seconds,
            base_total.processing_seconds
        );
        assert!(on_total.input_bytes < base_total.input_bytes);
    }

    #[test]
    fn semantic_compensation_fires_and_preserves_results() {
        let w = generate_workload(WorkloadConfig {
            scale: 0.05,
            n_analytics: 24,
            ..WorkloadConfig::default()
        });
        let mut cfg = DriverConfig::enabled(4);
        cfg.cluster = quick_cluster();
        let on = run_workload(&w, &cfg).unwrap();
        assert_eq!(on.failed_jobs, 0);
        let totals = on.ledger.totals();
        assert!(
            totals.views_reused_semantic > 0,
            "no compensated (semantic) hits in {} total reuses",
            totals.views_reused
        );
        assert!(totals.views_reused_semantic <= totals.views_reused);

        // Switching the widened path off must only change *how much* is
        // reused — never any job's result bytes.
        let mut off_cfg = cfg.clone();
        off_cfg.optimizer.enable_semantic_match = false;
        let off = run_workload(&w, &off_cfg).unwrap();
        assert_eq!(off.ledger.totals().views_reused_semantic, 0);
        assert_eq!(on.result_digests, off.result_digests);
    }

    #[test]
    fn gdpr_purges_views() {
        let w = small_workload();
        let mut cfg = DriverConfig::enabled(6);
        cfg.cluster = quick_cluster();
        cfg.gdpr_every_days = Some(2);
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(out.failed_jobs, 0);
        // The users dataset shrinks over time; views over it get purged at
        // least once in 6 days if any were built over `users`.
        // (Not asserted >0: selection may not pick user-joined views.)
        let _ = out.gdpr_purged_views;
    }

    /// Tentpole contract, sequential edition: the operator-state cache may
    /// only move work accounting — per-job result digests are byte-identical
    /// cache-on vs cache-off, and the recurring second day restores state
    /// published by (differently-numbered) first-day jobs.
    #[test]
    fn op_state_cache_keeps_digests_and_reuses_across_days() {
        let w = join_heavy_workload();
        let mut cfg = DriverConfig::enabled(2);
        cfg.cluster = quick_cluster();
        let off = run_workload(&w, &cfg).unwrap();
        assert!(off.op_state.is_none());

        let mut on_cfg = cfg.clone();
        on_cfg.op_state_budget_bytes = 64 << 20;
        let on = run_workload(&w, &on_cfg).unwrap();
        assert_eq!(on.failed_jobs, 0);
        assert_eq!(on.result_digests, off.result_digests, "cache changed result bytes");
        let stats = on.op_state.expect("cache enabled");
        assert!(stats.published > 0, "no breaker state ever published: {stats:?}");
        assert!(stats.hits > 0, "nothing restored from cache: {stats:?}");
        assert!(
            stats.cross_job_hits > 0,
            "a recurring day-2 job (new job id) must hit day-1 state: {stats:?}"
        );
    }

    /// GDPR regression: a forget-request against `users` must also evict
    /// cached operator state derived from it, without moving any digest.
    #[test]
    fn gdpr_purge_evicts_operator_state() {
        let w = join_heavy_workload();
        let mut cfg = DriverConfig::enabled(3);
        cfg.cluster = quick_cluster();
        cfg.gdpr_every_days = Some(1);
        cfg.op_state_budget_bytes = 64 << 20;
        let on = run_workload(&w, &cfg).unwrap();
        assert_eq!(on.failed_jobs, 0);

        let mut off_cfg = cfg.clone();
        off_cfg.op_state_budget_bytes = 0;
        let off = run_workload(&w, &off_cfg).unwrap();
        assert_eq!(on.result_digests, off.result_digests, "cache changed result bytes");

        let stats = on.op_state.expect("cache enabled");
        assert!(
            stats.purged > 0,
            "the forget-request must purge user-derived operator state: {stats:?}"
        );
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cv-driver-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_store_run_matches_memory_run() {
        let w = small_workload();
        let mut mem_cfg = DriverConfig::enabled(3);
        mem_cfg.cluster = quick_cluster();
        let dir = temp_store_dir("parity");
        let mut disk_cfg = mem_cfg.clone();
        disk_cfg.store = StoreBackend::Durable(DurableStoreConfig::new(&dir));

        let mem = run_workload(&w, &mem_cfg).unwrap();
        let disk = run_workload(&w, &disk_cfg).unwrap();
        assert_eq!(disk.failed_jobs, 0);
        // Durability must never change results or reuse behavior.
        assert_eq!(mem.result_digests, disk.result_digests);
        assert_eq!(mem.view_store_stats.views_created, disk.view_store_stats.views_created);
        let io = disk.store_io.expect("durable run reports io stats");
        assert!(io.wal_records_written > 0);
        assert!(io.bytes_written_durably > 0);
        assert!(mem.store_io.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_store_resumes_across_restart() {
        let w = small_workload();
        let dir = temp_store_dir("resume");
        let mut cfg = DriverConfig::enabled(3);
        cfg.cluster = quick_cluster();
        cfg.store = StoreBackend::Durable(DurableStoreConfig::new(&dir));
        let first = run_workload(&w, &cfg).unwrap();
        assert!(first.view_store_stats.views_created > 0);

        // Second run over the same directory: the store recovers the views
        // the first run sealed (restart-and-resume), and the recovery is
        // visible in the io counters.
        let second = run_workload(&w, &cfg).unwrap();
        assert_eq!(second.failed_jobs, 0);
        let io = second.store_io.expect("durable run reports io stats");
        assert!(io.recoveries > 0, "reopening a populated dir must count as recovery");
        assert!(second.robustness.store_recoveries > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_budget_run_recovers_and_keeps_digests() {
        let w = small_workload();
        let mut cfg = DriverConfig::enabled(3);
        cfg.cluster = quick_cluster();
        let baseline_dir = temp_store_dir("crash-base");
        cfg.store = StoreBackend::Durable(DurableStoreConfig::new(&baseline_dir));
        let baseline = run_workload(&w, &cfg).unwrap();
        let budget = baseline.store_io.as_ref().unwrap().bytes_written_durably;
        assert!(budget > 0);

        // Crash mid-run at half the durable byte budget; the driver must
        // recover in place and finish with byte-identical per-job digests.
        let crash_dir = temp_store_dir("crash-kill");
        let mut crash_cfg = cfg.clone();
        crash_cfg.store = StoreBackend::Durable(DurableStoreConfig::new(&crash_dir));
        crash_cfg.faults = FaultPlan::seeded(7).with_crash_after_bytes(budget / 2);
        let crashed = run_workload(&w, &crash_cfg).unwrap();
        assert_eq!(crashed.robustness.store_crashes, 1, "the crash budget must trip once");
        assert!(crashed.robustness.store_recoveries > 0);
        assert_eq!(crashed.failed_jobs, 0);
        assert_eq!(baseline.result_digests, crashed.result_digests);
        std::fs::remove_dir_all(&baseline_dir).unwrap();
        std::fs::remove_dir_all(&crash_dir).unwrap();
    }

    #[test]
    fn ivm_maintains_views_without_changing_digests() {
        let w = small_workload();
        let mut on_cfg = DriverConfig::enabled(4);
        on_cfg.cluster = quick_cluster();
        on_cfg.ivm = IvmMode::Maintain;
        let mut off_cfg = on_cfg.clone();
        off_cfg.ivm = IvmMode::Ingest;

        let on = run_workload(&w, &on_cfg).unwrap();
        let off = run_workload(&w, &off_cfg).unwrap();
        assert_eq!(on.failed_jobs, 0);
        assert_eq!(off.failed_jobs, 0);
        assert!(off.ivm.is_none());

        let stats = on.ivm.as_ref().expect("maintain mode reports stats");
        assert!(stats.maintained > 0, "no views maintained: {stats:?}");
        assert!(
            stats.rows_maintained < stats.rows_rebuild_baseline,
            "maintenance touched {} rows but the rebuild baseline is only {}",
            stats.rows_maintained,
            stats.rows_rebuild_baseline
        );

        // Maintained views must be byte-identical to full re-execution:
        // every per-job digest matches the ingest-only control run.
        assert_eq!(on.result_digests.len(), off.result_digests.len());
        for (job, digest) in &off.result_digests {
            assert_eq!(
                on.result_digests.get(job),
                Some(digest),
                "job {job} result changed under incremental maintenance"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = small_workload();
        let mut cfg = DriverConfig::enabled(3);
        cfg.cluster = quick_cluster();
        let a = run_workload(&w, &cfg).unwrap();
        let b = run_workload(&w, &cfg).unwrap();
        assert_eq!(a.result_digests, b.result_digests);
        assert_eq!(a.view_store_stats, b.view_store_stats);
        assert_eq!(a.ledger.totals(), b.ledger.totals());
    }
}
